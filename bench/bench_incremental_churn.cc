// Steady-state mempool churn: per-mutation cost of keeping the DCSat
// caches (fd-transaction graph, Θ_I components, validity bits) warm via
// the mutation-delta log versus rebuilding them from scratch after every
// database version bump (paper Section 6.3: in steady state the structures
// are maintained as transactions arrive, not recomputed per check).
//
// Each churn step adds one pending transaction and evicts the previous
// one — the canonical mempool add/evict cycle — then times (a) a DCSat
// check on an engine that patches its caches incrementally vs one forced
// to rebuild, and (b) a ConstraintMonitor::Poll with dirty-constraint
// tracking vs a monitor that re-evaluates everything from scratch.
//
// Standalone timer (no google-benchmark): emits a human table on stderr
// and the machine-readable BENCH_incremental_churn.json. Pass --smoke (or
// BCDB_BENCH_SMOKE=1) for a seconds-scale CI run.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/monitor.h"

namespace {

using namespace bcdb;
using namespace bcdb::bench;
using namespace bcdb::workload;

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs.empty() ? 0.0 : xs[xs.size() / 2];
}

SteadyStateOptions FullRebuildPolicy() {
  SteadyStateOptions options;
  options.incremental = false;
  return options;
}

void AddStanding(ConstraintMonitor& monitor,
                 const bitcoin::WorkloadMetadata& meta) {
  const std::string pks[] = {meta.rich_pk, meta.star_pk, meta.quiet_pk,
                             "ChurnPk"};
  for (const std::string& pk : pks) {
    auto handle = monitor.Add("paid " + pk, MakeSimpleConstraint(pk));
    if (!handle.ok()) {
      std::fprintf(stderr, "monitor add failed: %s\n",
                   handle.status().ToString().c_str());
      std::abort();
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  ApplyThreadFlag(&argc, argv);  // Accepted for uniformity; runs serial.
  const bool smoke = ApplySmokeFlag(&argc, argv);
  const std::size_t steps = smoke ? 8 : 60;

  auto spec = smoke ? WithPendingTotal(DefaultDataset(), 600)
                    : DefaultDataset();
  auto data = Prepare(spec);
  if (smoke) data->name += "_smoke";
  BlockchainDatabase& db = *data->db;

  // Two engines over the same database, consuming the identical mutation
  // stream: `Prepare`'s engine patches its caches from the delta log; the
  // rival discards and rebuilds them on every version bump.
  DcSatEngine& incremental_engine = *data->engine;
  DcSatEngine full_engine(&db, FullRebuildPolicy());
  full_engine.PrepareSteadyState();

  ConstraintMonitor incremental_monitor(&db);
  MonitorOptions full_monitor_options;
  full_monitor_options.steady = FullRebuildPolicy();
  full_monitor_options.dirty_tracking = false;
  ConstraintMonitor full_monitor(&db, full_monitor_options);
  AddStanding(incremental_monitor, data->metadata);
  AddStanding(full_monitor, data->metadata);

  DcSatOptions options;
  options.num_threads = 1;
  const DenialConstraint q = SimpleSat(data->metadata);

  // Warm both monitors (first poll evaluates everything) and indexes.
  (void)CheckOrDie(incremental_engine, q, options);
  (void)CheckOrDie(full_engine, q, options);
  if (!incremental_monitor.Poll(options).ok() ||
      !full_monitor.Poll(options).ok()) {
    std::fprintf(stderr, "warm-up poll failed\n");
    return 1;
  }

  std::vector<double> check_incremental, check_full;
  std::vector<double> poll_incremental, poll_full;
  bool satisfied = false;
  PendingId previous = kNoPendingId;
  for (std::size_t step = 0; step < steps; ++step) {
    // The churn: one transaction enters the mempool, the previous churn
    // transaction is evicted. Fresh (txId, ser) keys keep the database
    // consistent and the pending-set size constant.
    Transaction incoming("churn-" + std::to_string(step));
    incoming.Add(bitcoin::kTxOut,
                 Tuple({Value::Int(static_cast<std::int64_t>(10'000'000 + step)),
                        Value::Int(0), Value::Str("ChurnPk"), Value::Int(1)}));
    auto id = db.AddPending(incoming);
    if (!id.ok()) {
      std::fprintf(stderr, "churn add failed: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
    if (previous != kNoPendingId && !db.DiscardPending(previous).ok()) {
      return 1;
    }
    previous = *id;

    Stopwatch inc_watch;
    const DcSatResult inc = CheckOrDie(incremental_engine, q, options);
    check_incremental.push_back(inc_watch.ElapsedSeconds());

    Stopwatch full_watch;
    const DcSatResult full = CheckOrDie(full_engine, q, options);
    check_full.push_back(full_watch.ElapsedSeconds());

    if (inc.satisfied != full.satisfied) {
      std::fprintf(stderr, "step %zu: incremental/full verdicts diverge\n",
                   step);
      return 1;
    }
    satisfied = inc.satisfied;

    Stopwatch inc_poll_watch;
    if (!incremental_monitor.Poll(options).ok()) return 1;
    poll_incremental.push_back(inc_poll_watch.ElapsedSeconds());

    Stopwatch full_poll_watch;
    if (!full_monitor.Poll(options).ok()) return 1;
    poll_full.push_back(full_poll_watch.ElapsedSeconds());
  }

  const SteadyStateStats& stats = incremental_engine.steady_state_stats();
  if (stats.incremental_batches == 0) {
    std::fprintf(stderr, "incremental engine never took the delta path\n");
    return 1;
  }
  std::fprintf(stderr,
               "[steady-state] engine: %zu incremental batches (%zu events), "
               "%zu full rebuilds; monitor engine: %zu batches; monitor "
               "skipped %zu / evaluated %zu constraints\n",
               stats.incremental_batches, stats.incremental_events,
               stats.full_rebuilds,
               incremental_monitor.engine().steady_state_stats()
                   .incremental_batches,
               incremental_monitor.poll_stats().constraints_skipped,
               incremental_monitor.poll_stats().constraints_evaluated);

  struct Mode {
    const char* workload;
    std::vector<double>* times;
    double baseline_median;
  };
  const double check_full_median = Median(check_full);
  const double poll_full_median = Median(poll_full);
  Mode modes[] = {
      {"check_incremental", &check_incremental, check_full_median},
      {"check_full_rebuild", &check_full, check_full_median},
      {"poll_incremental", &poll_incremental, poll_full_median},
      {"poll_full_rebuild", &poll_full, poll_full_median},
  };
  std::vector<BenchJsonRow> rows;
  for (const Mode& mode : modes) {
    const double median = Median(*mode.times);
    BenchJsonRow row;
    row.dataset = data->name;
    row.workload = mode.workload;
    row.threads = 1;
    row.seconds = median;
    row.speedup = median > 0 ? mode.baseline_median / median : 1.0;
    row.satisfied = satisfied;
    rows.push_back(row);
    std::fprintf(stderr, "%-22s %-20s median %9.3f ms  vs full %.1fx\n",
                 data->name.c_str(), mode.workload, median * 1e3,
                 row.speedup);
  }

  WriteBenchJson("BENCH_incremental_churn.json", rows);

  // The whole point: at steady state the delta path must beat the rebuild
  // path on the same churn.
  if (Median(check_incremental) >= check_full_median) {
    std::fprintf(stderr,
                 "FAIL: incremental check no faster than full rebuild\n");
    return 1;
  }
  return 0;
}
