// Microbenchmarks of the substrate operations the DCSat runtimes decompose
// into: steady-state graph construction, component grouping, maximal-world
// materialization, query evaluation, possible-world recognition, and the
// hashing primitive.

#include <string>

#include "bench_common.h"
#include "bitcoin/serialize.h"
#include "core/probability.h"
#include "bitcoin/sha256.h"
#include "core/fd_graph.h"
#include "core/get_maximal.h"
#include "core/ind_graph.h"
#include "core/bron_kerbosch.h"
#include "core/possible_worlds.h"
#include "query/compiled_query.h"

namespace {

std::unique_ptr<bcdb::bench::PreparedDataset> g_data;

void BM_FdGraphBuild(benchmark::State& state) {
  for (auto _ : state) {
    bcdb::FdGraph graph(*g_data->db);
    benchmark::DoNotOptimize(graph.num_conflict_pairs());
  }
}

void BM_ThetaIComponents(benchmark::State& state) {
  const bcdb::FdGraph graph(*g_data->db);
  const auto equalities =
      bcdb::EqualitiesFromConstraints(g_data->db->constraints());
  for (auto _ : state) {
    bcdb::UnionFind uf(g_data->db->num_pending());
    bcdb::MergeEqualityComponents(*g_data->db, equalities,
                                  graph.valid_nodes(), uf);
    benchmark::DoNotOptimize(uf.num_elements());
  }
}

void BM_GetMaximalAllPending(benchmark::State& state) {
  const std::vector<bcdb::PendingId> pending = g_data->db->PendingIds();
  for (auto _ : state) {
    bcdb::WorldView world = bcdb::GetMaximal(*g_data->db, pending);
    benchmark::DoNotOptimize(world.NumActive());
  }
}

void BM_FirstMaximalClique(benchmark::State& state) {
  const bcdb::FdGraph graph(*g_data->db);
  for (auto _ : state) {
    std::size_t size = 0;
    bcdb::EnumerateMaximalCliques(graph.graph(), graph.valid_nodes(),
                                  /*use_pivot=*/true,
                                  [&](const std::vector<std::size_t>& clique) {
                                    size = clique.size();
                                    return false;  // First clique only.
                                  });
    benchmark::DoNotOptimize(size);
  }
}

void BM_QueryEvalOverFullView(benchmark::State& state) {
  const bcdb::DenialConstraint qp3 =
      bcdb::workload::PathUnsat(g_data->metadata, 3);
  auto compiled =
      bcdb::CompiledQuery::Compile(qp3, &g_data->db->database());
  const bcdb::WorldView view = g_data->db->PendingUnionView();
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled->Evaluate(view));
  }
}

void BM_IsPossibleWorldAllPending(benchmark::State& state) {
  const std::vector<bcdb::PendingId> pending = g_data->db->PendingIds();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bcdb::IsPossibleWorld(*g_data->db, pending));
  }
}

void BM_SampleWorld(benchmark::State& state) {
  bcdb::InclusionModel model;
  model.default_probability = 0.5;
  bcdb::Xoshiro256 rng(17);
  for (auto _ : state) {
    const bcdb::WorldView world = bcdb::SampleWorld(*g_data->db, model, rng);
    benchmark::DoNotOptimize(world.NumActive());
  }
}

void BM_SerializeNode(benchmark::State& state) {
  // Serialize the default workload's node (chain + mempool snapshot).
  auto workload =
      bcdb::bitcoin::GenerateWorkload(bcdb::workload::S100().params);
  if (!workload.ok()) state.SkipWithError("generation failed");
  for (auto _ : state) {
    auto data = bcdb::bitcoin::SerializeNode(workload->node);
    benchmark::DoNotOptimize(data.ok());
  }
}

void BM_Sha256_1KiB(benchmark::State& state) {
  const std::string data(1024, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(bcdb::Sha256::Hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}

}  // namespace

int main(int argc, char** argv) {
  g_data = bcdb::bench::Prepare(bcdb::workload::DefaultDataset());

  benchmark::RegisterBenchmark("Micro/FdGraphBuild", BM_FdGraphBuild)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Micro/ThetaIComponents", BM_ThetaIComponents)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Micro/GetMaximalAllPending",
                               BM_GetMaximalAllPending)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Micro/FirstMaximalClique",
                               BM_FirstMaximalClique)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Micro/QueryEvalOverFullView",
                               BM_QueryEvalOverFullView)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("Micro/IsPossibleWorldAllPending",
                               BM_IsPossibleWorldAllPending)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Micro/SampleWorld", BM_SampleWorld)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Micro/SerializeNode", BM_SerializeNode)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Micro/Sha256_1KiB", BM_Sha256_1KiB);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  g_data.reset();
  return 0;
}
