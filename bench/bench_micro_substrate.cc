// Microbenchmarks of the substrate operations the DCSat runtimes decompose
// into: steady-state graph construction, component grouping, maximal-world
// materialization, query evaluation, possible-world recognition, the storage
// substrate (value interning, id hashing, projection-key index probes), and
// the hashing primitive.
//
// Pass --smoke (or BCDB_BENCH_SMOKE=1) for a seconds-scale CI run. Results
// are also written as google-benchmark JSON to BENCH_micro_substrate.json.

#include <algorithm>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bitcoin/serialize.h"
#include "core/probability.h"
#include "bitcoin/sha256.h"
#include "core/fd_graph.h"
#include "core/get_maximal.h"
#include "core/ind_graph.h"
#include "core/bron_kerbosch.h"
#include "core/possible_worlds.h"
#include "query/compiled_query.h"
#include "relational/tuple.h"
#include "relational/value_pool.h"

namespace {

std::unique_ptr<bcdb::bench::PreparedDataset> g_data;

/// The relation the storage microbenches walk (txIn of the bitcoin image)
/// and how many of its tuples they touch per iteration.
const bcdb::Relation& SubstrateRelation() {
  return g_data->db->database().relation(0);
}

std::size_t SubstrateTupleCount() {
  return std::min<std::size_t>(SubstrateRelation().num_tuples(), 4096);
}

void BM_FdGraphBuild(benchmark::State& state) {
  for (auto _ : state) {
    bcdb::FdGraph graph(*g_data->db);
    benchmark::DoNotOptimize(graph.num_conflict_pairs());
  }
}

void BM_ThetaIComponents(benchmark::State& state) {
  const bcdb::FdGraph graph(*g_data->db);
  const auto equalities =
      bcdb::EqualitiesFromConstraints(g_data->db->constraints());
  for (auto _ : state) {
    bcdb::UnionFind uf(g_data->db->num_pending());
    bcdb::MergeEqualityComponents(*g_data->db, equalities,
                                  graph.valid_nodes(), uf);
    benchmark::DoNotOptimize(uf.num_elements());
  }
}

void BM_GetMaximalAllPending(benchmark::State& state) {
  const std::vector<bcdb::PendingId> pending = g_data->db->PendingIds();
  for (auto _ : state) {
    bcdb::WorldView world = bcdb::GetMaximal(*g_data->db, pending);
    benchmark::DoNotOptimize(world.NumActive());
  }
}

void BM_FirstMaximalClique(benchmark::State& state) {
  const bcdb::FdGraph graph(*g_data->db);
  for (auto _ : state) {
    std::size_t size = 0;
    bcdb::EnumerateMaximalCliques(graph.graph(), graph.valid_nodes(),
                                  /*use_pivot=*/true,
                                  [&](const std::vector<std::size_t>& clique) {
                                    size = clique.size();
                                    return false;  // First clique only.
                                  });
    benchmark::DoNotOptimize(size);
  }
}

void BM_QueryEvalOverFullView(benchmark::State& state) {
  const bcdb::DenialConstraint qp3 =
      bcdb::workload::PathUnsat(g_data->metadata, 3);
  auto compiled =
      bcdb::CompiledQuery::Compile(qp3, &g_data->db->database());
  const bcdb::WorldView view = g_data->db->PendingUnionView();
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled->Evaluate(view));
  }
}

void BM_IsPossibleWorldAllPending(benchmark::State& state) {
  const std::vector<bcdb::PendingId> pending = g_data->db->PendingIds();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bcdb::IsPossibleWorld(*g_data->db, pending));
  }
}

void BM_SampleWorld(benchmark::State& state) {
  bcdb::InclusionModel model;
  model.default_probability = 0.5;
  bcdb::Xoshiro256 rng(17);
  for (auto _ : state) {
    const bcdb::WorldView world = bcdb::SampleWorld(*g_data->db, model, rng);
    benchmark::DoNotOptimize(world.NumActive());
  }
}

void BM_SerializeNode(benchmark::State& state) {
  // Serialize the default workload's node (chain + mempool snapshot).
  auto workload =
      bcdb::bitcoin::GenerateWorkload(bcdb::workload::S100().params);
  if (!workload.ok()) state.SkipWithError("generation failed");
  for (auto _ : state) {
    auto data = bcdb::bitcoin::SerializeNode(workload->node);
    benchmark::DoNotOptimize(data.ok());
  }
}

void BM_ValueInternHit(benchmark::State& state) {
  // Re-interning values that are already pooled: the steady-state ingest
  // cost per value (hash + one probe of the intern table).
  std::vector<bcdb::Value> values;
  const bcdb::Relation& rel = SubstrateRelation();
  const std::size_t n = std::min<std::size_t>(rel.num_tuples(), 512);
  for (std::size_t i = 0; i < n; ++i) {
    for (bcdb::Value& v : rel.tuple(i).values()) values.push_back(std::move(v));
  }
  bcdb::ValuePool& pool = bcdb::ValuePool::Global();
  for (auto _ : state) {
    std::size_t acc = 0;
    for (const bcdb::Value& v : values) acc += pool.Intern(v);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size()));
}

void BM_TupleInternConstruct(benchmark::State& state) {
  // Full ingest path: materialize values, then build (re-intern) a tuple.
  const bcdb::Relation& rel = SubstrateRelation();
  std::vector<std::vector<bcdb::Value>> rows;
  const std::size_t n = std::min<std::size_t>(rel.num_tuples(), 512);
  for (std::size_t i = 0; i < n; ++i) rows.push_back(rel.tuple(i).values());
  for (auto _ : state) {
    std::size_t acc = 0;
    for (const std::vector<bcdb::Value>& row : rows) {
      acc ^= bcdb::Tuple(row).Hash();
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows.size()));
}

void BM_TupleHashIds(benchmark::State& state) {
  // Hashing a stored tuple: a length-seeded mix over raw 32-bit ids — no
  // variant dispatch, no string walks.
  const bcdb::Relation& rel = SubstrateRelation();
  const std::size_t n = SubstrateTupleCount();
  for (auto _ : state) {
    std::size_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) acc ^= rel.tuple(i).Hash();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_ProjectionKeyGather(benchmark::State& state) {
  // Building an index lookup key from a stored tuple: an id gather into an
  // inline buffer, no heap traffic.
  const bcdb::Relation& rel = SubstrateRelation();
  const std::vector<std::size_t> positions{0, 1};
  const std::size_t n = SubstrateTupleCount();
  for (auto _ : state) {
    std::size_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      acc ^= rel.tuple(i).ProjectKey(positions).Hash();
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_IndexProbeProjectionKey(benchmark::State& state) {
  // End-to-end index probe: gather key, heterogeneous bucket lookup.
  const bcdb::Relation& rel = SubstrateRelation();
  const std::vector<std::size_t> positions{0, 1};
  const std::size_t index_id = rel.GetOrBuildIndex(positions);
  const std::size_t n = SubstrateTupleCount();
  for (auto _ : state) {
    std::size_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += rel.IndexLookup(index_id, rel.tuple(i).ProjectKey(positions))
                 .size();
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_Sha256_1KiB(benchmark::State& state) {
  const std::string data(1024, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(bcdb::Sha256::Hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bcdb::bench::ApplySmokeFlag(&argc, argv);
  g_data = bcdb::bench::Prepare(
      smoke
          ? bcdb::workload::WithPendingTotal(bcdb::workload::DefaultDataset(),
                                             600)
          : bcdb::workload::DefaultDataset());

  benchmark::RegisterBenchmark("Micro/FdGraphBuild", BM_FdGraphBuild)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Micro/ThetaIComponents", BM_ThetaIComponents)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Micro/GetMaximalAllPending",
                               BM_GetMaximalAllPending)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Micro/FirstMaximalClique",
                               BM_FirstMaximalClique)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Micro/QueryEvalOverFullView",
                               BM_QueryEvalOverFullView)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("Micro/IsPossibleWorldAllPending",
                               BM_IsPossibleWorldAllPending)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Micro/SampleWorld", BM_SampleWorld)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Micro/SerializeNode", BM_SerializeNode)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Micro/ValueInternHit", BM_ValueInternHit)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("Micro/TupleInternConstruct",
                               BM_TupleInternConstruct)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("Micro/TupleHashIds", BM_TupleHashIds)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("Micro/ProjectionKeyGather",
                               BM_ProjectionKeyGather)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("Micro/IndexProbeProjectionKey",
                               BM_IndexProbeProjectionKey)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("Micro/Sha256_1KiB", BM_Sha256_1KiB);

  // Default the machine-readable output next to the binary; explicit
  // --benchmark_out flags on the command line still win (parsed later).
  std::vector<char*> args = bcdb::bench::WithDefaultJsonOut(
      &argc, argv, "BENCH_micro_substrate.json");
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  g_data.reset();
  return 0;
}
