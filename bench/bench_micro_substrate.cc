// Microbenchmarks of the substrate operations the DCSat runtimes decompose
// into: steady-state graph construction, component grouping, maximal-world
// materialization, query evaluation, possible-world recognition, the storage
// substrate (value interning, id hashing, projection-key index probes), and
// the hashing primitive.
//
// Pass --smoke (or BCDB_BENCH_SMOKE=1) for a seconds-scale CI run. Results
// are also written as google-benchmark JSON to BENCH_micro_substrate.json.

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "bitcoin/serialize.h"
#include "core/probability.h"
#include "bitcoin/sha256.h"
#include "core/fd_graph.h"
#include "core/get_maximal.h"
#include "core/ind_graph.h"
#include "core/bron_kerbosch.h"
#include "core/possible_worlds.h"
#include "query/compiled_query.h"
#include "relational/tuple.h"
#include "relational/value_pool.h"

namespace {

std::unique_ptr<bcdb::bench::PreparedDataset> g_data;

/// The relation the storage microbenches walk (txIn of the bitcoin image)
/// and how many of its tuples they touch per iteration.
const bcdb::Relation& SubstrateRelation() {
  return g_data->db->database().relation(0);
}

std::size_t SubstrateTupleCount() {
  return std::min<std::size_t>(SubstrateRelation().num_tuples(), 4096);
}

void BM_FdGraphBuild(benchmark::State& state) {
  for (auto _ : state) {
    bcdb::FdGraph graph(*g_data->db);
    benchmark::DoNotOptimize(graph.num_conflict_pairs());
  }
}

void BM_ThetaIComponents(benchmark::State& state) {
  const bcdb::FdGraph graph(*g_data->db);
  const auto equalities =
      bcdb::EqualitiesFromConstraints(g_data->db->constraints());
  for (auto _ : state) {
    bcdb::UnionFind uf(g_data->db->num_pending());
    bcdb::MergeEqualityComponents(*g_data->db, equalities,
                                  graph.valid_nodes(), uf);
    benchmark::DoNotOptimize(uf.num_elements());
  }
}

void BM_GetMaximalAllPending(benchmark::State& state) {
  const std::vector<bcdb::PendingId> pending = g_data->db->PendingIds();
  for (auto _ : state) {
    bcdb::WorldView world = bcdb::GetMaximal(*g_data->db, pending);
    benchmark::DoNotOptimize(world.NumActive());
  }
}

void BM_FirstMaximalClique(benchmark::State& state) {
  const bcdb::FdGraph graph(*g_data->db);
  for (auto _ : state) {
    std::size_t size = 0;
    bcdb::EnumerateMaximalCliques(graph.graph(), graph.valid_nodes(),
                                  /*use_pivot=*/true,
                                  [&](const std::vector<std::size_t>& clique) {
                                    size = clique.size();
                                    return false;  // First clique only.
                                  });
    benchmark::DoNotOptimize(size);
  }
}

void BM_QueryEvalOverFullView(benchmark::State& state) {
  const bcdb::DenialConstraint qp3 =
      bcdb::workload::PathUnsat(g_data->metadata, 3);
  auto compiled =
      bcdb::CompiledQuery::Compile(qp3, &g_data->db->database());
  const bcdb::WorldView view = g_data->db->PendingUnionView();
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled->Evaluate(view));
  }
}

void BM_IsPossibleWorldAllPending(benchmark::State& state) {
  const std::vector<bcdb::PendingId> pending = g_data->db->PendingIds();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bcdb::IsPossibleWorld(*g_data->db, pending));
  }
}

void BM_SampleWorld(benchmark::State& state) {
  bcdb::InclusionModel model;
  model.default_probability = 0.5;
  bcdb::Xoshiro256 rng(17);
  for (auto _ : state) {
    const bcdb::WorldView world = bcdb::SampleWorld(*g_data->db, model, rng);
    benchmark::DoNotOptimize(world.NumActive());
  }
}

void BM_SerializeNode(benchmark::State& state) {
  // Serialize the default workload's node (chain + mempool snapshot).
  auto workload =
      bcdb::bitcoin::GenerateWorkload(bcdb::workload::S100().params);
  if (!workload.ok()) state.SkipWithError("generation failed");
  for (auto _ : state) {
    auto data = bcdb::bitcoin::SerializeNode(workload->node);
    benchmark::DoNotOptimize(data.ok());
  }
}

void BM_ValueInternHit(benchmark::State& state) {
  // Re-interning values that are already pooled: the steady-state ingest
  // cost per value (hash + one probe of the intern table).
  std::vector<bcdb::Value> values;
  const bcdb::Relation& rel = SubstrateRelation();
  const std::size_t n = std::min<std::size_t>(rel.num_tuples(), 512);
  for (std::size_t i = 0; i < n; ++i) {
    for (bcdb::Value& v : rel.tuple(i).values()) values.push_back(std::move(v));
  }
  bcdb::ValuePool& pool = bcdb::ValuePool::Global();
  for (auto _ : state) {
    std::size_t acc = 0;
    for (const bcdb::Value& v : values) acc += pool.Intern(v);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size()));
}

void BM_TupleInternConstruct(benchmark::State& state) {
  // Full ingest path: materialize values, then build (re-intern) a tuple.
  const bcdb::Relation& rel = SubstrateRelation();
  std::vector<std::vector<bcdb::Value>> rows;
  const std::size_t n = std::min<std::size_t>(rel.num_tuples(), 512);
  for (std::size_t i = 0; i < n; ++i) rows.push_back(rel.tuple(i).values());
  for (auto _ : state) {
    std::size_t acc = 0;
    for (const std::vector<bcdb::Value>& row : rows) {
      acc ^= bcdb::Tuple(row).Hash();
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows.size()));
}

void BM_TupleHashIds(benchmark::State& state) {
  // Hashing a stored tuple: a length-seeded mix over raw 32-bit ids — no
  // variant dispatch, no string walks.
  const bcdb::Relation& rel = SubstrateRelation();
  const std::size_t n = SubstrateTupleCount();
  for (auto _ : state) {
    std::size_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) acc ^= rel.tuple(i).Hash();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_ProjectionKeyGather(benchmark::State& state) {
  // Building an index lookup key from a stored tuple: an id gather into an
  // inline buffer, no heap traffic.
  const bcdb::Relation& rel = SubstrateRelation();
  const std::vector<std::size_t> positions{0, 1};
  const std::size_t n = SubstrateTupleCount();
  for (auto _ : state) {
    std::size_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      acc ^= rel.tuple(i).ProjectKey(positions).Hash();
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_IndexProbeProjectionKey(benchmark::State& state) {
  // End-to-end index probe: gather key, heterogeneous bucket lookup.
  const bcdb::Relation& rel = SubstrateRelation();
  const std::vector<std::size_t> positions{0, 1};
  const std::size_t index_id = rel.GetOrBuildIndex(positions);
  const std::size_t n = SubstrateTupleCount();
  for (auto _ : state) {
    std::size_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += rel.IndexLookup(index_id, rel.tuple(i).ProjectKey(positions))
                 .size();
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

// ---------------------------------------------------------------------------
// Hash-map shootout: std::unordered_map vs the engine's flat open-addressing
// table vs a minimal robin-hood reference, over key distributions lifted from
// the workload itself (dense tuple ids, projection keys of the txIn relation
// with their real fan-in/skew). All backends share the engine's hash/equality
// functors so only table mechanics differ. FlatHashMap is named directly —
// not through the FlatIdMap alias — so the matrix stays meaningful even in a
// BCDB_USE_STD_HASH build.

/// Reference robin-hood map: linear probing, power-of-two capacity, probe
/// distances stored per slot, displacement on insert ("steal from the
/// rich"), 7/8 max load. Deliberately minimal — just enough surface for the
/// shootout (reserve / operator[] / count / clear / size) with heterogeneous
/// probes through transparent functors.
template <typename Key, typename Value, typename HashFn = std::hash<Key>,
          typename EqFn = std::equal_to<Key>>
class RobinHoodRef {
 public:
  RobinHoodRef() = default;

  std::size_t size() const { return size_; }

  void reserve(std::size_t n) {
    std::size_t cap = 16;
    while (cap * 7 < n * 8) cap *= 2;
    if (cap > capacity_) Rehash(cap);
  }

  void clear() {
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (dist_[i] != 0) slots_[i] = {};
    }
    std::fill(dist_.begin(), dist_.end(), std::uint8_t{0});
    size_ = 0;
  }

  Value& operator[](const Key& key) {
    if (capacity_ == 0 || (size_ + 1) * 8 > capacity_ * 7) {
      Rehash(capacity_ == 0 ? 16 : capacity_ * 2);
    }
    return Insert(Key(key));
  }

  template <typename K2>
  std::size_t count(const K2& key) const {
    if (capacity_ == 0) return 0;
    std::size_t i = HashFn{}(key) & mask_;
    std::uint8_t d = 1;
    while (true) {
      const std::uint8_t sd = dist_[i];
      if (sd < d) return 0;  // Robin-hood invariant: key would sit here.
      if (sd == d && EqFn{}(slots_[i].first, key)) return 1;
      i = (i + 1) & mask_;
      ++d;
    }
  }

 private:
  Value& Insert(Key key) {
    std::size_t i = HashFn{}(key) & mask_;
    std::uint8_t d = 1;
    while (true) {
      std::uint8_t& sd = dist_[i];
      if (sd == 0) {
        slots_[i] = {std::move(key), Value{}};
        sd = d;
        ++size_;
        return slots_[i].second;
      }
      if (sd == d && EqFn{}(slots_[i].first, key)) return slots_[i].second;
      if (sd < d) {
        // Displace the richer resident and keep walking with its entry;
        // our key stays put at slot i.
        std::pair<Key, Value> displaced = std::move(slots_[i]);
        const std::uint8_t displaced_d = sd;
        slots_[i] = {std::move(key), Value{}};
        sd = d;
        ++size_;
        CascadeDisplaced(std::move(displaced), displaced_d, i);
        return slots_[i].second;
      }
      i = (i + 1) & mask_;
      ++d;
    }
  }

  void CascadeDisplaced(std::pair<Key, Value> entry, std::uint8_t d,
                        std::size_t i) {
    while (true) {
      i = (i + 1) & mask_;
      ++d;
      std::uint8_t& sd = dist_[i];
      if (sd == 0) {
        slots_[i] = std::move(entry);
        sd = d;
        return;
      }
      if (sd < d) {
        std::swap(entry, slots_[i]);
        std::swap(d, sd);
      }
    }
  }

  void Rehash(std::size_t new_capacity) {
    std::vector<std::pair<Key, Value>> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_dist = std::move(dist_);
    slots_.assign(new_capacity, {});
    dist_.assign(new_capacity, 0);
    capacity_ = new_capacity;
    mask_ = new_capacity - 1;
    size_ = 0;
    for (std::size_t i = 0; i < old_dist.size(); ++i) {
      if (old_dist[i] != 0) {
        Insert(std::move(old_slots[i].first)) =
            std::move(old_slots[i].second);
      }
    }
  }

  std::vector<std::pair<Key, Value>> slots_;
  std::vector<std::uint8_t> dist_;
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

/// Dense tuple-id key stream — the distribution behind owner tables,
/// footprints, and every id-keyed side structure.
std::size_t ShootoutIdCount() {
  return std::min<std::size_t>(SubstrateRelation().num_tuples(), 65536);
}

/// Projection keys of the txIn relation with their natural duplicate fan-in —
/// the distribution behind index buckets, FD buckets, and Θ buckets.
const std::vector<bcdb::Tuple>& ShootoutProjKeys() {
  static const std::vector<bcdb::Tuple>* keys = [] {
    auto* out = new std::vector<bcdb::Tuple>;
    const bcdb::Relation& rel = SubstrateRelation();
    const std::vector<std::size_t> positions{0, 1};
    const std::size_t n = ShootoutIdCount();
    out->reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      out->push_back(rel.tuple(i).Project(positions));
    }
    return out;
  }();
  return *keys;
}

/// Insert dense sequential ids with no pre-sizing: growth path included, the
/// worst case for an unmixed power-of-two table.
template <typename MapT>
void ShootoutDenseIdInsert(benchmark::State& state) {
  const std::size_t n = ShootoutIdCount();
  for (auto _ : state) {
    MapT map;
    for (std::size_t i = 0; i < n; ++i) ++map[i];
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

/// Group-by over real projection keys (reserve known): the FD/Θ bucket
/// build.
template <typename MapT>
void ShootoutProjKeyFanIn(benchmark::State& state) {
  const std::vector<bcdb::Tuple>& keys = ShootoutProjKeys();
  for (auto _ : state) {
    MapT map;
    map.reserve(keys.size());
    for (const bcdb::Tuple& key : keys) ++map[key];
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(keys.size()));
}

/// Read-only probes of a built table via heterogeneous ProjectionKey views —
/// the per-candidate index probe of query evaluation.
template <typename MapT>
void ShootoutProjKeyProbeHit(benchmark::State& state) {
  const bcdb::Relation& rel = SubstrateRelation();
  const std::vector<std::size_t> positions{0, 1};
  const std::vector<bcdb::Tuple>& keys = ShootoutProjKeys();
  MapT map;
  map.reserve(keys.size());
  for (const bcdb::Tuple& key : keys) ++map[key];
  const std::size_t n = ShootoutIdCount();
  for (auto _ : state) {
    std::size_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += map.count(rel.tuple(i).ProjectKey(positions));
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

/// Fill-then-clear cycles over one arena — the distinct/seen-set churn of
/// answer enumeration.
template <typename MapT>
void ShootoutDistinctChurn(benchmark::State& state) {
  const std::vector<bcdb::Tuple>& keys = ShootoutProjKeys();
  MapT map;
  map.reserve(keys.size());
  for (auto _ : state) {
    map.clear();
    for (const bcdb::Tuple& key : keys) ++map[key];
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(keys.size()));
}

using StdIdMap =
    std::unordered_map<std::size_t, std::uint32_t, bcdb::IdHash>;
using FlatIdShootoutMap =
    bcdb::FlatHashMap<std::size_t, std::uint32_t, bcdb::IdHash>;
using RobinIdMap =
    RobinHoodRef<std::size_t, std::uint32_t, bcdb::IdHash>;
using StdTupleMap = std::unordered_map<bcdb::Tuple, std::uint32_t,
                                       bcdb::TupleHash, bcdb::TupleEq>;
using FlatTupleMap = bcdb::FlatHashMap<bcdb::Tuple, std::uint32_t,
                                       bcdb::TupleHash, bcdb::TupleEq>;
using RobinTupleMap = RobinHoodRef<bcdb::Tuple, std::uint32_t,
                                   bcdb::TupleHash, bcdb::TupleEq>;

void RegisterShootout() {
  benchmark::RegisterBenchmark("Shootout/DenseIdInsert/std",
                               ShootoutDenseIdInsert<StdIdMap>)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("Shootout/DenseIdInsert/flat",
                               ShootoutDenseIdInsert<FlatIdShootoutMap>)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("Shootout/DenseIdInsert/robinhood",
                               ShootoutDenseIdInsert<RobinIdMap>)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("Shootout/ProjKeyFanIn/std",
                               ShootoutProjKeyFanIn<StdTupleMap>)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("Shootout/ProjKeyFanIn/flat",
                               ShootoutProjKeyFanIn<FlatTupleMap>)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("Shootout/ProjKeyFanIn/robinhood",
                               ShootoutProjKeyFanIn<RobinTupleMap>)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("Shootout/ProjKeyProbeHit/std",
                               ShootoutProjKeyProbeHit<StdTupleMap>)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("Shootout/ProjKeyProbeHit/flat",
                               ShootoutProjKeyProbeHit<FlatTupleMap>)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("Shootout/ProjKeyProbeHit/robinhood",
                               ShootoutProjKeyProbeHit<RobinTupleMap>)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("Shootout/DistinctChurn/std",
                               ShootoutDistinctChurn<StdTupleMap>)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("Shootout/DistinctChurn/flat",
                               ShootoutDistinctChurn<FlatTupleMap>)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("Shootout/DistinctChurn/robinhood",
                               ShootoutDistinctChurn<RobinTupleMap>)
      ->Unit(benchmark::kMicrosecond);
}

void BM_Sha256_1KiB(benchmark::State& state) {
  const std::string data(1024, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(bcdb::Sha256::Hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bcdb::bench::ApplySmokeFlag(&argc, argv);
  g_data = bcdb::bench::Prepare(
      smoke
          ? bcdb::workload::WithPendingTotal(bcdb::workload::DefaultDataset(),
                                             600)
          : bcdb::workload::DefaultDataset());

  benchmark::RegisterBenchmark("Micro/FdGraphBuild", BM_FdGraphBuild)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Micro/ThetaIComponents", BM_ThetaIComponents)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Micro/GetMaximalAllPending",
                               BM_GetMaximalAllPending)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Micro/FirstMaximalClique",
                               BM_FirstMaximalClique)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Micro/QueryEvalOverFullView",
                               BM_QueryEvalOverFullView)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("Micro/IsPossibleWorldAllPending",
                               BM_IsPossibleWorldAllPending)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Micro/SampleWorld", BM_SampleWorld)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Micro/SerializeNode", BM_SerializeNode)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Micro/ValueInternHit", BM_ValueInternHit)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("Micro/TupleInternConstruct",
                               BM_TupleInternConstruct)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("Micro/TupleHashIds", BM_TupleHashIds)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("Micro/ProjectionKeyGather",
                               BM_ProjectionKeyGather)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("Micro/IndexProbeProjectionKey",
                               BM_IndexProbeProjectionKey)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("Micro/Sha256_1KiB", BM_Sha256_1KiB);
  RegisterShootout();

  // Default the machine-readable output next to the binary; explicit
  // --benchmark_out flags on the command line still win (parsed later).
  std::vector<char*> args = bcdb::bench::WithDefaultJsonOut(
      &argc, argv, "BENCH_micro_substrate.json");
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  g_data.reset();
  return 0;
}
