#ifndef BCDB_BENCH_BENCH_COMMON_H_
#define BCDB_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>
#include <benchmark/benchmark.h>

#include "bitcoin/generator.h"
#include "bitcoin/to_relational.h"
#include "core/dcsat.h"
#include "util/stopwatch.h"
#include "workload/constraints.h"
#include "workload/datasets.h"

namespace bcdb {
namespace bench {

/// The DcSatOptions::num_threads value every registered benchmark runs with.
/// Defaults to 1 (the serial reference path); set by --bcdb_threads=N on the
/// command line or the BCDB_NUM_THREADS environment variable (0 = hardware
/// concurrency).
inline std::size_t& BenchNumThreads() {
  static std::size_t num_threads = 1;
  return num_threads;
}

/// Parses and strips the --bcdb_threads=N flag (google-benchmark rejects
/// flags it doesn't know) and reads BCDB_NUM_THREADS. Call before
/// benchmark::Initialize.
inline void ApplyThreadFlag(int* argc, char** argv) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only, no setenv anywhere
  if (const char* env = std::getenv("BCDB_NUM_THREADS")) {
    BenchNumThreads() = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
  }
  constexpr const char kFlag[] = "--bcdb_threads=";
  int out = 0;
  for (int i = 0; i < *argc; ++i) {
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      BenchNumThreads() = static_cast<std::size_t>(
          std::strtoul(argv[i] + sizeof(kFlag) - 1, nullptr, 10));
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

/// Parses and strips the --smoke flag (also honours BCDB_BENCH_SMOKE=1):
/// CI smoke runs shrink datasets/iterations to finish in seconds while
/// still walking every code path the bench exercises.
inline bool ApplySmokeFlag(int* argc, char** argv) {
  bool smoke =  // NOLINT(concurrency-mt-unsafe): read-only, no setenv anywhere
      std::getenv("BCDB_BENCH_SMOKE") != nullptr;
  int out = 0;
  for (int i = 0; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return smoke;
}

/// Builds an argv that defaults google-benchmark's JSON file output to
/// `json_path` (e.g. BENCH_micro_substrate.json). The defaults are inserted
/// *before* the caller's flags, so an explicit --benchmark_out still wins.
/// The returned vector borrows argv's pointers plus two static flag strings;
/// it stays valid for main's lifetime.
inline std::vector<char*> WithDefaultJsonOut(int* argc, char** argv,
                                             const std::string& json_path) {
  static std::string out_flag;
  static std::string format_flag = "--benchmark_out_format=json";
  out_flag = "--benchmark_out=" + json_path;
  std::vector<char*> args;
  args.push_back(argv[0]);
  args.push_back(out_flag.data());
  args.push_back(format_flag.data());
  for (int i = 1; i < *argc; ++i) args.push_back(argv[i]);
  return args;
}

/// One row of the machine-readable perf trajectory emitted next to a bench.
struct BenchJsonRow {
  std::string dataset;
  std::string workload;
  std::size_t threads = 1;
  double seconds = 0;
  double speedup = 1;
  bool satisfied = false;
};

/// Writes rows as a JSON array to `path` (e.g. BENCH_parallel_scaling.json)
/// so future sessions can track perf regressions without re-parsing logs.
inline void WriteBenchJson(const std::string& path,
                           const std::vector<BenchJsonRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchJsonRow& r = rows[i];
    std::fprintf(f,
                 "  {\"dataset\": \"%s\", \"workload\": \"%s\", "
                 "\"threads\": %zu, \"seconds\": %.6f, \"speedup\": %.3f, "
                 "\"satisfied\": %s}%s\n",
                 r.dataset.c_str(), r.workload.c_str(), r.threads, r.seconds,
                 r.speedup, r.satisfied ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::fprintf(stderr, "[json] wrote %zu rows to %s\n", rows.size(),
               path.c_str());
}

/// A generated dataset ready for DCSat runs: the simulated node, its
/// relational image, and the landmark metadata for constraint construction.
struct PreparedDataset {
  std::string name;
  bitcoin::WorkloadMetadata metadata;
  bitcoin::ChainStats chain_stats;
  bitcoin::ChainStats mempool_stats;
  std::size_t chain_blocks = 0;
  std::unique_ptr<BlockchainDatabase> db;
  std::unique_ptr<DcSatEngine> engine;
};

/// Generates `spec` and builds the blockchain database. Aborts on failure
/// (benchmarks have no error channel worth handling).
inline std::unique_ptr<PreparedDataset> Prepare(
    const workload::DatasetSpec& spec) {
  Stopwatch watch;
  auto generated = bitcoin::GenerateWorkload(spec.params);
  if (!generated.ok()) {
    std::fprintf(stderr, "dataset %s generation failed: %s\n",
                 spec.name.c_str(), generated.status().ToString().c_str());
    std::abort();
  }
  auto db = bitcoin::BuildBlockchainDatabase(generated->node);
  if (!db.ok()) {
    std::fprintf(stderr, "dataset %s load failed: %s\n", spec.name.c_str(),
                 db.status().ToString().c_str());
    std::abort();
  }
  auto prepared = std::make_unique<PreparedDataset>();
  prepared->name = spec.name;
  prepared->metadata = generated->metadata;
  prepared->chain_stats = generated->node.chain().Stats();
  prepared->mempool_stats = generated->node.mempool().Stats();
  prepared->chain_blocks = generated->node.chain().blocks().size();
  prepared->db = std::make_unique<BlockchainDatabase>(std::move(*db));
  prepared->engine = std::make_unique<DcSatEngine>(prepared->db.get());
  // Warm the steady-state structures (paper Section 6.3: these are
  // maintained incrementally as transactions arrive, not per query).
  prepared->engine->PrepareSteadyState();
  std::fprintf(stderr,
               "[prepare] %s: %zu blocks, %zu chain txs, %zu pending "
               "(%.1fs)\n",
               spec.name.c_str(), prepared->chain_blocks,
               prepared->chain_stats.transactions,
               prepared->db->num_pending(), watch.ElapsedSeconds());
  return prepared;
}

/// Runs one DCSat check and aborts on error (benchmark misconfiguration).
inline DcSatResult CheckOrDie(DcSatEngine& engine, const DenialConstraint& q,
                              const DcSatOptions& options) {
  auto result = engine.Check(q, options);
  if (!result.ok()) {
    std::fprintf(stderr, "DCSat(%s) failed: %s\n", q.ToString().c_str(),
                 result.status().ToString().c_str());
    std::abort();
  }
  return *result;
}

/// Registers one DCSat run as a google-benchmark timer with result counters
/// (satisfied flag, worlds evaluated, cliques enumerated, components).
inline void RegisterDcSat(const std::string& name, DcSatEngine* engine,
                          DenialConstraint q, DcSatOptions options) {
  // One warm-up run so lazily-built hash indexes (the analogue of the
  // paper's Postgres indexes, maintained in steady state) don't distort the
  // first timed iteration.
  (void)CheckOrDie(*engine, q, options);
  benchmark::RegisterBenchmark(
      name.c_str(),
      [engine, q = std::move(q), options](benchmark::State& state) {
        DcSatResult last;
        for (auto _ : state) {
          last = CheckOrDie(*engine, q, options);
          benchmark::DoNotOptimize(last.satisfied);
        }
        state.counters["satisfied"] = last.satisfied ? 1 : 0;
        state.counters["worlds"] =
            static_cast<double>(last.stats.num_worlds_evaluated);
        state.counters["cliques"] =
            static_cast<double>(last.stats.num_cliques);
        state.counters["components"] =
            static_cast<double>(last.stats.num_components);
        state.counters["threads"] =
            static_cast<double>(last.stats.threads_used);
      })
      ->Unit(benchmark::kMillisecond);
}

inline DcSatOptions NaiveOptions() {
  DcSatOptions options;
  options.algorithm = DcSatAlgorithm::kNaive;
  options.num_threads = BenchNumThreads();
  return options;
}

inline DcSatOptions OptOptions() {
  DcSatOptions options;
  options.algorithm = DcSatAlgorithm::kOpt;
  options.num_threads = BenchNumThreads();
  return options;
}

}  // namespace bench
}  // namespace bcdb

#endif  // BCDB_BENCH_BENCH_COMMON_H_
