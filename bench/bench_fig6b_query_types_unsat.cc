// Figure 6b: execution time per query type, *unsatisfied* denial
// constraints (the underlying query is true in some possible world, so the
// full clique search runs until a violating world is found). Expected
// shape: orders of magnitude slower than Figure 6a; OptDCSat usually beats
// NaiveDCSat because components confine the worlds it materializes — with
// the paper's noted caveat that the trend can reverse (e.g. qr3) when
// Naive's larger worlds happen to satisfy the query sooner.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace bcdb;
  using namespace bcdb::bench;
  using namespace bcdb::workload;

  ApplyThreadFlag(&argc, argv);

  auto data = Prepare(DefaultDataset());
  DcSatEngine* engine = data->engine.get();
  const bitcoin::WorkloadMetadata& meta = data->metadata;

  RegisterDcSat("Fig6b/qs/Naive", engine, SimpleUnsat(meta), NaiveOptions());
  RegisterDcSat("Fig6b/qs/Opt", engine, SimpleUnsat(meta), OptOptions());
  RegisterDcSat("Fig6b/qp3/Naive", engine, PathUnsat(meta, 3),
                NaiveOptions());
  RegisterDcSat("Fig6b/qp3/Opt", engine, PathUnsat(meta, 3), OptOptions());
  RegisterDcSat("Fig6b/qr3/Naive", engine, StarUnsat(meta, 3),
                NaiveOptions());
  RegisterDcSat("Fig6b/qr3/Opt", engine, StarUnsat(meta, 3), OptOptions());
  RegisterDcSat("Fig6b/qa/Naive", engine, AggregateUnsat(meta),
                NaiveOptions());

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
