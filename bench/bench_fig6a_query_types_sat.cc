// Figure 6a: execution time per query type, *satisfied* denial constraints
// (constants chosen so the underlying query is false in every possible
// world). Expected shape: all runs complete in milliseconds because the
// monotone pre-check over R ∪ T settles the answer.
//
// Query types: qs (simple), qp3 (path of 3), qr3 (star of 3), qa (sum
// aggregate). OptDCSat is run for the connected types; qa is not connected,
// so only NaiveDCSat applies (paper Section 7).

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace bcdb;
  using namespace bcdb::bench;
  using namespace bcdb::workload;

  ApplyThreadFlag(&argc, argv);

  auto data = Prepare(DefaultDataset());
  DcSatEngine* engine = data->engine.get();
  const bitcoin::WorkloadMetadata& meta = data->metadata;

  RegisterDcSat("Fig6a/qs/Naive", engine, SimpleSat(meta), NaiveOptions());
  RegisterDcSat("Fig6a/qs/Opt", engine, SimpleSat(meta), OptOptions());
  RegisterDcSat("Fig6a/qp3/Naive", engine, PathSat(meta, 3), NaiveOptions());
  RegisterDcSat("Fig6a/qp3/Opt", engine, PathSat(meta, 3), OptOptions());
  RegisterDcSat("Fig6a/qr3/Naive", engine, StarSat(meta, 3), NaiveOptions());
  RegisterDcSat("Fig6a/qr3/Opt", engine, StarSat(meta, 3), OptOptions());
  RegisterDcSat("Fig6a/qa/Naive", engine, AggregateSat(meta), NaiveOptions());

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
