// Figure 6d: execution time of qp3 (unsatisfied) as the number of pending
// transactions grows (1150 .. 7382). Expected shape: runtime grows with
// |T| (graph construction + clique search dominate) and OptDCSat stays
// consistently below NaiveDCSat.

#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace bcdb;
  using namespace bcdb::bench;
  using namespace bcdb::workload;

  ApplyThreadFlag(&argc, argv);

  const std::size_t kPendingCounts[] = {1150, 2764, 3753, 5079, 7382};
  std::vector<std::unique_ptr<PreparedDataset>> datasets;
  for (std::size_t pending : kPendingCounts) {
    datasets.push_back(Prepare(WithPendingTotal(DefaultDataset(), pending)));
    PreparedDataset* data = datasets.back().get();
    const std::string suffix = "/pending:" + std::to_string(pending);
    RegisterDcSat("Fig6d/qp3/Naive" + suffix, data->engine.get(),
                  PathUnsat(data->metadata, 3), NaiveOptions());
    RegisterDcSat("Fig6d/qp3/Opt" + suffix, data->engine.get(),
                  PathUnsat(data->metadata, 3), OptOptions());
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
