// Reproduces Table 1 of the paper: for each dataset, the block count and
// the transaction / input / output row counts of the current state R and of
// the pending set T. (Scaled synthetic stand-ins for D100/D200/D300; see
// DESIGN.md for the scaling rationale.)

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace bcdb;
  using namespace bcdb::bench;

  std::printf("Table 1: Datasets (synthetic stand-ins for D100/D200/D300)\n");
  std::printf("\n%-6s | %10s | %12s | %10s | %10s\n", "R", "Blocks",
              "Transactions", "Input", "Output");
  std::printf("-------+------------+--------------+------------+------------\n");

  struct Row {
    std::string name;
    bitcoin::ChainStats chain;
    bitcoin::ChainStats mempool;
    std::size_t blocks;
  };
  std::vector<Row> rows;
  for (const workload::DatasetSpec& spec : workload::AllDatasets()) {
    auto prepared = Prepare(spec);
    rows.push_back(Row{prepared->name, prepared->chain_stats,
                       prepared->mempool_stats, prepared->chain_blocks});
    std::printf("%-6s | %10zu | %12zu | %10zu | %10zu\n",
                rows.back().name.c_str(), rows.back().blocks,
                rows.back().chain.transactions, rows.back().chain.inputs,
                rows.back().chain.outputs);
  }

  std::printf("\n%-6s | %12s | %10s | %10s\n", "T", "Transactions", "Input",
              "Output");
  std::printf("-------+--------------+------------+------------\n");
  for (const Row& row : rows) {
    std::printf("%-6s | %12zu | %10zu | %10zu\n", row.name.c_str(),
                row.mempool.transactions, row.mempool.inputs,
                row.mempool.outputs);
  }
  std::printf(
      "\nPaper shape check: transactions grow superlinearly in blocks; "
      "pending counts match the paper (2741 / 3733 / 2766).\n");
  return 0;
}
