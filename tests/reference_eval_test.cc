// Differential testing of the compiled, index-backed evaluator against a
// deliberately naive reference implementation of the paper's Section-5
// semantics: enumerate *all* assignments of atoms to visible tuples by
// nested loops, check consistency, negation and comparisons directly, and
// fold aggregates over the full assignment bag. Any divergence is a bug in
// the planner, the index maintenance, or the early-exit logic.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "query/compiled_query.h"
#include "query/parser.h"
#include "relational/database.h"
#include "util/rng.h"

namespace bcdb {
namespace {

/// Reference evaluation. Returns the truth value of `q` over `view`
/// following the definitions verbatim (no indexes, no ordering, no early
/// exits).
class ReferenceEvaluator {
 public:
  ReferenceEvaluator(const Database& db, const DenialConstraint& q,
                     const WorldView& view)
      : db_(db), q_(q), view_(view) {}

  bool Evaluate() {
    assignments_.clear();
    std::map<std::string, Value> binding;
    Enumerate(0, binding);
    if (!q_.is_aggregate()) {
      return !assignments_.empty();
    }
    if (assignments_.empty()) return false;  // Empty bag -> false.
    const AggregateSpec& spec = *q_.aggregate;
    Value aggregate;
    switch (spec.fn) {
      case AggregateFunction::kCount:
        aggregate = Value::Int(static_cast<std::int64_t>(assignments_.size()));
        break;
      case AggregateFunction::kCountDistinct: {
        std::set<std::vector<std::string>> distinct;
        for (const auto& h : assignments_) {
          std::vector<std::string> projected;
          for (const Term& term : spec.args) {
            projected.push_back(h.at(term.name()).ToString());
          }
          distinct.insert(projected);
        }
        aggregate = Value::Int(static_cast<std::int64_t>(distinct.size()));
        break;
      }
      case AggregateFunction::kSum: {
        double total = 0;
        for (const auto& h : assignments_) {
          total += h.at(spec.args[0].name()).AsNumeric();
        }
        aggregate = Value::Real(total);
        break;
      }
      case AggregateFunction::kMax:
      case AggregateFunction::kMin: {
        std::optional<Value> best;
        for (const auto& h : assignments_) {
          const Value& v = h.at(spec.args[0].name());
          if (!best.has_value() ||
              (spec.fn == AggregateFunction::kMax ? v > *best : v < *best)) {
            best = v;
          }
        }
        aggregate = *best;
        break;
      }
    }
    return EvaluateComparison(aggregate, spec.op, spec.threshold);
  }

 private:
  /// Tries all visible tuples for positive atom `index`.
  void Enumerate(std::size_t index, std::map<std::string, Value>& binding) {
    if (index == q_.positive_atoms.size()) {
      if (CheckResiduals(binding)) assignments_.push_back(binding);
      return;
    }
    const Atom& atom = q_.positive_atoms[index];
    const Relation& rel =
        db_.relation(*db_.catalog().RelationId(atom.relation));
    for (TupleId id = 0; id < rel.num_tuples(); ++id) {
      if (!rel.IsVisible(id, view_)) continue;
      const Tuple& tuple = rel.tuple(id);
      std::map<std::string, Value> extended = binding;
      if (!MatchAtom(atom, tuple, extended)) continue;
      Enumerate(index + 1, extended);
    }
  }

  static bool MatchAtom(const Atom& atom, const Tuple& tuple,
                        std::map<std::string, Value>& binding) {
    for (std::size_t i = 0; i < atom.args.size(); ++i) {
      const Term& term = atom.args[i];
      if (!term.is_variable()) {
        if (tuple[i] != term.value()) return false;
        continue;
      }
      auto it = binding.find(term.name());
      if (it == binding.end()) {
        binding.emplace(term.name(), tuple[i]);
      } else if (it->second != tuple[i]) {
        return false;
      }
    }
    return true;
  }

  bool CheckResiduals(const std::map<std::string, Value>& binding) const {
    for (const Comparison& cmp : q_.comparisons) {
      const Value lhs =
          cmp.lhs.is_variable() ? binding.at(cmp.lhs.name()) : cmp.lhs.value();
      const Value rhs =
          cmp.rhs.is_variable() ? binding.at(cmp.rhs.name()) : cmp.rhs.value();
      if (!EvaluateComparison(lhs, cmp.op, rhs)) return false;
    }
    for (const Atom& atom : q_.negated_atoms) {
      std::vector<Value> ground;
      for (const Term& term : atom.args) {
        ground.push_back(term.is_variable() ? binding.at(term.name())
                                            : term.value());
      }
      const Relation& rel =
          db_.relation(*db_.catalog().RelationId(atom.relation));
      if (rel.ContainsVisible(Tuple(std::move(ground)), view_)) return false;
    }
    return true;
  }

  const Database& db_;
  const DenialConstraint& q_;
  const WorldView& view_;
  std::vector<std::map<std::string, Value>> assignments_;
};

Catalog MakeCatalog() {
  Catalog catalog;
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "E", {Attribute{"s", ValueType::kInt, false},
                            Attribute{"d", ValueType::kInt, false},
                            Attribute{"w", ValueType::kInt, true}}))
                  .ok());
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "L", {Attribute{"n", ValueType::kInt, false},
                            Attribute{"t", ValueType::kString, false}}))
                  .ok());
  return catalog;
}

/// Random database with base and pending tuples over a tiny domain.
Database MakeRandomDatabase(std::uint64_t seed, std::size_t* num_owners) {
  Xoshiro256 rng(seed);
  Database db(MakeCatalog());
  *num_owners = 2 + rng.NextBelow(3);
  for (std::size_t o = 0; o < *num_owners; ++o) db.RegisterOwner();
  const char* tags[] = {"red", "blue"};
  const std::size_t edges = 4 + rng.NextBelow(10);
  for (std::size_t i = 0; i < edges; ++i) {
    const TupleOwner owner =
        rng.NextBool(0.5) ? kBaseOwner
                          : static_cast<TupleOwner>(rng.NextBelow(*num_owners));
    EXPECT_TRUE(db.Insert("E",
                          Tuple({Value::Int(rng.NextInRange(0, 3)),
                                 Value::Int(rng.NextInRange(0, 3)),
                                 Value::Int(rng.NextInRange(0, 5))}),
                          owner)
                    .ok());
  }
  const std::size_t labels = 2 + rng.NextBelow(5);
  for (std::size_t i = 0; i < labels; ++i) {
    const TupleOwner owner =
        rng.NextBool(0.5) ? kBaseOwner
                          : static_cast<TupleOwner>(rng.NextBelow(*num_owners));
    EXPECT_TRUE(db.Insert("L",
                          Tuple({Value::Int(rng.NextInRange(0, 3)),
                                 Value::Str(tags[rng.NextBelow(2)])}),
                          owner)
                    .ok());
  }
  return db;
}

const char* kQueries[] = {
    "q() :- E(x, y, w)",
    "q() :- E(x, x, w)",
    "q() :- E(0, y, w)",
    "q() :- E(x, y, w), E(y, z, v)",
    "q() :- E(x, y, w), E(y, z, v), x != z",
    "q() :- E(x, y, w), L(y, 'red')",
    "q() :- E(x, y, w), L(x, t), L(y, t)",
    "q() :- E(x, y, w), not L(y, 'red')",
    "q() :- E(x, y, w), not L(x, 'blue'), w > 2",
    "q() :- E(x, y, w), E(u, v, w), x < u",
    "q() :- E(x, y, 3)",
    "[q(count()) :- E(x, y, w)] > 4",
    "[q(count()) :- E(x, y, w), L(y, 'red')] = 2",
    "[q(cntd(x)) :- E(x, y, w)] >= 2",
    "[q(cntd(x, y)) :- E(x, y, w)] < 5",
    "[q(sum(w)) :- E(x, y, w)] > 10",
    "[q(sum(w)) :- E(0, y, w)] <= 6",
    "[q(max(w)) :- E(x, y, w)] = 5",
    "[q(min(w)) :- E(x, y, w)] < 2",
};

class ReferenceEvalTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReferenceEvalTest, CompiledMatchesReferenceOverManyWorlds) {
  std::size_t num_owners = 0;
  Database db = MakeRandomDatabase(GetParam(), &num_owners);
  Xoshiro256 rng(GetParam() ^ 0xabcdef);

  // Views: base, full, and a few random activation patterns.
  std::vector<WorldView> views = {db.BaseView(), db.FullView()};
  for (int i = 0; i < 4; ++i) {
    WorldView view = db.BaseView();
    for (std::size_t o = 0; o < num_owners; ++o) {
      if (rng.NextBool(0.5)) view.Activate(static_cast<TupleOwner>(o));
    }
    views.push_back(view);
  }

  for (const char* text : kQueries) {
    auto q = ParseDenialConstraint(text);
    ASSERT_TRUE(q.ok()) << text;
    auto compiled = CompiledQuery::Compile(*q, &db);
    ASSERT_TRUE(compiled.ok()) << text << ": " << compiled.status();
    for (std::size_t v = 0; v < views.size(); ++v) {
      ReferenceEvaluator reference(db, *q, views[v]);
      EXPECT_EQ(compiled->Evaluate(views[v]), reference.Evaluate())
          << text << " view " << v << " seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReferenceEvalTest,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace bcdb
