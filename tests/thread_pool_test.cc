#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <cstddef>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace bcdb {
namespace {

TEST(ThreadPoolTest, ZeroThreadsBecomesOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, SubmitRunsTaskAndFutureResolves) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  std::future<void> done = pool.Submit([&] { value.store(42); });
  done.get();
  EXPECT_EQ(value.load(), 42);
}

TEST(ThreadPoolTest, ManyTasksAllRunExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 2000;
  std::vector<std::atomic<int>> counts(kTasks);
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit([&counts, i] { counts[i].fetch_add(1); }));
  }
  for (std::future<void>& f : futures) f.get();
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolTest, StealingBalancesSkewedBatches) {
  // One long task pins a worker; the flood of short tasks round-robined onto
  // its deque must still complete because siblings steal them.
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  std::atomic<std::size_t> short_done{0};
  std::future<void> long_task = pool.Submit([&] {
    while (!release.load()) std::this_thread::yield();
  });
  constexpr std::size_t kShort = 200;
  std::vector<std::future<void>> futures;
  futures.reserve(kShort);
  for (std::size_t i = 0; i < kShort; ++i) {
    futures.push_back(pool.Submit([&] { short_done.fetch_add(1); }));
  }
  // On a single-core host the pinned worker still shares the CPU, but the
  // short tasks must not *deadlock* behind the long one.
  for (std::future<void>& f : futures) f.get();
  EXPECT_EQ(short_done.load(), kShort);
  release.store(true);
  long_task.get();
}

TEST(ThreadPoolTest, TaskExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  std::future<void> f = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker survives the throwing task.
  std::atomic<bool> ran{false};
  pool.Submit([&] { ran.store(true); }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<std::size_t> done{0};
  constexpr std::size_t kTasks = 100;
  {
    ThreadPool pool(2);
    for (std::size_t i = 0; i < kTasks; ++i) {
      pool.Submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        done.fetch_add(1);
      });
    }
  }  // Destructor joins after draining.
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolTest, EffectiveThreadsConvention) {
  EXPECT_EQ(ThreadPool::EffectiveThreads(0),
            ThreadPool::HardwareConcurrency());
  EXPECT_EQ(ThreadPool::EffectiveThreads(1), 1u);
  EXPECT_EQ(ThreadPool::EffectiveThreads(7), 7u);
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1u);
}

TEST(ThreadPoolTest, SharedPoolIsUsableSingleton) {
  ThreadPool& shared = ThreadPool::Shared();
  EXPECT_EQ(&shared, &ThreadPool::Shared());
  EXPECT_EQ(shared.num_threads(), ThreadPool::HardwareConcurrency());
  std::atomic<bool> ran{false};
  shared.Submit([&] { ran.store(true); }).get();
  EXPECT_TRUE(ran.load());
}

TEST(CancellationTokenTest, FreshTokenStopsNothing) {
  CancellationToken token;
  EXPECT_FALSE(token.ShouldStop());
  EXPECT_FALSE(token.ShouldStop(0));
  EXPECT_FALSE(token.ShouldStop(SIZE_MAX - 1));
  EXPECT_EQ(token.rank_limit(), SIZE_MAX);
}

TEST(CancellationTokenTest, RequestStopCancelsEveryRank) {
  CancellationToken token;
  token.RequestStop();
  EXPECT_TRUE(token.ShouldStop(0));
  EXPECT_TRUE(token.ShouldStop(123));
}

TEST(CancellationTokenTest, CancelRanksAboveLeavesLowerRanksRunning) {
  CancellationToken token;
  token.CancelRanksAbove(5);
  EXPECT_FALSE(token.ShouldStop(0));
  EXPECT_FALSE(token.ShouldStop(5));  // Rank 5 itself keeps running.
  EXPECT_TRUE(token.ShouldStop(6));
  EXPECT_TRUE(token.ShouldStop(100));
}

TEST(CancellationTokenTest, RankLimitIsMonotone) {
  CancellationToken token;
  token.CancelRanksAbove(10);
  token.CancelRanksAbove(30);  // Higher rank must not raise the limit back.
  EXPECT_EQ(token.rank_limit(), 10u);
  EXPECT_TRUE(token.ShouldStop(11));
  token.CancelRanksAbove(3);
  EXPECT_EQ(token.rank_limit(), 3u);
  EXPECT_FALSE(token.ShouldStop(3));
  EXPECT_TRUE(token.ShouldStop(4));
}

TEST(CancellationTokenTest, ConcurrentCancelKeepsMinimum) {
  // Many threads racing CancelRanksAbove must settle on the global minimum —
  // the CAS loop in the token is exactly what makes the parallel DCSat
  // witness deterministic.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRounds = 50;
  for (std::size_t round = 0; round < kRounds; ++round) {
    CancellationToken token;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back(
          [&token, t] { token.CancelRanksAbove(t + 1); });
    }
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(token.rank_limit(), 1u);
  }
}

}  // namespace
}  // namespace bcdb
