#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/blockchain_db.h"
#include "core/mutation_log.h"

namespace bcdb {
namespace {

MutationEvent Event(MutationKind kind) {
  MutationEvent event;
  event.kind = kind;
  return event;
}

TEST(MutationLogTest, StampsMonotoneSequenceNumbers) {
  MutationLog log;
  EXPECT_EQ(log.begin_seq(), 0u);
  EXPECT_EQ(log.end_seq(), 0u);
  for (int i = 0; i < 5; ++i) log.Append(Event(MutationKind::kPendingAdded));
  EXPECT_EQ(log.begin_seq(), 0u);
  EXPECT_EQ(log.end_seq(), 5u);

  std::vector<MutationEvent> events;
  ASSERT_EQ(log.ReadSince(0, &events), MutationLog::ReadResult::kOk);
  ASSERT_EQ(events.size(), 5u);
  for (std::uint64_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);
  }
}

TEST(MutationLogTest, ReadSinceReturnsSuffixAndEmptyTail) {
  MutationLog log;
  for (int i = 0; i < 4; ++i) log.Append(Event(MutationKind::kPendingAdded));

  std::vector<MutationEvent> tail;
  ASSERT_EQ(log.ReadSince(2, &tail), MutationLog::ReadResult::kOk);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].seq, 2u);
  EXPECT_EQ(tail[1].seq, 3u);

  // A caught-up cursor reads nothing but succeeds.
  std::vector<MutationEvent> none;
  EXPECT_EQ(log.ReadSince(4, &none), MutationLog::ReadResult::kOk);
  EXPECT_TRUE(none.empty());
}

TEST(MutationLogTest, ForeignCursorIsACallerBugDistinctFromTrimming) {
  MutationLog log;
  for (int i = 0; i < 4; ++i) log.Append(Event(MutationKind::kPendingAdded));

  // A cursor past the end cannot come from this log: it is a caller bug
  // (mixing cursors between logs), asserted in debug builds and reported as
  // kForeignCursor — not kTrimmed — in release builds, so consumers never
  // mistake it for a legitimate "rebuild your state" signal.
  std::vector<MutationEvent> none;
  EXPECT_DEBUG_DEATH(
      {
        const MutationLog::ReadResult result = log.ReadSince(5, &none);
        EXPECT_EQ(result, MutationLog::ReadResult::kForeignCursor);
        EXPECT_TRUE(none.empty());
      },
      "cursor beyond end_seq");
}

TEST(MutationLogTest, TrimsToCapacityAndFailsLaggingReaders) {
  MutationLog log(/*capacity=*/3);
  for (int i = 0; i < 7; ++i) {
    log.Append(Event(MutationKind::kPendingDiscarded));
  }
  EXPECT_EQ(log.end_seq(), 7u);
  EXPECT_EQ(log.begin_seq(), 4u);

  // A reader whose cursor fell out of the retention window learns it missed
  // events; the output vector is untouched.
  std::vector<MutationEvent> events;
  EXPECT_EQ(log.ReadSince(3, &events), MutationLog::ReadResult::kTrimmed);
  EXPECT_TRUE(events.empty());

  // The oldest retained seq is still readable.
  ASSERT_EQ(log.ReadSince(4, &events), MutationLog::ReadResult::kOk);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events.front().seq, 4u);
  EXPECT_EQ(events.back().seq, 6u);
}

TEST(MutationLogTest, ZeroCapacityClampsToOne) {
  MutationLog log(/*capacity=*/0);
  log.Append(Event(MutationKind::kPendingAdded));
  log.Append(Event(MutationKind::kPendingApplied));
  EXPECT_EQ(log.begin_seq(), 1u);
  std::vector<MutationEvent> events;
  ASSERT_EQ(log.ReadSince(1, &events), MutationLog::ReadResult::kOk);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, MutationKind::kPendingApplied);
}

/// End-to-end: the database records every mutation kind with the touched
/// relations, and push listeners observe the same stream.
class DatabaseMutationsTest : public ::testing::Test {
 protected:
  static BlockchainDatabase MakeDb() {
    Catalog catalog;
    EXPECT_TRUE(catalog
                    .AddRelation(RelationSchema(
                        "R", {Attribute{"a", ValueType::kInt, false}}))
                    .ok());
    EXPECT_TRUE(catalog
                    .AddRelation(RelationSchema(
                        "S", {Attribute{"x", ValueType::kInt, false}}))
                    .ok());
    auto db = BlockchainDatabase::Create(std::move(catalog), ConstraintSet{});
    EXPECT_TRUE(db.ok());
    return std::move(*db);
  }
};

TEST_F(DatabaseMutationsTest, RecordsEveryMutationKind) {
  BlockchainDatabase db = MakeDb();
  const std::size_t r_id = *db.database().RelationId("R");
  const std::size_t s_id = *db.database().RelationId("S");

  ASSERT_TRUE(db.InsertCurrent("R", Tuple({Value::Int(1)})).ok());

  Transaction both("both");
  both.Add("R", Tuple({Value::Int(2)}));
  both.Add("S", Tuple({Value::Int(3)}));
  auto applied_id = db.AddPending(both);
  ASSERT_TRUE(applied_id.ok());

  Transaction doomed("doomed");
  doomed.Add("S", Tuple({Value::Int(4)}));
  auto doomed_id = db.AddPending(doomed);
  ASSERT_TRUE(doomed_id.ok());

  ASSERT_TRUE(db.ApplyPending(*applied_id).ok());
  ASSERT_TRUE(db.DiscardPending(*doomed_id).ok());

  std::vector<MutationEvent> events;
  ASSERT_EQ(db.mutations().ReadSince(0, &events),
            MutationLog::ReadResult::kOk);
  ASSERT_EQ(events.size(), 5u);

  EXPECT_EQ(events[0].kind, MutationKind::kCurrentInserted);
  EXPECT_EQ(events[0].relation_ids, std::vector<std::size_t>{r_id});

  EXPECT_EQ(events[1].kind, MutationKind::kPendingAdded);
  EXPECT_EQ(events[1].pending_id, *applied_id);
  EXPECT_EQ(events[1].relation_ids, (std::vector<std::size_t>{r_id, s_id}));

  EXPECT_EQ(events[2].kind, MutationKind::kPendingAdded);
  EXPECT_EQ(events[2].pending_id, *doomed_id);
  EXPECT_EQ(events[2].relation_ids, std::vector<std::size_t>{s_id});

  EXPECT_EQ(events[3].kind, MutationKind::kPendingApplied);
  EXPECT_EQ(events[3].pending_id, *applied_id);
  EXPECT_EQ(events[3].relation_ids, (std::vector<std::size_t>{r_id, s_id}));

  EXPECT_EQ(events[4].kind, MutationKind::kPendingDiscarded);
  EXPECT_EQ(events[4].pending_id, *doomed_id);
  EXPECT_EQ(events[4].relation_ids, std::vector<std::size_t>{s_id});

  // Versions advance with each mutation and seqs are dense.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
    EXPECT_GT(events[i].version, events[i - 1].version);
  }

  // The relation footprint of a discarded transaction survives the discard
  // (its tuples are gone from the store but consumers may still need to
  // reason about the slot) while the slot itself is retired.
  EXPECT_FALSE(db.IsPending(*doomed_id));
  EXPECT_EQ(db.PendingRelations(*doomed_id), std::vector<std::size_t>{s_id});
}

TEST_F(DatabaseMutationsTest, ListenersObserveAndUnsubscribe) {
  BlockchainDatabase db = MakeDb();
  std::vector<MutationKind> seen_a;
  std::vector<MutationKind> seen_b;
  const MutationListenerId a = db.AddMutationListener(
      [&](const MutationEvent& event) { seen_a.push_back(event.kind); });
  const MutationListenerId b = db.AddMutationListener(
      [&](const MutationEvent& event) { seen_b.push_back(event.kind); });

  Transaction txn("t");
  txn.Add("R", Tuple({Value::Int(1)}));
  auto id = db.AddPending(txn);
  ASSERT_TRUE(id.ok());
  db.RemoveMutationListener(a);
  ASSERT_TRUE(db.DiscardPending(*id).ok());
  db.RemoveMutationListener(b);
  ASSERT_TRUE(db.InsertCurrent("R", Tuple({Value::Int(2)})).ok());

  EXPECT_EQ(seen_a, std::vector<MutationKind>{MutationKind::kPendingAdded});
  EXPECT_EQ(seen_b, (std::vector<MutationKind>{MutationKind::kPendingAdded,
                                               MutationKind::kPendingDiscarded}));
}

TEST_F(DatabaseMutationsTest, ListenerMayRegisterAndRemoveFromCallback) {
  // Registering or removing listeners from inside a callback reallocates or
  // overwrites the listener vector while Publish is iterating it; the loop
  // must survive that, a listener registered mid-publish first sees the
  // *next* event, and a self-removing listener finishes its current call.
  BlockchainDatabase db = MakeDb();
  std::vector<MutationKind> outer_seen;
  std::vector<MutationKind> inner_seen;
  MutationListenerId outer = 0;
  bool registered = false;
  outer = db.AddMutationListener([&](const MutationEvent& event) {
    outer_seen.push_back(event.kind);
    if (!registered) {
      registered = true;
      // Enough registrations to force a reallocation under the loop.
      for (int i = 0; i < 64; ++i) db.AddMutationListener(nullptr);
      db.AddMutationListener([&](const MutationEvent& inner_event) {
        inner_seen.push_back(inner_event.kind);
      });
      db.RemoveMutationListener(outer);
    }
  });

  Transaction txn("t");
  txn.Add("R", Tuple({Value::Int(1)}));
  auto id = db.AddPending(txn);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(db.DiscardPending(*id).ok());

  EXPECT_EQ(outer_seen, std::vector<MutationKind>{MutationKind::kPendingAdded});
  EXPECT_EQ(inner_seen,
            std::vector<MutationKind>{MutationKind::kPendingDiscarded});
}

// Exhaustive over the enum: every kind below kNumMutationKinds must map to
// a distinct, real name — "?" would mean a kind was added without updating
// MutationKindToString (or kNumMutationKinds without a new enumerator).
TEST(MutationKindToStringTest, CoversEveryKindWithDistinctNames) {
  std::set<std::string> names;
  for (std::size_t raw = 0; raw < kNumMutationKinds; ++raw) {
    const char* name = MutationKindToString(static_cast<MutationKind>(raw));
    EXPECT_STRNE(name, "?") << "kind " << raw << " has no name";
    EXPECT_TRUE(names.insert(name).second)
        << "kind " << raw << " reuses name \"" << name << "\"";
  }
  EXPECT_EQ(names.size(), kNumMutationKinds);
  EXPECT_EQ(MutationKindToString(MutationKind::kCurrentRemoved),
            std::string("current-removed"));
  EXPECT_EQ(MutationKindToString(MutationKind::kPendingRestored),
            std::string("pending-restored"));
}

}  // namespace
}  // namespace bcdb
