#include <gtest/gtest.h>

#include "bitcoin/generator.h"
#include "bitcoin/to_relational.h"
#include "core/possible_worlds.h"

namespace bcdb {
namespace bitcoin {
namespace {

TEST(ToRelationalTest, CatalogMatchesExample1) {
  Catalog catalog = MakeBitcoinCatalog();
  ASSERT_TRUE(catalog.HasRelation("TxOut"));
  ASSERT_TRUE(catalog.HasRelation("TxIn"));
  const RelationSchema& txout = catalog.schema(*catalog.RelationId("TxOut"));
  EXPECT_EQ(txout.arity(), 4u);
  EXPECT_TRUE(txout.attribute(3).non_negative);  // amount
  const RelationSchema& txin = catalog.schema(*catalog.RelationId("TxIn"));
  EXPECT_EQ(txin.arity(), 6u);
}

TEST(ToRelationalTest, ConstraintsMatchExample1) {
  Catalog catalog = MakeBitcoinCatalog();
  auto constraints = MakeBitcoinConstraints(catalog);
  ASSERT_TRUE(constraints.ok());
  EXPECT_EQ(constraints->fds().size(), 2u);
  EXPECT_TRUE(constraints->fds()[0].is_key());
  EXPECT_TRUE(constraints->fds()[1].is_key());
  EXPECT_EQ(constraints->inds().size(), 2u);
}

TEST(ToRelationalTest, TransactionRows) {
  BitcoinTransaction tx(
      {TxInput{OutPoint{10, 1}, "U1Pk", 5, SignatureFor("U1Pk")}},
      {TxOutput{"U2Pk", 3}, TxOutput{"U1Pk", 2}});
  Transaction relational = ToRelationalTransaction(tx);
  ASSERT_EQ(relational.size(), 3u);  // 1 input + 2 outputs.
  EXPECT_EQ(relational.items()[0].relation, "TxIn");
  // TxIn(prevTxId, prevSer, pk, amount, newTxId, sig).
  const Tuple& in_row = relational.items()[0].tuple;
  EXPECT_EQ(in_row[0], Value::Int(10));
  EXPECT_EQ(in_row[1], Value::Int(1));
  EXPECT_EQ(in_row[2], Value::Str("U1Pk"));
  EXPECT_EQ(in_row[4], Value::Int(tx.txid()));
  EXPECT_EQ(in_row[5], Value::Str("U1Sig"));
  // TxOut serials are 1-based.
  EXPECT_EQ(relational.items()[1].tuple[1], Value::Int(1));
  EXPECT_EQ(relational.items()[2].tuple[1], Value::Int(2));
}

TEST(ToRelationalTest, GeneratedWorkloadImageIsConsistent) {
  GeneratorParams params;
  params.seed = 3;
  params.num_blocks = 30;
  params.num_users = 10;
  params.num_pending = 15;
  params.num_contradictions = 3;
  params.pending_chain_depth = 4;
  params.star_size = 3;
  params.rich_payments = 2;
  auto workload = GenerateWorkload(params);
  ASSERT_TRUE(workload.ok()) << workload.status();

  auto db = BuildBlockchainDatabase(workload->node);
  ASSERT_TRUE(db.ok()) << db.status();

  // The confirmed chain satisfies the Example-1 constraints.
  EXPECT_TRUE(db->ValidateCurrentState().ok());

  // One pending relational transaction per mempool entry.
  EXPECT_EQ(db->num_pending(), workload->node.mempool().size());

  // Row counts line up with the node's stats.
  const ChainStats chain_stats = workload->node.chain().Stats();
  const auto txout_id = db->catalog().RelationId("TxOut");
  const auto txin_id = db->catalog().RelationId("TxIn");
  ASSERT_TRUE(txout_id.ok());
  ASSERT_TRUE(txin_id.ok());
  WorldView base = db->BaseView();
  EXPECT_EQ(db->database().relation(*txout_id).CountVisible(base),
            chain_stats.outputs);
  EXPECT_EQ(db->database().relation(*txin_id).CountVisible(base),
            chain_stats.inputs);

  // Every individual mempool transaction whose parents are confirmed can be
  // appended; the designated chain is appendable as a whole.
  std::vector<PendingId> chain_ids;
  for (PendingId id = 0; id < db->num_pending(); ++id) {
    const BitcoinTransaction& tx =
        workload->node.mempool().transactions()[id];
    if (!tx.outputs().empty() &&
        tx.outputs()[0].pubkey.rfind("ChainA", 0) == 0) {
      chain_ids.push_back(id);
    }
  }
  ASSERT_EQ(chain_ids.size(), params.pending_chain_depth);
  EXPECT_TRUE(IsPossibleWorld(*db, chain_ids));
}

TEST(ToRelationalTest, ConflictingPendingPairIsNotAWorld) {
  GeneratorParams params;
  params.seed = 5;
  params.num_blocks = 25;
  params.num_users = 10;
  params.num_pending = 12;
  params.num_contradictions = 2;
  params.pending_chain_depth = 3;
  params.star_size = 2;
  params.rich_payments = 2;
  auto workload = GenerateWorkload(params);
  ASSERT_TRUE(workload.ok());
  auto db = BuildBlockchainDatabase(workload->node);
  ASSERT_TRUE(db.ok());

  const auto conflicts = workload->node.mempool().ConflictPairs();
  ASSERT_FALSE(conflicts.empty());
  for (const auto& [i, j] : conflicts) {
    EXPECT_FALSE(IsPossibleWorld(*db, {i, j}));
    EXPECT_TRUE(IsPossibleWorld(*db, {i}));
    EXPECT_TRUE(IsPossibleWorld(*db, {j}));
  }
}

}  // namespace
}  // namespace bitcoin
}  // namespace bcdb
