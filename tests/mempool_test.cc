#include <gtest/gtest.h>

#include "bitcoin/mempool.h"
#include "bitcoin/node.h"

namespace bcdb {
namespace bitcoin {
namespace {

BitcoinTransaction Payment(const OutPoint& src, const std::string& from,
                           Satoshi in_amount, const std::string& to,
                           Satoshi amount, Satoshi fee = 1000) {
  std::vector<TxOutput> outputs{TxOutput{to, amount}};
  const Satoshi change = in_amount - amount - fee;
  if (change > 0) outputs.push_back(TxOutput{from, change});
  return BitcoinTransaction(
      {TxInput{src, from, in_amount, SignatureFor(from)}}, outputs);
}

class MempoolTest : public ::testing::Test {
 protected:
  MempoolTest() {
    coinbase_ = std::make_unique<BitcoinTransaction>(
        BitcoinTransaction::Coinbase("AlicePk", kBlockReward, 1));
    EXPECT_TRUE(chain_.MineAndAppend({*coinbase_}).ok());
    alice_utxo_ = OutPoint{coinbase_->txid(), 1};
  }

  Blockchain chain_;
  Mempool mempool_;
  std::unique_ptr<BitcoinTransaction> coinbase_;
  OutPoint alice_utxo_;
};

TEST_F(MempoolTest, AcceptsValidSpendOfChainUtxo) {
  EXPECT_TRUE(mempool_
                  .Add(chain_, Payment(alice_utxo_, "AlicePk", kBlockReward,
                                       "BobPk", kCoin))
                  .ok());
  EXPECT_EQ(mempool_.size(), 1u);
}

TEST_F(MempoolTest, AcceptsDependencyChains) {
  BitcoinTransaction parent =
      Payment(alice_utxo_, "AlicePk", kBlockReward, "BobPk", kCoin);
  BitcoinTransaction child =
      Payment(OutPoint{parent.txid(), 1}, "BobPk", kCoin, "CarolPk", kCoin / 2);
  ASSERT_TRUE(mempool_.Add(chain_, parent).ok());
  EXPECT_TRUE(mempool_.Add(chain_, child).ok());
}

TEST_F(MempoolTest, RejectsChildBeforeParent) {
  BitcoinTransaction parent =
      Payment(alice_utxo_, "AlicePk", kBlockReward, "BobPk", kCoin);
  BitcoinTransaction child =
      Payment(OutPoint{parent.txid(), 1}, "BobPk", kCoin, "CarolPk", kCoin / 2);
  EXPECT_EQ(mempool_.Add(chain_, child).code(), StatusCode::kNotFound);
}

TEST_F(MempoolTest, KeepsConflictingTransactions) {
  // Unlike relay policy, the model keeps signed double spends: either may
  // still confirm, which is exactly what DCSat must reason about.
  BitcoinTransaction pay_bob =
      Payment(alice_utxo_, "AlicePk", kBlockReward, "BobPk", kCoin);
  BitcoinTransaction pay_carol =
      Payment(alice_utxo_, "AlicePk", kBlockReward, "CarolPk", kCoin);
  ASSERT_TRUE(mempool_.Add(chain_, pay_bob).ok());
  ASSERT_TRUE(mempool_.Add(chain_, pay_carol).ok());
  auto conflicts = mempool_.ConflictPairs();
  ASSERT_EQ(conflicts.size(), 1u);
}

TEST_F(MempoolTest, RejectsDuplicatesAndCoinbases) {
  BitcoinTransaction pay =
      Payment(alice_utxo_, "AlicePk", kBlockReward, "BobPk", kCoin);
  ASSERT_TRUE(mempool_.Add(chain_, pay).ok());
  EXPECT_EQ(mempool_.Add(chain_, pay).code(), StatusCode::kAlreadyExists);
  EXPECT_FALSE(
      mempool_.Add(chain_, BitcoinTransaction::Coinbase("X", kCoin, 9)).ok());
}

TEST_F(MempoolTest, RejectsBadSignatureAndMismatch) {
  BitcoinTransaction forged(
      {TxInput{alice_utxo_, "AlicePk", kBlockReward, "EveSig"}},
      {TxOutput{"EvePk", kCoin}});
  EXPECT_FALSE(mempool_.Add(chain_, forged).ok());

  BitcoinTransaction wrong_amount(
      {TxInput{alice_utxo_, "AlicePk", kCoin, SignatureFor("AlicePk")}},
      {TxOutput{"BobPk", kCoin / 2}});
  EXPECT_FALSE(mempool_.Add(chain_, wrong_amount).ok());
}

TEST_F(MempoolTest, RejectsSpendOfChainSpentOutput) {
  BitcoinTransaction pay =
      Payment(alice_utxo_, "AlicePk", kBlockReward, "BobPk", kCoin);
  ASSERT_TRUE(chain_.MineAndAppend({pay}).ok());
  // alice_utxo_ is now spent on-chain: a rival can never confirm.
  BitcoinTransaction rival =
      Payment(alice_utxo_, "AlicePk", kBlockReward, "CarolPk", kCoin);
  EXPECT_EQ(mempool_.Add(chain_, rival).code(), StatusCode::kNotFound);
}

TEST_F(MempoolTest, EvictionOnConfirmation) {
  BitcoinTransaction pay_bob =
      Payment(alice_utxo_, "AlicePk", kBlockReward, "BobPk", kCoin);
  BitcoinTransaction pay_carol =
      Payment(alice_utxo_, "AlicePk", kBlockReward, "CarolPk", kCoin);
  BitcoinTransaction child =
      Payment(OutPoint{pay_carol.txid(), 1}, "CarolPk", kCoin, "DanPk",
              kCoin / 2);
  ASSERT_TRUE(mempool_.Add(chain_, pay_bob).ok());
  ASSERT_TRUE(mempool_.Add(chain_, pay_carol).ok());
  ASSERT_TRUE(mempool_.Add(chain_, child).ok());

  // Confirm pay_bob: pay_carol loses its input, child loses its parent.
  ASSERT_TRUE(chain_.MineAndAppend({pay_bob}).ok());
  const std::size_t evicted =
      mempool_.RemoveConfirmedAndInvalid(chain_, chain_.tip());
  EXPECT_EQ(evicted, 3u);
  EXPECT_EQ(mempool_.size(), 0u);
}

TEST_F(MempoolTest, SurvivorsKeptAfterConfirmation) {
  BitcoinTransaction pay_bob =
      Payment(alice_utxo_, "AlicePk", kBlockReward, "BobPk", kCoin);
  BitcoinTransaction child =
      Payment(OutPoint{pay_bob.txid(), 1}, "BobPk", kCoin, "DanPk", kCoin / 2);
  ASSERT_TRUE(mempool_.Add(chain_, pay_bob).ok());
  ASSERT_TRUE(mempool_.Add(chain_, child).ok());

  ASSERT_TRUE(chain_.MineAndAppend({pay_bob}).ok());
  const std::size_t evicted =
      mempool_.RemoveConfirmedAndInvalid(chain_, chain_.tip());
  EXPECT_EQ(evicted, 1u);  // Only the confirmed parent.
  EXPECT_EQ(mempool_.size(), 1u);
  EXPECT_TRUE(mempool_.Contains(child.txid()));
}

TEST_F(MempoolTest, ResyncDropsEntriesStrandedByReorg) {
  // A transaction funded by Alice's coinbase, and its child.
  BitcoinTransaction pay_bob =
      Payment(alice_utxo_, "AlicePk", kBlockReward, "BobPk", kCoin);
  BitcoinTransaction child =
      Payment(OutPoint{pay_bob.txid(), 1}, "BobPk", kCoin, "DanPk", kCoin / 2);
  ASSERT_TRUE(mempool_.Add(chain_, pay_bob).ok());
  ASSERT_TRUE(mempool_.Add(chain_, child).ok());

  // A reorg to a rival branch strands them: Alice's coinbase no longer
  // exists on the active chain, so the whole ancestry cascades out.
  std::vector<Block> branch;
  BlockHash prev = chain_.blocks()[0].hash();
  for (std::uint64_t h = 1; h <= 2; ++h) {
    branch.emplace_back(
        h, prev,
        std::vector<BitcoinTransaction>{
            BitcoinTransaction::Coinbase("RivalPk", kBlockReward, h)});
    prev = branch.back().hash();
  }
  ASSERT_TRUE(chain_.AcceptBlock(branch[0]).ok());
  auto reorg = chain_.AcceptBlock(branch[1]);
  ASSERT_TRUE(reorg.ok());
  ASSERT_EQ(reorg->kind, ChainUpdate::Kind::kReorged);

  const std::vector<TxId> evicted = mempool_.Resync(chain_);
  EXPECT_EQ(evicted.size(), 2u);
  EXPECT_EQ(mempool_.size(), 0u);
}

TEST_F(MempoolTest, EvictToCapacityDropsCheapestFirstWithDescendants) {
  // Three independent outputs to spend from: mine two more coinbases.
  BitcoinTransaction cb2 = BitcoinTransaction::Coinbase(
      "AlicePk", kBlockReward, chain_.height() + 1);
  ASSERT_TRUE(chain_.MineAndAppend({cb2}).ok());
  BitcoinTransaction cb3 = BitcoinTransaction::Coinbase(
      "AlicePk", kBlockReward, chain_.height() + 1);
  ASSERT_TRUE(chain_.MineAndAppend({cb3}).ok());

  BitcoinTransaction cheap = Payment(alice_utxo_, "AlicePk", kBlockReward,
                                     "BobPk", kCoin, /*fee=*/100);
  BitcoinTransaction cheap_child = Payment(OutPoint{cheap.txid(), 1}, "BobPk",
                                           kCoin, "DanPk", kCoin / 2,
                                           /*fee=*/50'000);
  BitcoinTransaction mid = Payment(OutPoint{cb2.txid(), 1}, "AlicePk",
                                   kBlockReward, "CarolPk", kCoin,
                                   /*fee=*/5'000);
  BitcoinTransaction rich = Payment(OutPoint{cb3.txid(), 1}, "AlicePk",
                                    kBlockReward, "ErinPk", kCoin,
                                    /*fee=*/90'000);
  ASSERT_TRUE(mempool_.Add(chain_, cheap).ok());
  ASSERT_TRUE(mempool_.Add(chain_, cheap_child).ok());
  ASSERT_TRUE(mempool_.Add(chain_, mid).ok());
  ASSERT_TRUE(mempool_.Add(chain_, rich).ok());

  // Capacity 2: the lowest-fee entry goes first, taking its now-unfunded
  // child with it — which already lands the pool at the cap, so the
  // mid-fee transaction survives.
  const std::vector<TxId> evicted = mempool_.EvictToCapacity(chain_, 2);
  EXPECT_EQ(evicted.size(), 2u);
  EXPECT_EQ(mempool_.size(), 2u);
  EXPECT_FALSE(mempool_.Contains(cheap.txid()));
  EXPECT_FALSE(mempool_.Contains(cheap_child.txid()));
  EXPECT_TRUE(mempool_.Contains(mid.txid()));
  EXPECT_TRUE(mempool_.Contains(rich.txid()));

  // Already within capacity: a no-op.
  EXPECT_TRUE(mempool_.EvictToCapacity(chain_, 2).empty());
}

TEST_F(MempoolTest, ReplaceByFeeRequiresStrictlyHigherFee) {
  BitcoinTransaction original = Payment(alice_utxo_, "AlicePk", kBlockReward,
                                        "BobPk", kCoin, /*fee=*/10'000);
  ASSERT_TRUE(mempool_.Add(chain_, original).ok());

  // Equal fee: rejected, pool unchanged.
  BitcoinTransaction equal = Payment(alice_utxo_, "AlicePk", kBlockReward,
                                     "CarolPk", kCoin, /*fee=*/10'000);
  EXPECT_EQ(mempool_.ReplaceByFee(chain_, equal).status().code(),
            StatusCode::kConstraintViolation);
  EXPECT_TRUE(mempool_.Contains(original.txid()));
  EXPECT_EQ(mempool_.size(), 1u);

  // Strictly higher fee: the conflictor is displaced.
  BitcoinTransaction bumped = Payment(alice_utxo_, "AlicePk", kBlockReward,
                                      "CarolPk", kCoin, /*fee=*/25'000);
  auto displaced = mempool_.ReplaceByFee(chain_, bumped);
  ASSERT_TRUE(displaced.ok()) << displaced.status();
  EXPECT_EQ(*displaced, std::vector<TxId>{original.txid()});
  EXPECT_FALSE(mempool_.Contains(original.txid()));
  EXPECT_TRUE(mempool_.Contains(bumped.txid()));
  EXPECT_EQ(mempool_.size(), 1u);
}

TEST_F(MempoolTest, ReplaceByFeeOutbidsSummedDisplacedFees) {
  // Two coinbases so two disjoint conflictors can exist.
  BitcoinTransaction cb2 = BitcoinTransaction::Coinbase(
      "AlicePk", kBlockReward, chain_.height() + 1);
  ASSERT_TRUE(chain_.MineAndAppend({cb2}).ok());
  BitcoinTransaction a = Payment(alice_utxo_, "AlicePk", kBlockReward,
                                 "BobPk", kCoin, /*fee=*/10'000);
  BitcoinTransaction b = Payment(OutPoint{cb2.txid(), 1}, "AlicePk",
                                 kBlockReward, "CarolPk", kCoin,
                                 /*fee=*/15'000);
  ASSERT_TRUE(mempool_.Add(chain_, a).ok());
  ASSERT_TRUE(mempool_.Add(chain_, b).ok());

  // One replacement spending BOTH outpoints must outbid fee(a) + fee(b).
  BitcoinTransaction low(
      {TxInput{alice_utxo_, "AlicePk", kBlockReward, SignatureFor("AlicePk")},
       TxInput{OutPoint{cb2.txid(), 1}, "AlicePk", kBlockReward,
               SignatureFor("AlicePk")}},
      {TxOutput{"DanPk", 2 * kBlockReward - 20'000}});
  EXPECT_EQ(mempool_.ReplaceByFee(chain_, low).status().code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(mempool_.size(), 2u);

  BitcoinTransaction high(
      {TxInput{alice_utxo_, "AlicePk", kBlockReward, SignatureFor("AlicePk")},
       TxInput{OutPoint{cb2.txid(), 1}, "AlicePk", kBlockReward,
               SignatureFor("AlicePk")}},
      {TxOutput{"DanPk", 2 * kBlockReward - 30'000}});
  auto displaced = mempool_.ReplaceByFee(chain_, high);
  ASSERT_TRUE(displaced.ok()) << displaced.status();
  EXPECT_EQ(displaced->size(), 2u);
  EXPECT_EQ(mempool_.size(), 1u);
  EXPECT_TRUE(mempool_.Contains(high.txid()));
}

TEST_F(MempoolTest, ReplaceByFeeDisplacesDescendantsToo) {
  BitcoinTransaction original = Payment(alice_utxo_, "AlicePk", kBlockReward,
                                        "BobPk", kCoin, /*fee=*/10'000);
  BitcoinTransaction child =
      Payment(OutPoint{original.txid(), 1}, "BobPk", kCoin, "DanPk",
              kCoin / 2, /*fee=*/1'000);
  ASSERT_TRUE(mempool_.Add(chain_, original).ok());
  ASSERT_TRUE(mempool_.Add(chain_, child).ok());

  BitcoinTransaction bumped = Payment(alice_utxo_, "AlicePk", kBlockReward,
                                      "CarolPk", kCoin, /*fee=*/50'000);
  auto displaced = mempool_.ReplaceByFee(chain_, bumped);
  ASSERT_TRUE(displaced.ok()) << displaced.status();
  // The conflictor and its orphaned descendant both leave.
  EXPECT_EQ(displaced->size(), 2u);
  EXPECT_EQ(mempool_.size(), 1u);
  EXPECT_TRUE(mempool_.Contains(bumped.txid()));
}

TEST_F(MempoolTest, ReplaceByFeeWithoutConflictsActsAsAdd) {
  BitcoinTransaction pay = Payment(alice_utxo_, "AlicePk", kBlockReward,
                                   "BobPk", kCoin, /*fee=*/1'000);
  auto displaced = mempool_.ReplaceByFee(chain_, pay);
  ASSERT_TRUE(displaced.ok()) << displaced.status();
  EXPECT_TRUE(displaced->empty());
  EXPECT_TRUE(mempool_.Contains(pay.txid()));
  // An invalid replacement (unknown funding) fails and leaves the pool
  // unchanged even after its conflictors were provisionally evicted.
  BitcoinTransaction bogus = Payment(OutPoint{0x999, 1}, "NoonePk", kCoin,
                                     "DanPk", kCoin, /*fee=*/2'000);
  EXPECT_FALSE(mempool_.ReplaceByFee(chain_, bogus).ok());
  EXPECT_EQ(mempool_.size(), 1u);
  EXPECT_TRUE(mempool_.Contains(pay.txid()));
}

TEST_F(MempoolTest, NodeReorgReinjectsDisconnectedTransactions) {
  // A node confirms Alice's payment, then watches a longer rival branch
  // orphan that block: the payment must return to the mempool.
  SimulatedNode node;
  BitcoinTransaction cb =
      BitcoinTransaction::Coinbase("AlicePk", kBlockReward, 1);
  Block a1(1, node.chain().tip().hash(), {cb});
  ASSERT_TRUE(node.ReceiveBlock(a1).ok());
  BitcoinTransaction pay = Payment(OutPoint{cb.txid(), 1}, "AlicePk",
                                   kBlockReward, "BobPk", kCoin);
  Block a2(2, a1.hash(), {pay});
  ASSERT_TRUE(node.ReceiveBlock(a2).ok());
  EXPECT_EQ(node.mempool().size(), 0u);

  // Rival branch from a1: three coinbase-only blocks win at height 4.
  std::vector<Block> branch;
  BlockHash prev = a1.hash();
  for (std::uint64_t h = 2; h <= 4; ++h) {
    branch.emplace_back(
        h, prev,
        std::vector<BitcoinTransaction>{
            BitcoinTransaction::Coinbase("RivalPk", kBlockReward, h)});
    prev = branch.back().hash();
  }
  auto side = node.AcceptBlock(branch[0]);
  ASSERT_TRUE(side.ok());
  ASSERT_EQ(side->kind, ChainUpdate::Kind::kSideChain);
  auto update = node.AcceptBlock(branch[1]);  // Height 3 beats the tip at 2.
  ASSERT_TRUE(update.ok()) << update.status();
  ASSERT_EQ(update->kind, ChainUpdate::Kind::kReorged);
  auto extended = node.AcceptBlock(branch[2]);
  ASSERT_TRUE(extended.ok());
  ASSERT_EQ(extended->kind, ChainUpdate::Kind::kExtendedTip);

  // Alice's payment was rolled back; its funding coinbase (a1) is still
  // active, so the node re-injects it as pending.
  EXPECT_FALSE(node.chain().ContainsTransaction(pay.txid()));
  EXPECT_EQ(node.mempool().size(), 1u);
  EXPECT_TRUE(node.mempool().Contains(pay.txid()));
}

TEST_F(MempoolTest, StatsCountRows) {
  BitcoinTransaction pay =
      Payment(alice_utxo_, "AlicePk", kBlockReward, "BobPk", kCoin);
  ASSERT_TRUE(mempool_.Add(chain_, pay).ok());
  const ChainStats stats = mempool_.Stats();
  EXPECT_EQ(stats.transactions, 1u);
  EXPECT_EQ(stats.inputs, 1u);
  EXPECT_EQ(stats.outputs, 2u);
}

}  // namespace
}  // namespace bitcoin
}  // namespace bcdb
