#include <gtest/gtest.h>

#include "bitcoin/mempool.h"
#include "bitcoin/node.h"

namespace bcdb {
namespace bitcoin {
namespace {

BitcoinTransaction Payment(const OutPoint& src, const std::string& from,
                           Satoshi in_amount, const std::string& to,
                           Satoshi amount, Satoshi fee = 1000) {
  std::vector<TxOutput> outputs{TxOutput{to, amount}};
  const Satoshi change = in_amount - amount - fee;
  if (change > 0) outputs.push_back(TxOutput{from, change});
  return BitcoinTransaction(
      {TxInput{src, from, in_amount, SignatureFor(from)}}, outputs);
}

class MempoolTest : public ::testing::Test {
 protected:
  MempoolTest() {
    coinbase_ = std::make_unique<BitcoinTransaction>(
        BitcoinTransaction::Coinbase("AlicePk", kBlockReward, 1));
    EXPECT_TRUE(chain_.MineAndAppend({*coinbase_}).ok());
    alice_utxo_ = OutPoint{coinbase_->txid(), 1};
  }

  Blockchain chain_;
  Mempool mempool_;
  std::unique_ptr<BitcoinTransaction> coinbase_;
  OutPoint alice_utxo_;
};

TEST_F(MempoolTest, AcceptsValidSpendOfChainUtxo) {
  EXPECT_TRUE(mempool_
                  .Add(chain_, Payment(alice_utxo_, "AlicePk", kBlockReward,
                                       "BobPk", kCoin))
                  .ok());
  EXPECT_EQ(mempool_.size(), 1u);
}

TEST_F(MempoolTest, AcceptsDependencyChains) {
  BitcoinTransaction parent =
      Payment(alice_utxo_, "AlicePk", kBlockReward, "BobPk", kCoin);
  BitcoinTransaction child =
      Payment(OutPoint{parent.txid(), 1}, "BobPk", kCoin, "CarolPk", kCoin / 2);
  ASSERT_TRUE(mempool_.Add(chain_, parent).ok());
  EXPECT_TRUE(mempool_.Add(chain_, child).ok());
}

TEST_F(MempoolTest, RejectsChildBeforeParent) {
  BitcoinTransaction parent =
      Payment(alice_utxo_, "AlicePk", kBlockReward, "BobPk", kCoin);
  BitcoinTransaction child =
      Payment(OutPoint{parent.txid(), 1}, "BobPk", kCoin, "CarolPk", kCoin / 2);
  EXPECT_EQ(mempool_.Add(chain_, child).code(), StatusCode::kNotFound);
}

TEST_F(MempoolTest, KeepsConflictingTransactions) {
  // Unlike relay policy, the model keeps signed double spends: either may
  // still confirm, which is exactly what DCSat must reason about.
  BitcoinTransaction pay_bob =
      Payment(alice_utxo_, "AlicePk", kBlockReward, "BobPk", kCoin);
  BitcoinTransaction pay_carol =
      Payment(alice_utxo_, "AlicePk", kBlockReward, "CarolPk", kCoin);
  ASSERT_TRUE(mempool_.Add(chain_, pay_bob).ok());
  ASSERT_TRUE(mempool_.Add(chain_, pay_carol).ok());
  auto conflicts = mempool_.ConflictPairs();
  ASSERT_EQ(conflicts.size(), 1u);
}

TEST_F(MempoolTest, RejectsDuplicatesAndCoinbases) {
  BitcoinTransaction pay =
      Payment(alice_utxo_, "AlicePk", kBlockReward, "BobPk", kCoin);
  ASSERT_TRUE(mempool_.Add(chain_, pay).ok());
  EXPECT_EQ(mempool_.Add(chain_, pay).code(), StatusCode::kAlreadyExists);
  EXPECT_FALSE(
      mempool_.Add(chain_, BitcoinTransaction::Coinbase("X", kCoin, 9)).ok());
}

TEST_F(MempoolTest, RejectsBadSignatureAndMismatch) {
  BitcoinTransaction forged(
      {TxInput{alice_utxo_, "AlicePk", kBlockReward, "EveSig"}},
      {TxOutput{"EvePk", kCoin}});
  EXPECT_FALSE(mempool_.Add(chain_, forged).ok());

  BitcoinTransaction wrong_amount(
      {TxInput{alice_utxo_, "AlicePk", kCoin, SignatureFor("AlicePk")}},
      {TxOutput{"BobPk", kCoin / 2}});
  EXPECT_FALSE(mempool_.Add(chain_, wrong_amount).ok());
}

TEST_F(MempoolTest, RejectsSpendOfChainSpentOutput) {
  BitcoinTransaction pay =
      Payment(alice_utxo_, "AlicePk", kBlockReward, "BobPk", kCoin);
  ASSERT_TRUE(chain_.MineAndAppend({pay}).ok());
  // alice_utxo_ is now spent on-chain: a rival can never confirm.
  BitcoinTransaction rival =
      Payment(alice_utxo_, "AlicePk", kBlockReward, "CarolPk", kCoin);
  EXPECT_EQ(mempool_.Add(chain_, rival).code(), StatusCode::kNotFound);
}

TEST_F(MempoolTest, EvictionOnConfirmation) {
  BitcoinTransaction pay_bob =
      Payment(alice_utxo_, "AlicePk", kBlockReward, "BobPk", kCoin);
  BitcoinTransaction pay_carol =
      Payment(alice_utxo_, "AlicePk", kBlockReward, "CarolPk", kCoin);
  BitcoinTransaction child =
      Payment(OutPoint{pay_carol.txid(), 1}, "CarolPk", kCoin, "DanPk",
              kCoin / 2);
  ASSERT_TRUE(mempool_.Add(chain_, pay_bob).ok());
  ASSERT_TRUE(mempool_.Add(chain_, pay_carol).ok());
  ASSERT_TRUE(mempool_.Add(chain_, child).ok());

  // Confirm pay_bob: pay_carol loses its input, child loses its parent.
  ASSERT_TRUE(chain_.MineAndAppend({pay_bob}).ok());
  const std::size_t evicted =
      mempool_.RemoveConfirmedAndInvalid(chain_, chain_.tip());
  EXPECT_EQ(evicted, 3u);
  EXPECT_EQ(mempool_.size(), 0u);
}

TEST_F(MempoolTest, SurvivorsKeptAfterConfirmation) {
  BitcoinTransaction pay_bob =
      Payment(alice_utxo_, "AlicePk", kBlockReward, "BobPk", kCoin);
  BitcoinTransaction child =
      Payment(OutPoint{pay_bob.txid(), 1}, "BobPk", kCoin, "DanPk", kCoin / 2);
  ASSERT_TRUE(mempool_.Add(chain_, pay_bob).ok());
  ASSERT_TRUE(mempool_.Add(chain_, child).ok());

  ASSERT_TRUE(chain_.MineAndAppend({pay_bob}).ok());
  const std::size_t evicted =
      mempool_.RemoveConfirmedAndInvalid(chain_, chain_.tip());
  EXPECT_EQ(evicted, 1u);  // Only the confirmed parent.
  EXPECT_EQ(mempool_.size(), 1u);
  EXPECT_TRUE(mempool_.Contains(child.txid()));
}

TEST_F(MempoolTest, StatsCountRows) {
  BitcoinTransaction pay =
      Payment(alice_utxo_, "AlicePk", kBlockReward, "BobPk", kCoin);
  ASSERT_TRUE(mempool_.Add(chain_, pay).ok());
  const ChainStats stats = mempool_.Stats();
  EXPECT_EQ(stats.transactions, 1u);
  EXPECT_EQ(stats.inputs, 1u);
  EXPECT_EQ(stats.outputs, 2u);
}

}  // namespace
}  // namespace bitcoin
}  // namespace bcdb
