#include <gtest/gtest.h>

#include <algorithm>

#include "core/answers.h"
#include "query/parser.h"
#include "running_example.h"

namespace bcdb {
namespace {

using testing_fixtures::MakeRunningExample;

Tuple Row(std::initializer_list<Value> values) { return Tuple(values); }

class AnswersTest : public ::testing::Test {
 protected:
  AnswersTest() : db_(MakeRunningExample()), engine_(&db_) {}

  std::vector<Tuple> Certain(const std::string& text) {
    auto q = ParseDenialConstraint(text);
    EXPECT_TRUE(q.ok()) << q.status();
    auto result = CertainAnswers(engine_, *q);
    EXPECT_TRUE(result.ok()) << result.status();
    return *result;
  }

  std::vector<Tuple> Possible(const std::string& text) {
    auto q = ParseDenialConstraint(text);
    EXPECT_TRUE(q.ok()) << q.status();
    auto result = PossibleAnswers(engine_, *q);
    EXPECT_TRUE(result.ok()) << result.status();
    return *result;
  }

  BlockchainDatabase db_;
  DcSatEngine engine_;
};

TEST_F(AnswersTest, BindHeadSubstitutesEverywhere) {
  auto q = ParseDenialConstraint("q(pk, a) :- TxOut(t, s, pk, a), a > 0");
  ASSERT_TRUE(q.ok());
  auto bound = BindHead(*q, Row({Value::Str("U1Pk"), Value::Int(1)}));
  ASSERT_TRUE(bound.ok());
  EXPECT_TRUE(bound->head_vars.empty());
  // pk and a became constants in the atom and the comparison.
  EXPECT_FALSE(bound->positive_atoms[0].args[2].is_variable());
  EXPECT_EQ(bound->positive_atoms[0].args[2].value(), Value::Str("U1Pk"));
  EXPECT_FALSE(bound->comparisons[0].lhs.is_variable());
  EXPECT_EQ(bound->comparisons[0].lhs.value(), Value::Int(1));
}

TEST_F(AnswersTest, BindHeadRejectsArityMismatch) {
  auto q = ParseDenialConstraint("q(pk) :- TxOut(t, s, pk, a)");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(BindHead(*q, Row({Value::Int(1), Value::Int(2)})).ok());
}

TEST_F(AnswersTest, CertainAnswersOfMonotoneQueryAreBaseAnswers) {
  // All (pk, amount) pairs receiving outputs: over R only.
  const std::vector<Tuple> certain = Certain("q(pk, a) :- TxOut(t, s, pk, a)");
  const std::vector<Tuple> expected = {
      Row({Value::Str("U1Pk"), Value::Real(0.5)}),
      Row({Value::Str("U1Pk"), Value::Real(1)}),
      Row({Value::Str("U2Pk"), Value::Real(4)}),
      Row({Value::Str("U3Pk"), Value::Real(1)}),
      Row({Value::Str("U4Pk"), Value::Real(0.5)}),
  };
  EXPECT_EQ(certain, expected);
}

TEST_F(AnswersTest, PossibleAnswersIncludeRealizablePendingOutputs) {
  const std::vector<Tuple> possible = Possible("q(pk) :- TxOut(t, s, pk, a)");
  std::vector<std::string> pks;
  for (const Tuple& t : possible) pks.push_back(t[0].AsString());
  // Base recipients plus every pending recipient (all pending transactions
  // appear in some world).
  const std::vector<std::string> expected = {"U1Pk", "U2Pk", "U3Pk", "U4Pk",
                                             "U5Pk", "U7Pk", "U8Pk"};
  EXPECT_EQ(pks, expected);
}

TEST_F(AnswersTest, PossibleAnswersPruneUnrealizableCombinations) {
  // Both T1 (tx 4) and T5 (tx 8) spend output (2,2) — over R ∪ T the pair
  // (4, 8) matches, but no possible world contains both spends.
  const std::vector<Tuple> possible = Possible(
      "q(n1, n2) :- TxIn(2, 2, 'U2Pk', a1, n1, g1), "
      "TxIn(2, 2, 'U2Pk', a2, n2, g2), n1 != n2");
  EXPECT_TRUE(possible.empty());

  // Each spend individually is realizable.
  const std::vector<Tuple> singles =
      Possible("q(n) :- TxIn(2, 2, 'U2Pk', a, n, g)");
  const std::vector<Tuple> expected = {Row({Value::Int(4)}),
                                       Row({Value::Int(8)})};
  EXPECT_EQ(singles, expected);
}

TEST_F(AnswersTest, CertainOfPendingOnlyFactIsEmpty) {
  EXPECT_TRUE(Certain("q(n) :- TxIn(2, 2, 'U2Pk', a, n, g)").empty());
}

TEST_F(AnswersTest, NonMonotoneCertainIntersectsWorlds) {
  // "pk received an output, and tx 8 did not pay U7Pk 4": in the world
  // R ∪ {T5} the negation fails for every tuple, so no answer is certain.
  const std::vector<Tuple> certain = Certain(
      "q(pk) :- TxOut(t, s, pk, a), not TxOut(8, 1, 'U7Pk', 4)");
  EXPECT_TRUE(certain.empty());
}

TEST_F(AnswersTest, NonMonotonePossibleUnionsWorlds) {
  const std::vector<Tuple> possible = Possible(
      "q(pk) :- TxOut(t, s, pk, a), not TxOut(8, 1, 'U7Pk', 4)");
  // Worlds without T5 expose everything except T5's own output pk... which
  // is U7Pk, also payable by T4 — so all seven recipients are possible.
  EXPECT_EQ(possible.size(), 7u);
}

TEST_F(AnswersTest, RejectsAggregateAndHeadlessQueries) {
  auto aggregate =
      ParseDenialConstraint("[q(sum(a)) :- TxOut(t, s, pk, a)] > 1");
  ASSERT_TRUE(aggregate.ok());
  EXPECT_FALSE(CertainAnswers(engine_, *aggregate).ok());
  EXPECT_FALSE(PossibleAnswers(engine_, *aggregate).ok());

  auto boolean = ParseDenialConstraint("q() :- TxOut(t, s, pk, a)");
  ASSERT_TRUE(boolean.ok());
  EXPECT_FALSE(CertainAnswers(engine_, *boolean).ok());
}

TEST_F(AnswersTest, CertainSubsetOfPossible) {
  const char* queries[] = {
      "q(pk) :- TxOut(t, s, pk, a)",
      "q(t, s) :- TxOut(t, s, pk, a)",
      "q(pk) :- TxIn(pt, ps, pk, a, n, g)",
      "q(pk) :- TxOut(t, s, pk, a), not TxOut(8, 1, 'U7Pk', 4)",
  };
  for (const char* text : queries) {
    const std::vector<Tuple> certain = Certain(text);
    const std::vector<Tuple> possible = Possible(text);
    EXPECT_TRUE(std::includes(possible.begin(), possible.end(),
                              certain.begin(), certain.end()))
        << text;
  }
}

TEST_F(AnswersTest, AnswersEnumerationDeduplicates) {
  auto q = ParseDenialConstraint("q(pk) :- TxOut(t, s, pk, a)");
  ASSERT_TRUE(q.ok());
  auto compiled = CompiledQuery::Compile(*q, &db_.database());
  ASSERT_TRUE(compiled.ok());
  // U1Pk receives three outputs in R; the answer appears once.
  std::size_t u1_count = 0;
  compiled->EnumerateAnswers(db_.BaseView(), [&](const Tuple& t) {
    if (t[0] == Value::Str("U1Pk")) ++u1_count;
    return true;
  });
  EXPECT_EQ(u1_count, 1u);
}

TEST_F(AnswersTest, EnumerationEarlyStop) {
  auto q = ParseDenialConstraint("q(t, s) :- TxOut(t, s, pk, a)");
  ASSERT_TRUE(q.ok());
  auto compiled = CompiledQuery::Compile(*q, &db_.database());
  ASSERT_TRUE(compiled.ok());
  std::size_t seen = 0;
  compiled->EnumerateAnswers(db_.PendingUnionView(), [&](const Tuple&) {
    return ++seen < 3;
  });
  EXPECT_EQ(seen, 3u);
}

}  // namespace
}  // namespace bcdb
