#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "relational/value.h"

namespace bcdb {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
}

TEST(ValueTest, FactoriesAndAccessors) {
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).AsReal(), 2.5);
  EXPECT_EQ(Value::Str("hi").AsString(), "hi");
}

TEST(ValueTest, EqualitySameType) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_NE(Value::Int(1), Value::Int(2));
  EXPECT_EQ(Value::Str("a"), Value::Str("a"));
  EXPECT_NE(Value::Str("a"), Value::Str("b"));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, CrossTypeNumericEquality) {
  EXPECT_EQ(Value::Int(1), Value::Real(1.0));
  EXPECT_NE(Value::Int(1), Value::Real(1.5));
  // Equal values must hash equally (hash-index invariant).
  EXPECT_EQ(Value::Int(1).Hash(), Value::Real(1.0).Hash());
}

TEST(ValueTest, Ordering) {
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_GT(Value::Real(2.5), Value::Int(2));
  EXPECT_LT(Value::Str("abc"), Value::Str("abd"));
  // NULL sorts before everything.
  EXPECT_LT(Value::Null(), Value::Int(-100));
}

TEST(ValueTest, NumericVsStringOrdersByTypeTag) {
  EXPECT_LT(Value::Int(999), Value::Str("a"));
  EXPECT_NE(Value::Int(0), Value::Str("0"));
}

TEST(ValueTest, AsNumeric) {
  EXPECT_DOUBLE_EQ(Value::Int(3).AsNumeric(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Real(0.5).AsNumeric(), 0.5);
  EXPECT_TRUE(Value::Int(1).IsNumeric());
  EXPECT_FALSE(Value::Str("1").IsNumeric());
  EXPECT_FALSE(Value::Null().IsNumeric());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(-7).ToString(), "-7");
  EXPECT_EQ(Value::Str("x").ToString(), "'x'");
  EXPECT_EQ(Value::Real(0.5).ToString(), "0.5");
}

TEST(ValueTest, CompareIsAntisymmetric) {
  const Value values[] = {Value::Null(), Value::Int(1), Value::Real(1.5),
                          Value::Str("a")};
  for (const Value& a : values) {
    for (const Value& b : values) {
      EXPECT_EQ(a.Compare(b), -b.Compare(a))
          << a.ToString() << " vs " << b.ToString();
    }
  }
}

TEST(ValueTest, NanComparesEqualToItself) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(Value::Real(nan).Compare(Value::Real(nan)), 0);
  EXPECT_EQ(Value::Real(nan).Compare(Value::Real(-nan)), 0);
  EXPECT_EQ(Value::Real(nan), Value::Real(nan));
  EXPECT_EQ(Value::Real(nan).Hash(), Value::Real(-nan).Hash());
}

TEST(ValueTest, NanSortsAfterAllOtherNumerics) {
  const Value nan = Value::Real(std::numeric_limits<double>::quiet_NaN());
  const Value inf = Value::Real(std::numeric_limits<double>::infinity());
  EXPECT_GT(nan, inf);
  EXPECT_GT(nan, Value::Int(std::numeric_limits<std::int64_t>::max()));
  EXPECT_GT(nan, Value::Real(1e308));
  EXPECT_GT(nan, Value::Null());
  // Type-tag ordering is unaffected: every numeric, NaN included, sorts
  // before every string.
  EXPECT_LT(nan, Value::Str(""));
}

TEST(ValueTest, CompareIsTotalWithNan) {
  // The pre-fix behaviour violated totality: NaN < x and x < NaN were both
  // false while NaN != x, so NaN-keyed containers misbehaved. Antisymmetry
  // over a set containing NaN pins the fix.
  const Value values[] = {
      Value::Null(),
      Value::Int(0),
      Value::Real(std::numeric_limits<double>::quiet_NaN()),
      Value::Real(-std::numeric_limits<double>::infinity()),
      Value::Real(std::numeric_limits<double>::infinity()),
      Value::Str("nan")};
  for (const Value& a : values) {
    for (const Value& b : values) {
      EXPECT_EQ(a.Compare(b), -b.Compare(a))
          << a.ToString() << " vs " << b.ToString();
      for (const Value& c : values) {
        // Transitivity of <=.
        if (a.Compare(b) <= 0 && b.Compare(c) <= 0) {
          EXPECT_LE(a.Compare(c), 0)
              << a.ToString() << " <= " << b.ToString() << " <= "
              << c.ToString();
        }
      }
    }
  }
}

TEST(ValueTest, HugeRealHashDoesNotOverflowCast) {
  // Regression: hashing a real outside int64 range used to cast it to
  // int64 unguarded (UB). These only need to not trap under ubsan.
  (void)Value::Real(1e300).Hash();
  (void)Value::Real(-1e300).Hash();
  (void)Value::Real(std::numeric_limits<double>::infinity()).Hash();
  (void)Value::Real(9.3e18).Hash();
  // Integral reals inside int64 range still hash like their int twins.
  EXPECT_EQ(Value::Real(42.0).Hash(), Value::Int(42).Hash());
}

}  // namespace
}  // namespace bcdb
