#include <gtest/gtest.h>

#include "relational/value.h"

namespace bcdb {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
}

TEST(ValueTest, FactoriesAndAccessors) {
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).AsReal(), 2.5);
  EXPECT_EQ(Value::Str("hi").AsString(), "hi");
}

TEST(ValueTest, EqualitySameType) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_NE(Value::Int(1), Value::Int(2));
  EXPECT_EQ(Value::Str("a"), Value::Str("a"));
  EXPECT_NE(Value::Str("a"), Value::Str("b"));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, CrossTypeNumericEquality) {
  EXPECT_EQ(Value::Int(1), Value::Real(1.0));
  EXPECT_NE(Value::Int(1), Value::Real(1.5));
  // Equal values must hash equally (hash-index invariant).
  EXPECT_EQ(Value::Int(1).Hash(), Value::Real(1.0).Hash());
}

TEST(ValueTest, Ordering) {
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_GT(Value::Real(2.5), Value::Int(2));
  EXPECT_LT(Value::Str("abc"), Value::Str("abd"));
  // NULL sorts before everything.
  EXPECT_LT(Value::Null(), Value::Int(-100));
}

TEST(ValueTest, NumericVsStringOrdersByTypeTag) {
  EXPECT_LT(Value::Int(999), Value::Str("a"));
  EXPECT_NE(Value::Int(0), Value::Str("0"));
}

TEST(ValueTest, AsNumeric) {
  EXPECT_DOUBLE_EQ(Value::Int(3).AsNumeric(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Real(0.5).AsNumeric(), 0.5);
  EXPECT_TRUE(Value::Int(1).IsNumeric());
  EXPECT_FALSE(Value::Str("1").IsNumeric());
  EXPECT_FALSE(Value::Null().IsNumeric());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(-7).ToString(), "-7");
  EXPECT_EQ(Value::Str("x").ToString(), "'x'");
  EXPECT_EQ(Value::Real(0.5).ToString(), "0.5");
}

TEST(ValueTest, CompareIsAntisymmetric) {
  const Value values[] = {Value::Null(), Value::Int(1), Value::Real(1.5),
                          Value::Str("a")};
  for (const Value& a : values) {
    for (const Value& b : values) {
      EXPECT_EQ(a.Compare(b), -b.Compare(a))
          << a.ToString() << " vs " << b.ToString();
    }
  }
}

}  // namespace
}  // namespace bcdb
