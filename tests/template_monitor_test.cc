#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/monitor.h"
#include "query/parser.h"
#include "query/template.h"
#include "running_example.h"

namespace bcdb {
namespace {

using testing_fixtures::MakeRunningExample;
using Verdict = ConstraintMonitor::Verdict;

DenialConstraint Q(const std::string& text) {
  auto q = ParseDenialConstraint(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return *q;
}

ConstraintTemplate T(const std::string& text) {
  auto tmpl = ConstraintTemplate::Parse(text);
  EXPECT_TRUE(tmpl.ok()) << tmpl.status();
  return *tmpl;
}

// --- Template type ------------------------------------------------------

TEST(ConstraintTemplateTest, ParseCollectsParams) {
  ConstraintTemplate tmpl = T("q() :- TxOut(t, s, $pk, a), a > $floor");
  ASSERT_EQ(tmpl.num_params(), 2u);
  EXPECT_EQ(tmpl.param_names()[0], "pk");
  EXPECT_EQ(tmpl.param_names()[1], "floor");
  // $floor never occurs in a positive atom, so the class cannot be
  // projected into head variables.
  EXPECT_FALSE(tmpl.projectable());
  EXPECT_TRUE(T("q() :- TxOut(t, s, $pk, a)").projectable());
  // Params render back with the sigil.
  EXPECT_NE(tmpl.constraint().ToString().find("$pk"), std::string::npos);
}

TEST(ConstraintTemplateTest, AggregateThresholdParam) {
  ConstraintTemplate tmpl = T("[q(count()) :- TxOut(t, s, p, a)] > $n");
  ASSERT_EQ(tmpl.num_params(), 1u);
  EXPECT_EQ(tmpl.param_names()[0], "n");
  EXPECT_FALSE(tmpl.projectable());  // Aggregates are never batched.
  auto grounded = tmpl.Instantiate({Value::Int(7)});
  ASSERT_TRUE(grounded.ok());
  EXPECT_EQ(grounded->ToString(), Q("[q(count()) :- TxOut(t, s, p, a)] > 7")
                                      .ToString());
}

TEST(ConstraintTemplateTest, InstantiateRoundTrip) {
  ConstraintTemplate tmpl = T("q() :- TxOut(t, s, $pk, a)");
  auto grounded = tmpl.Instantiate({Value::Str("U8Pk")});
  ASSERT_TRUE(grounded.ok());
  EXPECT_EQ(grounded->ToString(),
            Q("q() :- TxOut(t, s, 'U8Pk', a)").ToString());
  // Arity mismatch is typed, not UB.
  EXPECT_FALSE(tmpl.Instantiate({}).ok());
  EXPECT_FALSE(
      tmpl.Instantiate({Value::Str("a"), Value::Str("b")}).ok());
}

TEST(ConstraintTemplateTest, CanonicalizeExtractsConstants) {
  auto canon = ConstraintTemplate::Canonicalize(
      Q("q() :- TxOut(t, s, 'U8Pk', a)"));
  ASSERT_TRUE(canon.ok());
  ASSERT_EQ(canon->binding.size(), 1u);
  EXPECT_EQ(canon->binding[0], Value::Str("U8Pk"));
  // Same skeleton regardless of the constant...
  auto other = ConstraintTemplate::Canonicalize(
      Q("q() :- TxOut(t, s, 'U9Pk', a)"));
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(canon->tmpl.CanonicalSkeleton(), other->tmpl.CanonicalSkeleton());
  // ...and variable naming.
  auto renamed = ConstraintTemplate::Canonicalize(
      Q("watch(  ) :- TxOut(w, x, 'U8Pk', z)"));
  ASSERT_TRUE(renamed.ok());
  EXPECT_EQ(canon->tmpl.CanonicalSkeleton(),
            renamed->tmpl.CanonicalSkeleton());
}

TEST(ConstraintTemplateTest, EqualConstantsCoupleIntoOneParam) {
  // TxOut(1, 1, ...) couples both positions through one parameter; breaking
  // the coupling changes the class.
  auto coupled =
      ConstraintTemplate::Canonicalize(Q("q() :- TxOut(1, 1, p, a)"));
  auto uncoupled =
      ConstraintTemplate::Canonicalize(Q("q() :- TxOut(1, 2, p, a)"));
  ASSERT_TRUE(coupled.ok());
  ASSERT_TRUE(uncoupled.ok());
  EXPECT_EQ(coupled->binding.size(), 1u);
  EXPECT_EQ(uncoupled->binding.size(), 2u);
  EXPECT_NE(coupled->tmpl.CanonicalSkeleton(),
            uncoupled->tmpl.CanonicalSkeleton());
}

// --- Registration API ---------------------------------------------------

TEST(TemplateMonitorTest, AddRejectsUnboundParams) {
  BlockchainDatabase db = MakeRunningExample();
  ConstraintMonitor monitor(&db);
  auto added = monitor.Add("raw", "q() :- TxOut(t, s, $pk, a)");
  ASSERT_FALSE(added.ok());
  EXPECT_NE(added.status().message().find("unbound parameter"),
            std::string::npos);
}

TEST(TemplateMonitorTest, RegisterTemplateRejectsBadSchema) {
  BlockchainDatabase db = MakeRunningExample();
  ConstraintMonitor monitor(&db);
  auto handle = monitor.RegisterTemplate("bad", "q() :- Nope($x)");
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(handle.status().message().find("rejected by static analysis"),
            std::string::npos);
}

TEST(TemplateMonitorTest, BindValidatesArityAndTypes) {
  BlockchainDatabase db = MakeRunningExample();
  ConstraintMonitor monitor(&db);
  auto tmpl = monitor.RegisterTemplate("watch", "q() :- TxOut(t, s, $pk, a)");
  ASSERT_TRUE(tmpl.ok());
  EXPECT_TRUE(monitor.template_batchable(*tmpl));

  auto too_many = monitor.Bind(*tmpl, {Value::Str("a"), Value::Str("b")});
  ASSERT_FALSE(too_many.ok());
  EXPECT_NE(too_many.status().message().find("parameters"),
            std::string::npos);

  // $pk sits in a string column: an int binding is the same registration
  // error the grounded compile would report.
  auto wrong_type = monitor.Bind(*tmpl, {Value::Int(3)});
  ASSERT_FALSE(wrong_type.ok());
  EXPECT_NE(wrong_type.status().message().find("wrong type"),
            std::string::npos);

  EXPECT_TRUE(monitor.Bind(*tmpl, {Value::Str("U8Pk")}).ok());
  EXPECT_EQ(monitor.size(), 1u);
}

TEST(TemplateMonitorTest, BindRejectsForeignTemplateHandle) {
  BlockchainDatabase db_a = MakeRunningExample();
  BlockchainDatabase db_b = MakeRunningExample();
  ConstraintMonitor monitor_a(&db_a);
  ConstraintMonitor monitor_b(&db_b);
  auto tmpl_a =
      monitor_a.RegisterTemplate("watch", "q() :- TxOut(t, s, $pk, a)");
  auto tmpl_b =
      monitor_b.RegisterTemplate("watch", "q() :- TxOut(t, s, $pk, a)");
  ASSERT_TRUE(tmpl_a.ok());
  ASSERT_TRUE(tmpl_b.ok());
  // Same index, different owners: the handles are distinct and unusable
  // across monitors.
  EXPECT_EQ(tmpl_a->value(), tmpl_b->value());
  EXPECT_NE(*tmpl_a, *tmpl_b);
  auto bound = monitor_b.Bind(*tmpl_a, {Value::Str("U8Pk")});
  ASSERT_FALSE(bound.ok());
  EXPECT_NE(bound.status().message().find("different monitor"),
            std::string::npos);
  EXPECT_TRUE(monitor_b.template_label(*tmpl_a).empty());
  EXPECT_EQ(monitor_b.template_analysis(*tmpl_a), nullptr);
}

// The old footgun, pinned: handles from different monitors whose indices
// collide must not compare equal or resolve against the wrong monitor.
TEST(TemplateMonitorTest, CrossMonitorHandlesNeverResolve) {
  BlockchainDatabase db_a = MakeRunningExample();
  BlockchainDatabase db_b = MakeRunningExample();
  ConstraintMonitor monitor_a(&db_a);
  ConstraintMonitor monitor_b(&db_b);
  auto in_a = monitor_a.Add("a", Q("q() :- TxOut(t, s, 'U8Pk', a)"));
  auto in_b = monitor_b.Add("b", Q("q() :- TxOut(t, s, 'U3Pk', a)"));
  ASSERT_TRUE(in_a.ok());
  ASSERT_TRUE(in_b.ok());
  ASSERT_EQ(in_a->value(), in_b->value());  // Index collision by design.
  EXPECT_NE(*in_a, *in_b);

  ASSERT_TRUE(monitor_a.Poll().ok());
  ASSERT_TRUE(monitor_b.Poll().ok());
  // Presented to the wrong monitor, the handle reads as nothing...
  EXPECT_EQ(monitor_b.verdict(*in_a), Verdict::kUnknown);
  EXPECT_TRUE(monitor_b.label(*in_a).empty());
  EXPECT_EQ(monitor_b.analysis(*in_a), nullptr);
  // ...and cannot remove the colliding entry.
  auto removed = monitor_b.Remove(*in_a);
  ASSERT_FALSE(removed.ok());
  EXPECT_EQ(removed.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(monitor_b.size(), 1u);
  // The rightful owner still works.
  EXPECT_TRUE(monitor_a.Remove(*in_a).ok());
}

TEST(TemplateMonitorTest, RemoveReportsTypedErrors) {
  BlockchainDatabase db = MakeRunningExample();
  ConstraintMonitor monitor(&db);
  auto invalid = monitor.Remove(MonitorHandle());
  ASSERT_FALSE(invalid.ok());
  EXPECT_EQ(invalid.code(), StatusCode::kInvalidArgument);

  auto handle = monitor.Add("u8", Q("q() :- TxOut(t, s, 'U8Pk', a)"));
  ASSERT_TRUE(handle.ok());
  EXPECT_TRUE(monitor.Remove(*handle).ok());
  auto again = monitor.Remove(*handle);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kNotFound);
  EXPECT_EQ(monitor.size(), 0u);
}

// --- Class bookkeeping --------------------------------------------------

TEST(TemplateMonitorTest, AddCanonicalizationSharesClasses) {
  BlockchainDatabase db = MakeRunningExample();
  ConstraintMonitor monitor(&db);
  ASSERT_TRUE(monitor.Add("u8", Q("q() :- TxOut(t, s, 'U8Pk', a)")).ok());
  ASSERT_TRUE(monitor.Add("u3", Q("q() :- TxOut(t, s, 'U3Pk', a)")).ok());
  ASSERT_TRUE(monitor.Add("u9", Q("q() :- TxOut(t, s, 'U9Pk', a)")).ok());
  EXPECT_EQ(monitor.num_classes(), 1u);
  // A different skeleton opens a second class.
  ASSERT_TRUE(
      monitor.Add("in", Q("q() :- TxIn(t, s, 'U1Pk', a, n, g)")).ok());
  EXPECT_EQ(monitor.num_classes(), 2u);
  // RegisterTemplate never merges, even for an identical template: the
  // label owns the class.
  auto tmpl =
      monitor.RegisterTemplate("watch", "q() :- TxOut(t, s, $b0, a)");
  ASSERT_TRUE(tmpl.ok());
  EXPECT_EQ(monitor.num_classes(), 3u);

  ASSERT_TRUE(monitor.Poll().ok());
  // The three same-class Adds ran as one shared batch check.
  EXPECT_GE(monitor.poll_stats().classes_evaluated, 1u);
  EXPECT_GE(monitor.poll_stats().constraints_batched, 3u);
}

TEST(TemplateMonitorTest, BatchedVerdictsMatchPerConstraintAdds) {
  BlockchainDatabase template_db = MakeRunningExample();
  BlockchainDatabase add_db = MakeRunningExample();
  ConstraintMonitor templated(&template_db);
  ConstraintMonitor added(&add_db);

  auto tmpl =
      templated.RegisterTemplate("watch", "q() :- TxOut(t, s, $pk, a)");
  ASSERT_TRUE(tmpl.ok());
  const char* pks[] = {"U8Pk", "U3Pk", "U9Pk", "U5Pk"};
  std::vector<MonitorHandle> bound;
  std::vector<MonitorHandle> plain;
  for (const char* pk : pks) {
    auto b = templated.Bind(*tmpl, {Value::Str(pk)});
    auto a = added.Add(pk, Q("q() :- TxOut(t, s, '" + std::string(pk) +
                             "', a)"));
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(a.ok());
    bound.push_back(*b);
    plain.push_back(*a);
  }

  ASSERT_TRUE(templated.Poll().ok());
  ASSERT_TRUE(added.Poll().ok());
  for (std::size_t i = 0; i < bound.size(); ++i) {
    EXPECT_EQ(templated.verdict(bound[i]), added.verdict(plain[i])) << pks[i];
  }
  EXPECT_EQ(templated.verdict(bound[0]), Verdict::kPossible);
  EXPECT_EQ(templated.verdict(bound[1]), Verdict::kHappened);
  EXPECT_EQ(templated.verdict(bound[2]), Verdict::kImpossible);
  EXPECT_EQ(templated.poll_stats().classes_evaluated, 1u);
  EXPECT_EQ(templated.poll_stats().constraints_batched, 4u);
}

TEST(TemplateMonitorTest, BaseRemovalDirtiesBatchClass) {
  BlockchainDatabase db = MakeRunningExample();
  ConstraintMonitor monitor(&db);
  auto tmpl = monitor.RegisterTemplate("watch", "q() :- TxOut(t, s, $pk, a)");
  ASSERT_TRUE(tmpl.ok());
  auto u3 = monitor.Bind(*tmpl, {Value::Str("U3Pk")});
  auto u9 = monitor.Bind(*tmpl, {Value::Str("U9Pk")});
  ASSERT_TRUE(u3.ok());
  ASSERT_TRUE(u9.ok());
  const Tuple row({Value::Int(99), Value::Int(1), Value::Str("U9Pk"),
                   Value::Int(1)});
  ASSERT_TRUE(db.InsertCurrent("TxOut", row).ok());
  ASSERT_TRUE(monitor.Poll().ok());
  EXPECT_EQ(monitor.verdict(*u9), Verdict::kHappened);

  // The retraction dirties the class through the shared footprint; the
  // whole batch re-runs and only the affected member transitions.
  ASSERT_TRUE(db.RemoveCurrent("TxOut", row).ok());
  const auto classes_before = monitor.poll_stats().classes_evaluated;
  const auto batched_before = monitor.poll_stats().constraints_batched;
  auto changes = monitor.Poll();
  ASSERT_TRUE(changes.ok());
  ASSERT_EQ(changes->size(), 1u);
  EXPECT_EQ((*changes)[0].after, Verdict::kImpossible);
  EXPECT_EQ(monitor.verdict(*u9), Verdict::kImpossible);
  EXPECT_EQ(monitor.verdict(*u3), Verdict::kHappened);
  EXPECT_EQ(monitor.poll_stats().classes_evaluated - classes_before, 1u);
  EXPECT_EQ(monitor.poll_stats().constraints_batched - batched_before, 2u);
}

TEST(TemplateMonitorTest, RemovalPollRefreshesBatchMembership) {
  // A base removal dirties the class; the re-run must pick up membership
  // changes made since the cached batch was built (members_version), not
  // replay the stale binding list.
  BlockchainDatabase db = MakeRunningExample();
  ConstraintMonitor monitor(&db);
  auto tmpl = monitor.RegisterTemplate("watch", "q() :- TxOut(t, s, $pk, a)");
  ASSERT_TRUE(tmpl.ok());
  auto u5 = monitor.Bind(*tmpl, {Value::Str("U5Pk")});
  auto u9 = monitor.Bind(*tmpl, {Value::Str("U9Pk")});
  ASSERT_TRUE(u5.ok());
  ASSERT_TRUE(u9.ok());
  const Tuple row({Value::Int(99), Value::Int(1), Value::Str("U9Pk"),
                   Value::Int(1)});
  ASSERT_TRUE(db.InsertCurrent("TxOut", row).ok());
  ASSERT_TRUE(monitor.Poll().ok());  // Caches the two-member batch.

  // Unbind one member, retract its row, and bind a fresh member before the
  // next poll.
  ASSERT_TRUE(monitor.Remove(*u9).ok());
  ASSERT_TRUE(db.RemoveCurrent("TxOut", row).ok());
  auto u3 = monitor.Bind(*tmpl, {Value::Str("U3Pk")});
  ASSERT_TRUE(u3.ok());

  const auto batched_before = monitor.poll_stats().constraints_batched;
  ASSERT_TRUE(monitor.Poll().ok());
  EXPECT_EQ(monitor.verdict(*u5), Verdict::kPossible);
  EXPECT_EQ(monitor.verdict(*u3), Verdict::kHappened);
  // Exactly the surviving + new member ran through the batch — the removed
  // binding is gone from the refreshed member list.
  EXPECT_EQ(monitor.poll_stats().constraints_batched - batched_before, 2u);
}

TEST(TemplateMonitorTest, ChangesCarryTemplateContext) {
  BlockchainDatabase db = MakeRunningExample();
  ConstraintMonitor monitor(&db);
  auto tmpl = monitor.RegisterTemplate("payout", "q() :- TxOut(t, s, $pk, a)");
  ASSERT_TRUE(tmpl.ok());
  auto handle = monitor.Bind(*tmpl, {Value::Str("U8Pk")});
  ASSERT_TRUE(handle.ok());
  // The bound member's label is derived from the class label + binding.
  EXPECT_NE(monitor.label(*handle).find("payout"), std::string::npos);
  EXPECT_NE(monitor.label(*handle).find("U8Pk"), std::string::npos);

  auto changes = monitor.Poll();
  ASSERT_TRUE(changes.ok());
  ASSERT_EQ(changes->size(), 1u);
  EXPECT_EQ((*changes)[0].template_label, "payout");
  EXPECT_NE((*changes)[0].binding_summary.find("U8Pk"), std::string::npos);
  EXPECT_EQ((*changes)[0].after, Verdict::kPossible);
}

TEST(TemplateMonitorTest, RemovingOneMemberLeavesSiblings) {
  BlockchainDatabase db = MakeRunningExample();
  ConstraintMonitor monitor(&db);
  auto tmpl = monitor.RegisterTemplate("watch", "q() :- TxOut(t, s, $pk, a)");
  ASSERT_TRUE(tmpl.ok());
  auto u8 = monitor.Bind(*tmpl, {Value::Str("U8Pk")});
  auto u3 = monitor.Bind(*tmpl, {Value::Str("U3Pk")});
  auto u9 = monitor.Bind(*tmpl, {Value::Str("U9Pk")});
  ASSERT_TRUE(u8.ok());
  ASSERT_TRUE(u3.ok());
  ASSERT_TRUE(u9.ok());
  ASSERT_TRUE(monitor.Poll().ok());

  EXPECT_TRUE(monitor.Remove(*u3).ok());
  EXPECT_EQ(monitor.size(), 2u);
  EXPECT_EQ(monitor.verdict(*u3), Verdict::kUnknown);

  // Dirty the class; the surviving members still evaluate correctly.
  ASSERT_TRUE(db.ApplyPending(4).ok());   // T5 confirms.
  ASSERT_TRUE(db.DiscardPending(0).ok());  // T1 evicted.
  ASSERT_TRUE(monitor.Poll().ok());
  EXPECT_EQ(monitor.verdict(*u8), Verdict::kImpossible);
  EXPECT_EQ(monitor.verdict(*u9), Verdict::kImpossible);
  EXPECT_EQ(monitor.verdict(*u3), Verdict::kUnknown);
}

// --- Evaluation paths ---------------------------------------------------

TEST(TemplateMonitorTest, TransitionsFlowThroughBatchPath) {
  BlockchainDatabase db = MakeRunningExample();
  ConstraintMonitor monitor(&db);
  auto tmpl = monitor.RegisterTemplate("watch", "q() :- TxOut(t, s, $pk, a)");
  ASSERT_TRUE(tmpl.ok());
  auto handle = monitor.Bind(*tmpl, {Value::Str("U8Pk")});
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(monitor.Poll().ok());
  EXPECT_EQ(monitor.verdict(*handle), Verdict::kPossible);

  ASSERT_TRUE(db.ApplyPending(4).ok());
  ASSERT_TRUE(db.DiscardPending(0).ok());
  auto changes = monitor.Poll();
  ASSERT_TRUE(changes.ok());
  ASSERT_EQ(changes->size(), 1u);
  EXPECT_EQ((*changes)[0].before, Verdict::kPossible);
  EXPECT_EQ((*changes)[0].after, Verdict::kImpossible);
}

TEST(TemplateMonitorTest, ExplicitAlgorithmPollFallsBackToPerMember) {
  BlockchainDatabase db = MakeRunningExample();
  ConstraintMonitor monitor(&db);
  auto tmpl = monitor.RegisterTemplate("watch", "q() :- TxOut(t, s, $pk, a)");
  ASSERT_TRUE(tmpl.ok());
  auto u8 = monitor.Bind(*tmpl, {Value::Str("U8Pk")});
  auto u9 = monitor.Bind(*tmpl, {Value::Str("U9Pk")});
  ASSERT_TRUE(u8.ok());
  ASSERT_TRUE(u9.ok());

  // An explicitly requested algorithm is honored per member (the batch
  // evaluator only serves kAuto), grounding batch members on demand.
  DcSatOptions opt_only;
  opt_only.algorithm = DcSatAlgorithm::kOpt;
  ASSERT_TRUE(monitor.Poll(opt_only).ok());
  EXPECT_EQ(monitor.verdict(*u8), Verdict::kPossible);
  EXPECT_EQ(monitor.verdict(*u9), Verdict::kImpossible);
  EXPECT_EQ(monitor.poll_stats().classes_evaluated, 0u);
}

TEST(TemplateMonitorTest, NonBatchableTemplateUsesGroundedPath) {
  BlockchainDatabase db = MakeRunningExample();
  ConstraintMonitor monitor(&db);
  // $floor only occurs in a comparison: not projectable, so members run
  // the per-member grounded path even with batching enabled.
  auto tmpl = monitor.RegisterTemplate(
      "big", "q() :- TxOut(t, s, p, a), a > $floor");
  ASSERT_TRUE(tmpl.ok());
  EXPECT_FALSE(monitor.template_batchable(*tmpl));
  auto over3 = monitor.Bind(*tmpl, {Value::Real(3.0)});
  auto over99 = monitor.Bind(*tmpl, {Value::Real(99.0)});
  ASSERT_TRUE(over3.ok());
  ASSERT_TRUE(over99.ok());
  ASSERT_TRUE(monitor.Poll().ok());
  EXPECT_EQ(monitor.verdict(*over3), Verdict::kHappened);  // (2,2) pays 4.
  EXPECT_EQ(monitor.verdict(*over99), Verdict::kImpossible);
  EXPECT_EQ(monitor.poll_stats().classes_evaluated, 0u);
}

TEST(TemplateMonitorTest, BatchingOffMatchesOnAcrossChurn) {
  BlockchainDatabase on_db = MakeRunningExample();
  BlockchainDatabase off_db = MakeRunningExample();
  MonitorOptions off_options;
  off_options.enable_template_batching = false;
  ConstraintMonitor on(&on_db);
  ConstraintMonitor off(&off_db, off_options);

  std::vector<MonitorHandle> on_handles;
  std::vector<MonitorHandle> off_handles;
  auto on_tmpl = on.RegisterTemplate("watch", "q() :- TxOut(t, s, $pk, a)");
  auto off_tmpl = off.RegisterTemplate("watch", "q() :- TxOut(t, s, $pk, a)");
  ASSERT_TRUE(on_tmpl.ok());
  ASSERT_TRUE(off_tmpl.ok());
  for (const char* pk : {"U1Pk", "U2Pk", "U4Pk", "U5Pk", "U7Pk", "U8Pk"}) {
    auto a = on.Bind(*on_tmpl, {Value::Str(pk)});
    auto b = off.Bind(*off_tmpl, {Value::Str(pk)});
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    on_handles.push_back(*a);
    off_handles.push_back(*b);
  }

  auto compare = [&](const char* when) {
    ASSERT_TRUE(on.Poll().ok());
    ASSERT_TRUE(off.Poll().ok());
    for (std::size_t i = 0; i < on_handles.size(); ++i) {
      EXPECT_EQ(on.verdict(on_handles[i]), off.verdict(off_handles[i]))
          << when << " member " << i;
    }
  };
  compare("initial");
  ASSERT_TRUE(on_db.ApplyPending(0).ok());
  ASSERT_TRUE(off_db.ApplyPending(0).ok());
  compare("after T1 confirms");
  ASSERT_TRUE(on_db.DiscardPending(2).ok());
  ASSERT_TRUE(off_db.DiscardPending(2).ok());
  compare("after T3 evicted");
}

}  // namespace
}  // namespace bcdb
