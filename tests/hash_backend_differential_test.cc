// Cross-backend bit-identity of DCSat verdicts and witnesses.
//
// The flat-table migration must not change any observable result: the same
// program built with -DBCDB_USE_STD_HASH=ON (std::unordered containers) and
// OFF (flat open-addressing tables) has to produce identical verdicts,
// witnesses, and search statistics on identical inputs. This test runs a
// 30-seed randomized end-to-end churn — AddPending / ApplyPending /
// DiscardPending interleaved with engine checks and monitor polls — and
// folds every observable into one 64-bit digest, compared against a golden
// constant recorded from the flat-table build. CI runs the suite under both
// backends; both matching the same constant proves bit-identity.
//
// The digest deliberately covers only backend-independent observables
// (verdict booleans, witness PendingId sets, structural counts) — never
// hash values, iteration orders, or addresses. If an engine change
// legitimately alters results, re-record kGoldenDigest from a default
// (flat-table) build and note it in the commit.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/dcsat.h"
#include "core/monitor.h"
#include "query/parser.h"
#include "util/hash.h"
#include "util/rng.h"

namespace bcdb {
namespace {

/// Golden digest over all 30 seeds, recorded from the flat-table build.
/// Must be reproduced bit-exactly by the BCDB_USE_STD_HASH=ON build.
constexpr std::uint64_t kGoldenDigest = 0xaf4f02fa85061b3fULL;

class Digest {
 public:
  void Mix(std::uint64_t x) {
    state_ = HashMix64(state_ ^ HashMix64(x + 0x9e3779b97f4a7c15ULL));
  }
  void Mix(bool b) { Mix(static_cast<std::uint64_t>(b ? 1 : 2)); }
  void Mix(const std::vector<PendingId>& ids) {
    Mix(static_cast<std::uint64_t>(ids.size()));
    for (PendingId id : ids) Mix(static_cast<std::uint64_t>(id));
  }
  std::uint64_t value() const { return state_; }

 private:
  std::uint64_t state_ = 0x5bf03635aca31a6fULL;
};

Catalog MakeCatalog() {
  Catalog catalog;
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "R", {Attribute{"a", ValueType::kInt, false},
                            Attribute{"b", ValueType::kInt, false}}))
                  .ok());
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "S", {Attribute{"x", ValueType::kInt, false},
                            Attribute{"y", ValueType::kInt, true}}))
                  .ok());
  return catalog;
}

BlockchainDatabase MakeInstance(Xoshiro256& rng, bool with_ind) {
  Catalog catalog = MakeCatalog();
  ConstraintSet constraints;
  auto key = FunctionalDependency::Key(catalog, "R", {"a"});
  EXPECT_TRUE(key.ok());
  constraints.AddFd(std::move(*key));
  if (with_ind) {
    auto ind = InclusionDependency::Create(catalog, "S", {"x"}, "R", {"a"});
    EXPECT_TRUE(ind.ok());
    constraints.AddInd(std::move(*ind));
  }
  auto db =
      BlockchainDatabase::Create(std::move(catalog), std::move(constraints));
  EXPECT_TRUE(db.ok());
  const std::size_t base_r = rng.NextBelow(3);
  for (std::size_t a = 0; a < base_r; ++a) {
    EXPECT_TRUE(db->InsertCurrent(
                      "R", Tuple({Value::Int(static_cast<std::int64_t>(a)),
                                  Value::Int(rng.NextInRange(0, 3))}))
                    .ok());
  }
  return std::move(*db);
}

Transaction RandomTxn(Xoshiro256& rng, std::size_t ordinal) {
  Transaction txn("P" + std::to_string(ordinal));
  const std::size_t num_tuples = 1 + rng.NextBelow(2);
  for (std::size_t i = 0; i < num_tuples; ++i) {
    if (rng.NextBool(0.5)) {
      txn.Add("R", Tuple({Value::Int(rng.NextInRange(0, 5)),
                          Value::Int(rng.NextInRange(0, 3))}));
    } else {
      txn.Add("S", Tuple({Value::Int(rng.NextInRange(0, 5)),
                          Value::Int(rng.NextInRange(0, 3))}));
    }
  }
  return txn;
}

const char* kEngineQueries[] = {
    "q() :- R(x, y)",
    "q() :- R(0, y)",
    "q() :- R(x, y), S(x, z)",
    "q() :- R(x, 1), S(x, 2)",
    "q() :- R(x, y), S(x, z), y < z",
    "[q(sum(y)) :- S(x, y)] >= 4",
};

const char* kMonitorQueries[] = {
    "q() :- R(x, y)",
    "q() :- R(x, 2)",
    "q() :- R(x, y), S(x, z)",
    "q() :- S(3, y)",
};

void DigestChecks(DcSatEngine& engine, Digest& digest) {
  DcSatOptions default_options;
  DcSatOptions search_options;  // Force the clique search everywhere.
  search_options.use_precheck = false;
  search_options.use_covers = false;
  search_options.use_tractable_fragments = false;
  for (const char* text : kEngineQueries) {
    auto q = ParseDenialConstraint(text);
    ASSERT_TRUE(q.ok()) << text;
    for (const DcSatOptions& options : {default_options, search_options}) {
      auto result = engine.Check(*q, options);
      ASSERT_TRUE(result.ok()) << text;
      digest.Mix(result->decided);
      digest.Mix(result->satisfied);
      digest.Mix(result->witness.has_value());
      if (result->witness) digest.Mix(*result->witness);
      digest.Mix(static_cast<std::uint64_t>(result->stats.algorithm_used));
      digest.Mix(result->stats.precheck_decided);
      digest.Mix(static_cast<std::uint64_t>(result->stats.num_valid_nodes));
      digest.Mix(static_cast<std::uint64_t>(result->stats.fd_conflict_pairs));
      digest.Mix(static_cast<std::uint64_t>(result->stats.num_components));
      digest.Mix(
          static_cast<std::uint64_t>(result->stats.num_components_covered));
      digest.Mix(static_cast<std::uint64_t>(result->stats.num_cliques));
      digest.Mix(
          static_cast<std::uint64_t>(result->stats.num_worlds_evaluated));
    }
  }
}

void DigestMonitor(ConstraintMonitor& monitor,
                   const std::vector<MonitorHandle>& handles, Digest& digest) {
  ASSERT_TRUE(monitor.Poll().ok());
  for (MonitorHandle handle : handles) {
    digest.Mix(static_cast<std::uint64_t>(monitor.verdict(handle)));
  }
}

TEST(HashBackendDifferentialTest, ThirtySeedChurnMatchesGoldenDigest) {
  Digest digest;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    for (bool with_ind : {false, true}) {
      Xoshiro256 rng(seed * 2 + (with_ind ? 1 : 0));
      BlockchainDatabase db = MakeInstance(rng, with_ind);
      DcSatEngine engine(&db);
      ConstraintMonitor monitor(&db);
      std::vector<MonitorHandle> handles;
      for (const char* text : kMonitorQueries) {
        auto handle = monitor.Add(text, text);
        ASSERT_TRUE(handle.ok()) << text;
        handles.push_back(*handle);
      }

      std::size_t next_ordinal = 0;
      std::vector<PendingId> live;
      const std::size_t initial = 2 + rng.NextBelow(3);
      for (std::size_t i = 0; i < initial; ++i) {
        auto id = db.AddPending(RandomTxn(rng, next_ordinal++));
        ASSERT_TRUE(id.ok());
        live.push_back(*id);
      }

      for (int step = 0; step < 10; ++step) {
        const std::size_t op = rng.NextBelow(3);
        if (op == 0 || live.empty()) {
          auto id = db.AddPending(RandomTxn(rng, next_ordinal++));
          ASSERT_TRUE(id.ok());
          live.push_back(*id);
          digest.Mix(static_cast<std::uint64_t>(*id));
        } else {
          const std::size_t pick = rng.NextBelow(live.size());
          const PendingId id = live[pick];
          if (op == 1 && db.ApplyPending(id).ok()) {
            digest.Mix(std::uint64_t{0xA11ED});
          } else {
            ASSERT_TRUE(db.DiscardPending(id).ok());
            digest.Mix(std::uint64_t{0xD15C});
          }
          live.erase(live.begin() + pick);
        }
        DigestChecks(engine, digest);
        DigestMonitor(monitor, handles, digest);
      }
    }
  }
  EXPECT_EQ(digest.value(), kGoldenDigest)
      << "digest 0x" << std::hex << digest.value() << " — verdicts/witnesses "
      << "diverged between hash-table backends (or the engine legitimately "
      << "changed; re-record from a default build).";
}

}  // namespace
}  // namespace bcdb
