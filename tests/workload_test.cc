#include <gtest/gtest.h>

#include "bitcoin/to_relational.h"
#include "core/dcsat.h"
#include "query/analysis.h"
#include "workload/constraints.h"
#include "workload/datasets.h"

namespace bcdb {
namespace workload {
namespace {

bitcoin::GeneratorParams TinyParams() {
  bitcoin::GeneratorParams params;
  params.seed = 11;
  params.num_blocks = 40;
  params.num_users = 12;
  params.num_pending = 30;
  params.num_contradictions = 4;
  params.pending_chain_depth = 6;
  params.star_size = 5;
  params.rich_payments = 4;
  return params;
}

TEST(WorkloadConstraintsTest, ShapesMatchThePaper) {
  DenialConstraint qs = MakeSimpleConstraint("X");
  EXPECT_EQ(qs.positive_atoms.size(), 1u);

  DenialConstraint qp3 = MakePathConstraint(3, "X", "Y");
  EXPECT_EQ(qp3.positive_atoms.size(), 4u);  // 2 hops × (TxOut + TxIn).
  EXPECT_TRUE(qp3.comparisons.empty());

  DenialConstraint qr3 = MakeStarConstraint(3, "X");
  EXPECT_EQ(qr3.positive_atoms.size(), 6u);
  EXPECT_EQ(qr3.comparisons.size(), 3u);  // Pairwise !=.

  DenialConstraint qa = MakeAggregateConstraint("X", 100);
  ASSERT_TRUE(qa.aggregate.has_value());
  EXPECT_EQ(qa.aggregate->fn, AggregateFunction::kSum);
  EXPECT_EQ(qa.aggregate->op, ComparisonOp::kGe);
}

TEST(WorkloadConstraintsTest, AnalysisClassesMatchThePaper) {
  Catalog catalog = bitcoin::MakeBitcoinCatalog();
  // qs, qp, qr: monotone and connected -> OptDCSat applies.
  for (const DenialConstraint& q :
       {MakeSimpleConstraint("X"), MakePathConstraint(3, "X", "Y"),
        MakePathConstraint(5, "X", "Y"), MakeStarConstraint(3, "X")}) {
    const QueryAnalysis analysis = AnalyzeQuery(q, catalog);
    EXPECT_TRUE(analysis.monotone) << q.name;
    EXPECT_TRUE(analysis.connected) << q.name;
  }
  // qa: monotone (sum >= over non-negative amounts) but not connected.
  const QueryAnalysis agg = AnalyzeQuery(MakeAggregateConstraint("X", 5),
                                         catalog);
  EXPECT_TRUE(agg.monotone);
  EXPECT_FALSE(agg.connected);
}

class WorkloadEndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto workload = bitcoin::GenerateWorkload(TinyParams());
    ASSERT_TRUE(workload.ok()) << workload.status();
    auto db = bitcoin::BuildBlockchainDatabase(workload->node);
    ASSERT_TRUE(db.ok()) << db.status();
    meta_ = new bitcoin::WorkloadMetadata(workload->metadata);
    db_ = new BlockchainDatabase(std::move(*db));
  }
  static void TearDownTestSuite() {
    delete db_;
    delete meta_;
    db_ = nullptr;
    meta_ = nullptr;
  }

  bool Satisfied(const DenialConstraint& q, DcSatAlgorithm algorithm) {
    DcSatEngine engine(db_);
    DcSatOptions options;
    options.algorithm = algorithm;
    auto result = engine.Check(q, options);
    EXPECT_TRUE(result.ok()) << result.status() << " for " << q.ToString();
    return result->satisfied;
  }

  static BlockchainDatabase* db_;
  static bitcoin::WorkloadMetadata* meta_;
};

BlockchainDatabase* WorkloadEndToEndTest::db_ = nullptr;
bitcoin::WorkloadMetadata* WorkloadEndToEndTest::meta_ = nullptr;

TEST_F(WorkloadEndToEndTest, SimpleConstraint) {
  EXPECT_FALSE(Satisfied(SimpleUnsat(*meta_), DcSatAlgorithm::kNaive));
  EXPECT_FALSE(Satisfied(SimpleUnsat(*meta_), DcSatAlgorithm::kOpt));
  EXPECT_TRUE(Satisfied(SimpleSat(*meta_), DcSatAlgorithm::kNaive));
  EXPECT_TRUE(Satisfied(SimpleSat(*meta_), DcSatAlgorithm::kOpt));
}

TEST_F(WorkloadEndToEndTest, PathConstraints) {
  for (std::size_t i : {2u, 3u, 4u, 5u}) {
    EXPECT_FALSE(Satisfied(PathUnsat(*meta_, i), DcSatAlgorithm::kOpt))
        << "qp" << i;
    EXPECT_TRUE(Satisfied(PathSat(*meta_, i), DcSatAlgorithm::kOpt))
        << "qp" << i;
  }
  EXPECT_FALSE(Satisfied(PathUnsat(*meta_, 3), DcSatAlgorithm::kNaive));
  EXPECT_TRUE(Satisfied(PathSat(*meta_, 3), DcSatAlgorithm::kNaive));
}

TEST_F(WorkloadEndToEndTest, StarConstraints) {
  for (std::size_t i : {2u, 3u, 5u}) {
    EXPECT_FALSE(Satisfied(StarUnsat(*meta_, i), DcSatAlgorithm::kOpt))
        << "qr" << i;
    EXPECT_TRUE(Satisfied(StarSat(*meta_, i), DcSatAlgorithm::kOpt))
        << "qr" << i;
  }
  // Asking for more transfers than the star has cannot be realized.
  EXPECT_TRUE(Satisfied(StarUnsat(*meta_, TinyParams().star_size + 1),
                        DcSatAlgorithm::kOpt));
}

TEST_F(WorkloadEndToEndTest, AggregateConstraints) {
  EXPECT_FALSE(Satisfied(AggregateUnsat(*meta_), DcSatAlgorithm::kNaive));
  EXPECT_TRUE(Satisfied(AggregateSat(*meta_), DcSatAlgorithm::kNaive));
}

TEST_F(WorkloadEndToEndTest, DistinctTransfersConstraint) {
  // Paper q4 (Example 5): "X participated in at most n-1 transactions in
  // which bitcoins were given to Y". The star user pays StarRcpt0Pk in
  // exactly one pending transaction, so >= 1 is reachable and >= 2 is not.
  DcSatEngine engine(db_);
  auto reachable = engine.Check(MakeDistinctTransfersConstraint(
      meta_->star_pk, "StarRcpt0Pk", 1));
  ASSERT_TRUE(reachable.ok()) << reachable.status();
  EXPECT_FALSE(reachable->satisfied);
  EXPECT_EQ(reachable->stats.algorithm_used, DcSatAlgorithm::kNaive);

  auto unreachable = engine.Check(MakeDistinctTransfersConstraint(
      meta_->star_pk, "StarRcpt0Pk", 2));
  ASSERT_TRUE(unreachable.ok());
  EXPECT_TRUE(unreachable->satisfied);

  // cntd with >= is monotone; the aggregate form is not connected.
  const QueryAnalysis analysis = AnalyzeQuery(
      MakeDistinctTransfersConstraint("X", "Y", 3), db_->catalog());
  EXPECT_TRUE(analysis.monotone);
  EXPECT_FALSE(analysis.connected);
}

TEST_F(WorkloadEndToEndTest, AutoDispatchMatchesThePaper) {
  // Over the Bitcoin schema (keys + INDs: outside the tractable fragments),
  // kAuto must route connected conjunctive families to OptDCSat and the
  // disconnected aggregate family to NaiveDCSat — the paper's Section 7
  // setup ("only NaiveDCSat for qa, as this query is not connected").
  DcSatEngine engine(db_);
  struct Case {
    DenialConstraint q;
    DcSatAlgorithm expected;
  };
  const Case cases[] = {
      {SimpleUnsat(*meta_), DcSatAlgorithm::kOpt},
      {PathUnsat(*meta_, 3), DcSatAlgorithm::kOpt},
      {StarUnsat(*meta_, 3), DcSatAlgorithm::kOpt},
      {AggregateUnsat(*meta_), DcSatAlgorithm::kNaive},
  };
  for (const Case& c : cases) {
    auto result = engine.Check(c.q);
    ASSERT_TRUE(result.ok()) << c.q.ToString();
    EXPECT_EQ(result->stats.algorithm_used, c.expected) << c.q.ToString();
    EXPECT_FALSE(result->satisfied) << c.q.ToString();
  }
}

TEST(DatasetsTest, SpecsAreOrdered) {
  const DatasetSpec s100 = S100();
  const DatasetSpec s200 = S200();
  const DatasetSpec s300 = S300();
  EXPECT_LT(s100.params.num_blocks, s200.params.num_blocks);
  EXPECT_LT(s200.params.num_blocks, s300.params.num_blocks);
  // Pending totals mirror the paper's Table 1.
  auto total = [](const bitcoin::GeneratorParams& p) {
    return p.num_pending + p.pending_chain_depth + p.star_size +
           p.rich_payments + p.num_contradictions;
  };
  EXPECT_EQ(total(s100.params), 2741u);
  EXPECT_EQ(total(s200.params), 3733u);
  EXPECT_EQ(total(s300.params), 2766u);
  EXPECT_EQ(AllDatasets().size(), 3u);
  EXPECT_EQ(DefaultDataset().name, "S200");
}

}  // namespace
}  // namespace workload
}  // namespace bcdb
