#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/dcsat.h"
#include "core/monitor.h"
#include "query/parser.h"
#include "util/deadline.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace bcdb {
namespace {

using Verdict = ConstraintMonitor::Verdict;

DenialConstraint Q(const std::string& text) {
  auto q = ParseDenialConstraint(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return *q;
}

/// R(a, b) with key a; pending double-spend pairs (i,0) vs (i,1) for i < k,
/// so |Poss(D)| = 3^k — the Theorem-1 blowup instance.
BlockchainDatabase MakeConflictLadder(std::size_t k) {
  Catalog catalog;
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "R", {Attribute{"a", ValueType::kInt, false},
                            Attribute{"b", ValueType::kInt, false}}))
                  .ok());
  ConstraintSet constraints;
  auto key = FunctionalDependency::Key(catalog, "R", {"a"});
  EXPECT_TRUE(key.ok());
  constraints.AddFd(std::move(*key));
  auto db =
      BlockchainDatabase::Create(std::move(catalog), std::move(constraints));
  EXPECT_TRUE(db.ok());
  for (std::size_t i = 0; i < k; ++i) {
    for (std::int64_t b : {0, 1}) {
      Transaction txn;
      txn.Add("R",
              Tuple({Value::Int(static_cast<std::int64_t>(i)), Value::Int(b)}));
      EXPECT_TRUE(db->AddPending(txn).ok());
    }
  }
  return std::move(*db);
}

TEST(BudgetLimitsTest, DefaultIsUnlimited) {
  BudgetLimits limits;
  EXPECT_TRUE(limits.unlimited());
  limits.max_cliques = 1;
  EXPECT_FALSE(limits.unlimited());
  limits = BudgetLimits{};
  limits.deadline_ms = 0.5;
  EXPECT_FALSE(limits.unlimited());
}

TEST(BudgetLimitsTest, ScaledGrowsBoundedFieldsOnly) {
  BudgetLimits limits;
  limits.max_cliques = 10;
  limits.deadline_ms = 2;
  BudgetLimits scaled = limits.Scaled(4);
  EXPECT_EQ(scaled.max_cliques, 40u);
  EXPECT_DOUBLE_EQ(scaled.deadline_ms, 8);
  EXPECT_EQ(scaled.max_worlds, 0u);      // Unlimited stays unlimited.
  EXPECT_EQ(scaled.max_components, 0u);
  // Saturates instead of overflowing.
  limits.max_cliques = SIZE_MAX / 2;
  EXPECT_EQ(limits.Scaled(1e9).max_cliques, SIZE_MAX);
}

TEST(BudgetTest, WorkLimitLatchesExpired) {
  BudgetLimits limits;
  limits.max_cliques = 2;
  Budget budget(limits);
  EXPECT_TRUE(budget.ChargeClique());
  EXPECT_TRUE(budget.ChargeClique());
  EXPECT_FALSE(budget.ChargeClique());  // Third clique is over budget.
  EXPECT_TRUE(budget.Expired());        // ...and the flag latches.
  EXPECT_FALSE(budget.ChargeWorld());   // Other charges now fail too.
  EXPECT_EQ(budget.cliques_charged(), 3u);
}

TEST(BudgetTest, UnlimitedNeverExpires) {
  Budget budget(BudgetLimits{});
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(budget.ChargeClique());
    EXPECT_TRUE(budget.ChargeWorld());
    EXPECT_TRUE(budget.ChargeComponent());
    EXPECT_FALSE(budget.Expired());
  }
}

TEST(BudgetTest, PastDeadlineExpires) {
  BudgetLimits limits;
  limits.deadline_ms = 1e-6;  // Effectively already past.
  Budget budget(limits);
  // The clock is polled once every 64 probes, so expiry is observed within
  // a bounded number of probes.
  bool expired = false;
  for (int i = 0; i < 130 && !expired; ++i) expired = budget.Expired();
  EXPECT_TRUE(expired);
}

// --- Exhaustive path under a work budget -------------------------------

TEST(DeadlineDcSatTest, ExhaustiveWorldCapReturnsUndecidedWithPartialStats) {
  BlockchainDatabase db = MakeConflictLadder(8);  // 3^8 = 6561 worlds.
  DcSatEngine engine(&db);
  DenialConstraint q = Q("[q(count()) :- R(x, y)] = 99");  // Satisfied.

  DcSatOptions budgeted;
  budgeted.budget.max_worlds = 100;
  auto result = engine.Check(q, budgeted);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->stats.algorithm_used, DcSatAlgorithm::kExhaustive);
  EXPECT_FALSE(result->decided);
  EXPECT_FALSE(result->satisfied);
  EXPECT_TRUE(result->stats.budget_expired);
  // Partial progress is reported: some worlds were evaluated, short of 3^8.
  EXPECT_GT(result->stats.num_worlds_evaluated, 0u);
  EXPECT_LE(result->stats.num_worlds_evaluated, 100u);

  auto unlimited = engine.Check(q);
  ASSERT_TRUE(unlimited.ok());
  EXPECT_TRUE(unlimited->decided);
  EXPECT_TRUE(unlimited->satisfied);
  EXPECT_FALSE(unlimited->stats.budget_expired);
  EXPECT_EQ(unlimited->stats.num_worlds_evaluated, 6561u);
}

TEST(DeadlineDcSatTest, ViolatingWorldBeforeExpiryStillDecides) {
  BlockchainDatabase db = MakeConflictLadder(6);
  DcSatEngine engine(&db);
  // The BFS enumerates the base world first, then the single-transaction
  // worlds — the second world already has exactly one R tuple, so it
  // violates "count() = 1" within a 2-world budget: one counterexample is
  // conclusive no matter how tight the budget.
  DenialConstraint q = Q("[q(count()) :- R(x, y)] = 1");
  DcSatOptions budgeted;
  budgeted.budget.max_worlds = 2;
  auto result = engine.Check(q, budgeted);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->decided);
  EXPECT_FALSE(result->satisfied);
  EXPECT_LE(result->stats.num_worlds_evaluated, 2u);
}

// --- Clique path under a work budget -----------------------------------

TEST(DeadlineDcSatTest, CliqueCapReturnsUndecidedAndUnlimitedDecides) {
  BlockchainDatabase db = MakeConflictLadder(7);
  DcSatEngine engine(&db);
  DenialConstraint q = Q("q() :- R(x, 0), R(x, 1)");  // Satisfied (kept).

  DcSatOptions budgeted;
  budgeted.algorithm = DcSatAlgorithm::kOpt;
  budgeted.use_tractable_fragments = false;
  budgeted.budget.max_cliques = 2;
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    budgeted.num_threads = threads;
    auto result = engine.Check(q, budgeted);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_FALSE(result->decided) << "threads=" << threads;
    EXPECT_FALSE(result->satisfied);
    EXPECT_TRUE(result->stats.budget_expired);
    EXPECT_LT(result->stats.components_completed, result->stats.num_components);
  }

  DcSatOptions unlimited = budgeted;
  unlimited.budget = BudgetLimits{};
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    unlimited.num_threads = threads;
    auto result = engine.Check(q, unlimited);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result->decided);
    EXPECT_TRUE(result->satisfied);
    EXPECT_FALSE(result->stats.budget_expired);
    EXPECT_EQ(result->stats.components_completed, result->stats.num_components);
  }
}

TEST(DeadlineDcSatTest, ComponentCapBoundsBreadth) {
  BlockchainDatabase db = MakeConflictLadder(7);
  DcSatEngine engine(&db);
  DenialConstraint q = Q("q() :- R(x, 0), R(x, 1)");
  DcSatOptions budgeted;
  budgeted.algorithm = DcSatAlgorithm::kOpt;
  budgeted.use_tractable_fragments = false;
  budgeted.budget.max_components = 3;
  auto result = engine.Check(q, budgeted);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->decided);
  EXPECT_TRUE(result->stats.budget_expired);
  EXPECT_LE(result->stats.components_completed, 3u);
}

TEST(DeadlineDcSatTest, TightDeadlineReturnsPromptlyOnBlowupInstance) {
  BlockchainDatabase db = MakeConflictLadder(12);  // 3^12 = 531441 worlds.
  DcSatEngine engine(&db);
  engine.PrepareSteadyState();
  DenialConstraint q = Q("[q(count()) :- R(x, y)] = 99");
  DcSatOptions budgeted;
  budgeted.budget.deadline_ms = 1;
  Stopwatch watch;
  auto result = engine.Check(q, budgeted);
  const double elapsed_ms = watch.ElapsedSeconds() * 1e3;
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->decided);
  EXPECT_TRUE(result->stats.budget_expired);
  // Cooperative preemption points are microseconds apart, so the overshoot
  // stays far below the unbudgeted run time (generous bound: sanitizer and
  // loaded-CI friendly, still an order under the full enumeration).
  EXPECT_LT(elapsed_ms, 500.0);
}

// --- Unlimited-equivalence differential --------------------------------

/// A *non-binding* budget must be bit-identical to no budget at all: same
/// satisfied flag, same witness, same clique/world counts, decided == true.
TEST(DeadlineDcSatTest, HugeBudgetMatchesUnlimitedBitForBit) {
  const char* kQueries[] = {
      "q() :- R(x, y)",
      "q() :- R(0, y)",
      "q() :- R(x, 2)",
      "q() :- R(x, y), S(x, z)",
      "q() :- R(x, 1), S(x, 2)",
  };
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Xoshiro256 rng(seed);
    Catalog catalog;
    ASSERT_TRUE(catalog
                    .AddRelation(RelationSchema(
                        "R", {Attribute{"a", ValueType::kInt, false},
                              Attribute{"b", ValueType::kInt, false}}))
                    .ok());
    ASSERT_TRUE(catalog
                    .AddRelation(RelationSchema(
                        "S", {Attribute{"x", ValueType::kInt, false},
                              Attribute{"y", ValueType::kInt, true}}))
                    .ok());
    ConstraintSet constraints;
    auto key = FunctionalDependency::Key(catalog, "R", {"a"});
    ASSERT_TRUE(key.ok());
    constraints.AddFd(std::move(*key));
    auto db =
        BlockchainDatabase::Create(std::move(catalog), std::move(constraints));
    ASSERT_TRUE(db.ok());
    const std::size_t num_pending = 4 + rng.NextBelow(3);
    for (std::size_t t = 0; t < num_pending; ++t) {
      Transaction txn("P" + std::to_string(t));
      const std::size_t num_tuples = 1 + rng.NextBelow(2);
      for (std::size_t i = 0; i < num_tuples; ++i) {
        if (rng.NextBool(0.5)) {
          txn.Add("R", Tuple({Value::Int(rng.NextInRange(0, 5)),
                              Value::Int(rng.NextInRange(0, 3))}));
        } else {
          txn.Add("S", Tuple({Value::Int(rng.NextInRange(0, 5)),
                              Value::Int(rng.NextInRange(0, 3))}));
        }
      }
      ASSERT_TRUE(db->AddPending(txn).ok());
    }

    DcSatEngine engine(&*db);
    for (const char* text : kQueries) {
      DenialConstraint q = Q(text);
      for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        // Force the clique search: with an FD-only constraint set the
        // tractable fragment would otherwise decide everything without
        // ever consulting the budget.
        DcSatOptions unlimited;
        unlimited.algorithm = DcSatAlgorithm::kOpt;
        unlimited.use_tractable_fragments = false;
        unlimited.num_threads = threads;
        auto reference = engine.Check(q, unlimited);
        ASSERT_TRUE(reference.ok()) << text;

        DcSatOptions huge = unlimited;
        huge.budget.deadline_ms = 1e9;
        huge.budget.max_cliques = std::size_t{1} << 60;
        huge.budget.max_worlds = std::size_t{1} << 60;
        huge.budget.max_components = std::size_t{1} << 60;
        auto budgeted = engine.Check(q, huge);
        ASSERT_TRUE(budgeted.ok()) << text;

        EXPECT_TRUE(budgeted->decided) << text;
        EXPECT_EQ(budgeted->satisfied, reference->satisfied)
            << text << " seed=" << seed << " threads=" << threads;
        EXPECT_EQ(budgeted->witness, reference->witness) << text;
        EXPECT_FALSE(budgeted->stats.budget_expired) << text;
        if (threads == 1) {
          // Work counts are deterministic only on the serial path (the
          // parallel one cancels sibling components at racy points once a
          // violation lands, budget or not).
          EXPECT_EQ(budgeted->stats.num_cliques, reference->stats.num_cliques)
              << text;
          EXPECT_EQ(budgeted->stats.num_worlds_evaluated,
                    reference->stats.num_worlds_evaluated)
              << text;
          EXPECT_EQ(budgeted->stats.components_completed,
                    reference->stats.components_completed)
              << text;
        }
      }
    }
  }
}

// --- Monitor escalation ------------------------------------------------

TEST(MonitorBudgetTest, UndecidedEscalatesToDecidedAcrossPolls) {
  BlockchainDatabase db = MakeConflictLadder(3);  // 3^3 = 27 worlds.
  MonitorOptions options;
  options.budget.max_worlds = 4;  // Work-based: deterministic expiry.
  options.budget_growth = 4.0;
  ConstraintMonitor monitor(&db, options);
  auto handle = monitor.Add("count", Q("[q(count()) :- R(x, y)] = 99"));
  ASSERT_TRUE(handle.ok());

  // Poll 1 (scale 1, cap 4): expires — the first verdict is kUndecided.
  auto changes = monitor.Poll();
  ASSERT_TRUE(changes.ok());
  ASSERT_EQ(changes->size(), 1u);
  EXPECT_EQ((*changes)[0].after, Verdict::kUndecided);
  EXPECT_EQ(monitor.poll_stats().undecided_verdicts, 1u);
  EXPECT_EQ(monitor.poll_stats().budget_escalations, 1u);

  // Poll 2 (scale 4, cap 16): still short of 27 worlds. No transition —
  // the verdict stays kUndecided — but the retry happened despite the
  // database being quiescent.
  changes = monitor.Poll();
  ASSERT_TRUE(changes.ok());
  EXPECT_TRUE(changes->empty());
  EXPECT_EQ(monitor.poll_stats().undecided_verdicts, 2u);
  EXPECT_EQ(monitor.verdict(*handle), Verdict::kUndecided);

  // Poll 3: two consecutive failures trigger one backoff poll.
  changes = monitor.Poll();
  ASSERT_TRUE(changes.ok());
  EXPECT_TRUE(changes->empty());
  EXPECT_EQ(monitor.poll_stats().backoff_skips, 1u);
  EXPECT_EQ(monitor.poll_stats().undecided_verdicts, 2u);

  // Poll 4 (scale 16, cap 64 >= 27): the check completes and the verdict
  // settles — kImpossible, reported as a transition from kUndecided.
  changes = monitor.Poll();
  ASSERT_TRUE(changes.ok());
  ASSERT_EQ(changes->size(), 1u);
  EXPECT_EQ((*changes)[0].before, Verdict::kUndecided);
  EXPECT_EQ((*changes)[0].after, Verdict::kImpossible);
  EXPECT_EQ(monitor.verdict(*handle), Verdict::kImpossible);
}

TEST(MonitorBudgetTest, RepeatOffenderBacksOffExponentially) {
  BlockchainDatabase db = MakeConflictLadder(5);  // 3^5 = 243 worlds.
  MonitorOptions options;
  options.budget.max_worlds = 4;
  options.budget_growth = 1.0;  // Never escalates: undecided forever.
  ConstraintMonitor monitor(&db, options);
  ASSERT_TRUE(monitor.Add("count", Q("[q(count()) :- R(x, y)] = 99")).ok());

  for (int poll = 0; poll < 12; ++poll) {
    ASSERT_TRUE(monitor.Poll().ok());
  }
  const auto& stats = monitor.poll_stats();
  EXPECT_EQ(stats.budget_escalations, 0u);
  // Backoff spaces the retries out: of 12 polls, most are sat out
  // (schedule after the streak starts: retry, skip 1, retry, skip 2, ...).
  EXPECT_GE(stats.backoff_skips, 6u);
  EXPECT_LE(stats.undecided_verdicts, 6u);
  EXPECT_EQ(monitor.verdict(MonitorHandle()), Verdict::kUnknown);

  // A mutation that dirties the constraint bypasses the backoff: the next
  // poll re-checks immediately.
  const std::size_t undecided_before = stats.undecided_verdicts;
  Transaction txn;
  txn.Add("R", Tuple({Value::Int(100), Value::Int(0)}));
  ASSERT_TRUE(db.AddPending(txn).ok());
  ASSERT_TRUE(monitor.Poll().ok());
  EXPECT_EQ(monitor.poll_stats().undecided_verdicts, undecided_before + 1);
}

TEST(MonitorBudgetTest, CallerBudgetOverridesMonitorDefault) {
  BlockchainDatabase db = MakeConflictLadder(3);
  MonitorOptions options;
  options.budget.max_worlds = 1;  // Monitor default: hopeless.
  ConstraintMonitor monitor(&db, options);
  auto handle = monitor.Add("count", Q("[q(count()) :- R(x, y)] = 99"));
  ASSERT_TRUE(handle.ok());

  // The per-poll options win over the monitor-level default.
  DcSatOptions roomy;
  roomy.budget.max_worlds = 1000;
  ASSERT_TRUE(monitor.Poll(roomy).ok());
  EXPECT_EQ(monitor.verdict(*handle), Verdict::kImpossible);
  EXPECT_EQ(monitor.poll_stats().undecided_verdicts, 0u);
}

}  // namespace
}  // namespace bcdb
