#include <gtest/gtest.h>

#include "bitcoin/block.h"
#include "bitcoin/transaction.h"

namespace bcdb {
namespace bitcoin {
namespace {

BitcoinTransaction MakeTx() {
  return BitcoinTransaction(
      {TxInput{OutPoint{100, 1}, "U1Pk", 5 * kCoin, SignatureFor("U1Pk")}},
      {TxOutput{"U2Pk", 3 * kCoin}, TxOutput{"U1Pk", 2 * kCoin - 1000}});
}

TEST(SignatureTest, PkSuffixRewritten) {
  EXPECT_EQ(SignatureFor("U1Pk"), "U1Sig");
  EXPECT_EQ(SignatureFor("Alice"), "AliceSig");
}

TEST(BitcoinTransactionTest, Totals) {
  BitcoinTransaction tx = MakeTx();
  EXPECT_EQ(tx.InputTotal(), 5 * kCoin);
  EXPECT_EQ(tx.OutputTotal(), 5 * kCoin - 1000);
  EXPECT_EQ(tx.Fee(), 1000);
  EXPECT_FALSE(tx.is_coinbase());
}

TEST(BitcoinTransactionTest, TxIdDeterministicAndDistinct) {
  EXPECT_EQ(MakeTx().txid(), MakeTx().txid());
  BitcoinTransaction other(
      {TxInput{OutPoint{100, 2}, "U1Pk", 5 * kCoin, SignatureFor("U1Pk")}},
      {TxOutput{"U2Pk", 3 * kCoin}});
  EXPECT_NE(MakeTx().txid(), other.txid());
  EXPECT_GE(MakeTx().txid(), 0);
}

TEST(BitcoinTransactionTest, CoinbaseSaltedByHeight) {
  BitcoinTransaction cb1 = BitcoinTransaction::Coinbase("MinerPk", kCoin, 1);
  BitcoinTransaction cb2 = BitcoinTransaction::Coinbase("MinerPk", kCoin, 2);
  EXPECT_TRUE(cb1.is_coinbase());
  EXPECT_EQ(cb1.Fee(), 0);
  EXPECT_NE(cb1.txid(), cb2.txid());
}

TEST(BlockTest, HashChainsAndMerkle) {
  Block genesis(0, 0, {});
  EXPECT_EQ(genesis.merkle_root(), 0);

  std::vector<BitcoinTransaction> txs{
      BitcoinTransaction::Coinbase("MinerPk", kCoin, 1), MakeTx()};
  Block block(1, genesis.hash(), txs);
  EXPECT_EQ(block.prev_hash(), genesis.hash());
  EXPECT_NE(block.hash(), genesis.hash());
  EXPECT_NE(block.merkle_root(), 0);
  EXPECT_EQ(block.CountInputs(), 1u);
  EXPECT_EQ(block.CountOutputs(), 3u);

  // The merkle root (and hence block hash) commits to the transactions.
  std::vector<BitcoinTransaction> reversed{txs[1], txs[0]};
  Block tampered(1, genesis.hash(), reversed);
  EXPECT_NE(block.merkle_root(), tampered.merkle_root());
  EXPECT_NE(block.hash(), tampered.hash());
}

TEST(BlockTest, OddTransactionCountMerkle) {
  std::vector<BitcoinTransaction> txs{
      BitcoinTransaction::Coinbase("A", kCoin, 1),
      BitcoinTransaction::Coinbase("B", kCoin, 2),
      BitcoinTransaction::Coinbase("C", kCoin, 3)};
  Block block(1, 0, txs);
  EXPECT_NE(block.merkle_root(), 0);
}

}  // namespace
}  // namespace bitcoin
}  // namespace bcdb
