#include <gtest/gtest.h>

#include <unordered_map>

#include "bitcoin/generator.h"

namespace bcdb {
namespace bitcoin {
namespace {

GeneratorParams SmallParams() {
  GeneratorParams params;
  params.seed = 7;
  params.num_blocks = 40;
  params.num_users = 12;
  params.num_pending = 25;
  params.num_contradictions = 4;
  params.pending_chain_depth = 5;
  params.star_size = 4;
  params.rich_payments = 3;
  return params;
}

TEST(GeneratorTest, ProducesRequestedShape) {
  auto workload = GenerateWorkload(SmallParams());
  ASSERT_TRUE(workload.ok()) << workload.status();
  const GeneratorParams params = SmallParams();

  // Chain: num_blocks organic + 1 landmark-setup block + genesis.
  EXPECT_EQ(workload->node.chain().height(), params.num_blocks + 1);

  // Pending count: bulk + chain + star + rich + contradictions.
  const std::size_t expected_pending =
      params.num_pending + params.pending_chain_depth + params.star_size +
      params.rich_payments + params.num_contradictions;
  EXPECT_EQ(workload->node.mempool().size(), expected_pending);

  // Exactly the injected double-spend pairs conflict.
  EXPECT_EQ(workload->node.mempool().ConflictPairs().size(),
            params.num_contradictions);
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  auto w1 = GenerateWorkload(SmallParams());
  auto w2 = GenerateWorkload(SmallParams());
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE(w2.ok());
  EXPECT_EQ(w1->node.chain().tip().hash(), w2->node.chain().tip().hash());
  ASSERT_EQ(w1->node.mempool().size(), w2->node.mempool().size());
  for (std::size_t i = 0; i < w1->node.mempool().size(); ++i) {
    EXPECT_EQ(w1->node.mempool().transactions()[i].txid(),
              w2->node.mempool().transactions()[i].txid());
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorParams params = SmallParams();
  auto w1 = GenerateWorkload(params);
  params.seed = 8;
  auto w2 = GenerateWorkload(params);
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE(w2.ok());
  EXPECT_NE(w1->node.chain().tip().hash(), w2->node.chain().tip().hash());
}

TEST(GeneratorTest, LandmarksAreWired) {
  auto workload = GenerateWorkload(SmallParams());
  ASSERT_TRUE(workload.ok());
  const WorkloadMetadata& meta = workload->metadata;
  const Mempool& mempool = workload->node.mempool();

  // Chain pks: depth + 1 entries, head funded on-chain.
  ASSERT_EQ(meta.chain_pks.size(), SmallParams().pending_chain_depth + 1);
  bool head_confirmed = false;
  for (const auto& [point, utxo] : workload->node.chain().utxos()) {
    if (utxo.pubkey == meta.chain_pks[0]) head_confirmed = true;
  }
  EXPECT_TRUE(head_confirmed);

  // Each chain hop exists as a pending tx paying the next chain pk.
  for (std::size_t d = 1; d < meta.chain_pks.size(); ++d) {
    bool found = false;
    for (const BitcoinTransaction& tx : mempool.transactions()) {
      if (!tx.outputs().empty() &&
          tx.outputs()[0].pubkey == meta.chain_pks[d]) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << "chain hop " << d;
  }

  // Star: star_size pending transactions signed by star_pk, distinct txids.
  std::size_t star_spends = 0;
  for (const BitcoinTransaction& tx : mempool.transactions()) {
    for (const TxInput& input : tx.inputs()) {
      if (input.pubkey == meta.star_pk) ++star_spends;
    }
  }
  EXPECT_EQ(star_spends, SmallParams().star_size);

  // Rich: pending inflow adds up.
  Satoshi rich_inflow = 0;
  for (const BitcoinTransaction& tx : mempool.transactions()) {
    for (const TxOutput& output : tx.outputs()) {
      if (output.pubkey == meta.rich_pk) rich_inflow += output.amount;
    }
  }
  EXPECT_EQ(rich_inflow, meta.rich_pending_total);
  EXPECT_GT(meta.rich_base_total, 0);

  // Quiet pk holds a confirmed output and never appears in the mempool.
  bool quiet_confirmed = false;
  for (const auto& [point, utxo] : workload->node.chain().utxos()) {
    if (utxo.pubkey == meta.quiet_pk) quiet_confirmed = true;
  }
  EXPECT_TRUE(quiet_confirmed);
  for (const BitcoinTransaction& tx : mempool.transactions()) {
    for (const TxInput& input : tx.inputs()) {
      EXPECT_NE(input.pubkey, meta.quiet_pk);
    }
    for (const TxOutput& output : tx.outputs()) {
      EXPECT_NE(output.pubkey, meta.quiet_pk);
    }
  }
}

TEST(GeneratorTest, ContradictionsAvoidLandmarks) {
  auto workload = GenerateWorkload(SmallParams());
  ASSERT_TRUE(workload.ok());
  const Mempool& mempool = workload->node.mempool();
  for (const auto& [i, j] : mempool.ConflictPairs()) {
    for (std::size_t idx : {i, j}) {
      const BitcoinTransaction& tx = mempool.transactions()[idx];
      for (const TxInput& input : tx.inputs()) {
        EXPECT_NE(input.pubkey, workload->metadata.star_pk);
        EXPECT_NE(input.pubkey, workload->metadata.chain_pks[0]);
      }
    }
  }
}

TEST(GeneratorTest, ActivityGrowsWithHeight) {
  GeneratorParams params = SmallParams();
  params.num_blocks = 120;
  params.txs_per_block_slope = 0.1;
  params.txs_per_block_cap = 30;
  params.num_pending = 10;
  auto workload = GenerateWorkload(params);
  ASSERT_TRUE(workload.ok()) << workload.status();
  const auto& blocks = workload->node.chain().blocks();
  // Later organic blocks carry more transactions than early ones.
  std::size_t early = 0, late = 0;
  for (std::size_t h = 1; h <= 20; ++h) {
    early += blocks[h].transactions().size();
  }
  for (std::size_t h = 100; h < 120; ++h) {
    late += blocks[h].transactions().size();
  }
  EXPECT_GT(late, early);
}

TEST(GeneratorTest, LifecycleKnobsDefaultOff) {
  // All three churn knobs default to zero, so existing datasets stay
  // byte-identical: no replacements, evictions, or reorgs happen.
  auto workload = GenerateWorkload(SmallParams());
  ASSERT_TRUE(workload.ok()) << workload.status();
  EXPECT_EQ(workload->metadata.replaced_by_fee, 0u);
  EXPECT_EQ(workload->metadata.evicted_by_capacity, 0u);
  EXPECT_EQ(workload->metadata.disconnected_by_reorg, 0u);
}

TEST(GeneratorTest, LifecycleKnobsDriveChurn) {
  GeneratorParams params = SmallParams();
  params.num_replacements = 3;
  params.mempool_capacity = 20;
  params.reorg_depth = 2;
  auto workload = GenerateWorkload(params);
  ASSERT_TRUE(workload.ok()) << workload.status();

  EXPECT_EQ(workload->metadata.replaced_by_fee, 3u);
  // The pool was squeezed to the cap (replacements keep the size level, so
  // there was an excess to evict) and is still within it.
  EXPECT_GT(workload->metadata.evicted_by_capacity, 0u);
  EXPECT_LE(workload->node.mempool().size(), params.mempool_capacity);
  // The rival branch disconnected the reorg_depth churn-confirmation
  // blocks; whatever they confirmed is counted.
  EXPECT_GT(workload->metadata.disconnected_by_reorg, 0u);

  // Determinism holds with the knobs on.
  auto again = GenerateWorkload(params);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(workload->node.chain().tip().hash(),
            again->node.chain().tip().hash());
  EXPECT_EQ(workload->node.mempool().size(), again->node.mempool().size());
  EXPECT_EQ(workload->metadata.disconnected_by_reorg,
            again->metadata.disconnected_by_reorg);
}

}  // namespace
}  // namespace bitcoin
}  // namespace bcdb
