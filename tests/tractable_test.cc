#include <gtest/gtest.h>

#include "core/dcsat.h"
#include "core/possible_worlds.h"
#include "core/tractable.h"
#include "query/compiled_query.h"
#include "query/parser.h"
#include "util/rng.h"

namespace bcdb {
namespace {

/// Instances restricted to the tractable constraint classes of Theorem 1:
/// FD-only (`with_ind = false`) or IND-only (`keys = false`).
BlockchainDatabase MakeInstance(std::uint64_t seed, bool keys, bool inds) {
  Xoshiro256 rng(seed);
  Catalog catalog;
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "R", {Attribute{"a", ValueType::kInt, false},
                            Attribute{"b", ValueType::kInt, false}}))
                  .ok());
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "S", {Attribute{"x", ValueType::kInt, false},
                            Attribute{"y", ValueType::kInt, true}}))
                  .ok());
  ConstraintSet constraints;
  if (keys) {
    constraints.AddFd(*FunctionalDependency::Key(catalog, "R", {"a"}));
    constraints.AddFd(
        *FunctionalDependency::Create(catalog, "S", {"x"}, {"y"}));
  }
  if (inds) {
    constraints.AddInd(
        *InclusionDependency::Create(catalog, "S", {"x"}, "R", {"a"}));
  }
  auto db =
      BlockchainDatabase::Create(std::move(catalog), std::move(constraints));
  EXPECT_TRUE(db.ok());

  const std::size_t base_r = rng.NextBelow(3);
  for (std::size_t a = 0; a < base_r; ++a) {
    EXPECT_TRUE(db->InsertCurrent(
                      "R", Tuple({Value::Int(static_cast<std::int64_t>(a)),
                                  Value::Int(rng.NextInRange(0, 3))}))
                    .ok());
  }
  const std::size_t num_pending = 3 + rng.NextBelow(4);
  for (std::size_t t = 0; t < num_pending; ++t) {
    Transaction txn("P" + std::to_string(t));
    const std::size_t num_tuples = 1 + rng.NextBelow(3);
    for (std::size_t i = 0; i < num_tuples; ++i) {
      if (rng.NextBool(0.5)) {
        txn.Add("R", Tuple({Value::Int(rng.NextInRange(0, 4)),
                            Value::Int(rng.NextInRange(0, 3))}));
      } else {
        txn.Add("S", Tuple({Value::Int(rng.NextInRange(0, 4)),
                            Value::Int(rng.NextInRange(0, 3))}));
      }
    }
    EXPECT_TRUE(db->AddPending(txn).ok());
  }
  return std::move(*db);
}

bool OracleSatisfied(const BlockchainDatabase& db, const DenialConstraint& q) {
  auto worlds = EnumeratePossibleWorlds(db, 1u << 16);
  EXPECT_TRUE(worlds.ok());
  auto compiled = CompiledQuery::Compile(q, &db.database());
  EXPECT_TRUE(compiled.ok());
  for (const WorldView& world : *worlds) {
    if (compiled->Evaluate(world)) return false;
  }
  return true;
}

const char* kPositiveQueries[] = {
    "q() :- R(x, y)",
    "q() :- R(0, y)",
    "q() :- R(x, 2), S(x, z)",
    "q() :- R(x, y), S(x, y)",
    "q() :- S(x, y), S(z, y), x != z",
    "q() :- R(x, y), x < y",
    "q() :- R(2, y), S(2, z)",
};

class TractableTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TractableTest, FdOnlyFragmentMatchesOracle) {
  BlockchainDatabase db =
      MakeInstance(GetParam(), /*keys=*/true, /*inds=*/false);
  DcSatEngine engine(&db);
  for (const char* text : kPositiveQueries) {
    auto q = ParseDenialConstraint(text);
    ASSERT_TRUE(q.ok());
    auto result = engine.Check(*q);
    ASSERT_TRUE(result.ok()) << text;
    EXPECT_EQ(result->stats.algorithm_used, DcSatAlgorithm::kTractable)
        << text;
    EXPECT_EQ(result->satisfied, OracleSatisfied(db, *q))
        << text << " seed " << GetParam();
    if (!result->satisfied) {
      ASSERT_TRUE(result->witness.has_value());
      EXPECT_TRUE(IsPossibleWorld(db, *result->witness)) << text;
      WorldView world = db.BaseView();
      for (PendingId id : *result->witness) {
        world.Activate(static_cast<TupleOwner>(id));
      }
      auto compiled = CompiledQuery::Compile(*q, &db.database());
      ASSERT_TRUE(compiled.ok());
      EXPECT_TRUE(compiled->Evaluate(world)) << text;
    }
  }
}

TEST_P(TractableTest, IndOnlyFragmentMatchesOracle) {
  BlockchainDatabase db =
      MakeInstance(GetParam() + 500, /*keys=*/false, /*inds=*/true);
  DcSatEngine engine(&db);
  const char* queries[] = {
      "q() :- R(x, y)",
      "q() :- S(x, y), R(x, z)",
      "q() :- S(3, y)",
      "[q(count()) :- S(x, y)] > 2",
      "[q(sum(y)) :- S(x, y)] >= 4",
  };
  for (const char* text : queries) {
    auto q = ParseDenialConstraint(text);
    ASSERT_TRUE(q.ok());
    auto result = engine.Check(*q);
    ASSERT_TRUE(result.ok()) << text;
    EXPECT_EQ(result->stats.algorithm_used, DcSatAlgorithm::kTractable)
        << text;
    EXPECT_EQ(result->satisfied, OracleSatisfied(db, *q))
        << text << " seed " << GetParam();
  }
}

TEST_P(TractableTest, FragmentsCanBeDisabled) {
  BlockchainDatabase db =
      MakeInstance(GetParam() + 900, /*keys=*/true, /*inds=*/false);
  DcSatEngine engine(&db);
  auto q = ParseDenialConstraint("q() :- R(x, y), S(x, y)");
  ASSERT_TRUE(q.ok());
  DcSatOptions options;
  options.use_tractable_fragments = false;
  auto general = engine.Check(*q, options);
  ASSERT_TRUE(general.ok());
  EXPECT_NE(general->stats.algorithm_used, DcSatAlgorithm::kTractable);
  auto fast = engine.Check(*q);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast->satisfied, general->satisfied);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TractableTest,
                         ::testing::Range<std::uint64_t>(0, 25));

TEST(TractableTest, OutsideFragmentAbstains) {
  // Both keys and INDs: CoNP-complete in general; the fast path must not
  // engage.
  BlockchainDatabase db = MakeInstance(7, /*keys=*/true, /*inds=*/true);
  DcSatEngine engine(&db);
  auto q = ParseDenialConstraint("q() :- R(x, y)");
  ASSERT_TRUE(q.ok());
  auto result = engine.Check(*q);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->stats.algorithm_used, DcSatAlgorithm::kTractable);
}

TEST(TractableTest, FdOnlySkipsNegationAndAggregatesWithKeys) {
  BlockchainDatabase db = MakeInstance(8, /*keys=*/true, /*inds=*/false);
  DcSatEngine engine(&db);
  auto negated = ParseDenialConstraint("q() :- R(x, y), not S(x, y)");
  ASSERT_TRUE(negated.ok());
  auto result = engine.Check(*negated);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.algorithm_used, DcSatAlgorithm::kExhaustive);

  auto aggregate = ParseDenialConstraint("[q(count()) :- R(x, y)] > 1");
  ASSERT_TRUE(aggregate.ok());
  result = engine.Check(*aggregate);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.algorithm_used, DcSatAlgorithm::kNaive);
}

TEST(TractableTest, ExplicitTractableRequestRejected) {
  BlockchainDatabase db = MakeInstance(9, true, false);
  DcSatEngine engine(&db);
  auto q = ParseDenialConstraint("q() :- R(x, y)");
  ASSERT_TRUE(q.ok());
  DcSatOptions options;
  options.algorithm = DcSatAlgorithm::kTractable;
  EXPECT_EQ(engine.Check(*q, options).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace bcdb
