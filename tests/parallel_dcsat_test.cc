#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/dcsat.h"
#include "core/monitor.h"
#include "core/possible_worlds.h"
#include "query/analysis.h"
#include "query/compiled_query.h"
#include "query/parser.h"
#include "running_example.h"
#include "util/rng.h"

namespace bcdb {
namespace {

using testing_fixtures::MakeRunningExample;
using Verdict = ConstraintMonitor::Verdict;

/// Randomized parallel/serial equivalence: the parallel component search
/// must return the same `satisfied` flag AND the same witness as the serial
/// reference at every thread count (the lowest-violating-component rule),
/// and concurrent const-path callers must not interfere.

Catalog MakeCatalog() {
  Catalog catalog;
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "R", {Attribute{"a", ValueType::kInt, false},
                            Attribute{"b", ValueType::kInt, false}}))
                  .ok());
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "S", {Attribute{"x", ValueType::kInt, false},
                            Attribute{"y", ValueType::kInt, true}}))
                  .ok());
  return catalog;
}

/// Random instance in the dcsat_oracle_test mold: R-key FD (+ optional IND
/// S.x ⊆ R.a) and a handful of colliding pending transactions, so seeds
/// produce a healthy mix of sat and unsat cases with several components.
BlockchainDatabase MakeRandomInstance(std::uint64_t seed, bool with_ind) {
  Xoshiro256 rng(seed);
  Catalog catalog = MakeCatalog();
  ConstraintSet constraints;
  auto key = FunctionalDependency::Key(catalog, "R", {"a"});
  EXPECT_TRUE(key.ok());
  constraints.AddFd(std::move(*key));
  if (with_ind) {
    auto ind = InclusionDependency::Create(catalog, "S", {"x"}, "R", {"a"});
    EXPECT_TRUE(ind.ok());
    constraints.AddInd(std::move(*ind));
  }
  auto db =
      BlockchainDatabase::Create(std::move(catalog), std::move(constraints));
  EXPECT_TRUE(db.ok());

  const std::size_t base_r = rng.NextBelow(3);
  for (std::size_t a = 0; a < base_r; ++a) {
    EXPECT_TRUE(db->InsertCurrent(
                      "R", Tuple({Value::Int(static_cast<std::int64_t>(a)),
                                  Value::Int(rng.NextInRange(0, 3))}))
                    .ok());
  }
  EXPECT_TRUE(db->ValidateCurrentState().ok());

  const std::size_t num_pending = 4 + rng.NextBelow(3);
  for (std::size_t t = 0; t < num_pending; ++t) {
    Transaction txn("P" + std::to_string(t));
    const std::size_t num_tuples = 1 + rng.NextBelow(2);
    for (std::size_t i = 0; i < num_tuples; ++i) {
      if (rng.NextBool(0.5)) {
        txn.Add("R", Tuple({Value::Int(rng.NextInRange(0, 5)),
                            Value::Int(rng.NextInRange(0, 3))}));
      } else {
        txn.Add("S", Tuple({Value::Int(rng.NextInRange(0, 5)),
                            Value::Int(rng.NextInRange(0, 3))}));
      }
    }
    EXPECT_TRUE(db->AddPending(txn).ok());
  }
  return std::move(*db);
}

const char* kConnectedMonotoneQueries[] = {
    "q() :- R(x, y)",
    "q() :- R(0, y)",
    "q() :- R(x, 2)",
    "q() :- S(x, y)",
    "q() :- R(x, y), S(x, z)",
    "q() :- R(x, 1), S(x, 2)",
    "q() :- R(x, y), S(x, z), y < z",
    "q() :- R(2, y), S(2, z)",
};

class ParallelDcSatTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelDcSatTest, ParallelMatchesSerialIncludingWitness) {
  for (bool with_ind : {false, true}) {
    BlockchainDatabase db = MakeRandomInstance(GetParam(), with_ind);
    DcSatEngine engine(&db);
    for (const char* text : kConnectedMonotoneQueries) {
      auto q = ParseDenialConstraint(text);
      ASSERT_TRUE(q.ok()) << text;

      // Disable covers so multiple components actually get searched (with
      // covers on, constant-free queries already search everything, but the
      // constant-pinned ones collapse to one component).
      DcSatOptions serial;
      serial.algorithm = DcSatAlgorithm::kOpt;
      serial.use_covers = false;
      serial.num_threads = 1;
      auto serial_result = engine.Check(*q, serial);
      ASSERT_TRUE(serial_result.ok()) << text;

      for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
        DcSatOptions parallel = serial;
        parallel.num_threads = threads;
        auto parallel_result = engine.Check(*q, parallel);
        ASSERT_TRUE(parallel_result.ok()) << text;

        EXPECT_EQ(parallel_result->satisfied, serial_result->satisfied)
            << text << " seed " << GetParam() << " ind=" << with_ind
            << " threads=" << threads;
        // The witness must be bit-identical, not merely valid: the lowest
        // violating component wins regardless of task completion order.
        EXPECT_EQ(parallel_result->witness.has_value(),
                  serial_result->witness.has_value())
            << text << " seed " << GetParam();
        if (parallel_result->witness && serial_result->witness) {
          EXPECT_EQ(*parallel_result->witness, *serial_result->witness)
              << text << " seed " << GetParam() << " threads=" << threads;
        }

        // And it must denote a genuine violating possible world.
        if (parallel_result->witness) {
          EXPECT_TRUE(IsPossibleWorld(db, *parallel_result->witness)) << text;
          WorldView world = db.BaseView();
          for (PendingId id : *parallel_result->witness) {
            world.Activate(static_cast<TupleOwner>(id));
          }
          auto compiled = CompiledQuery::Compile(*q, &db.database());
          ASSERT_TRUE(compiled.ok());
          EXPECT_TRUE(compiled->Evaluate(world)) << text;
        }
      }
    }
  }
}

TEST_P(ParallelDcSatTest, ThreadCountZeroMeansHardwareConcurrency) {
  BlockchainDatabase db = MakeRandomInstance(GetParam(), true);
  DcSatEngine engine(&db);
  auto q = ParseDenialConstraint("q() :- R(x, y), S(x, z)");
  ASSERT_TRUE(q.ok());

  DcSatOptions serial;
  serial.algorithm = DcSatAlgorithm::kOpt;
  serial.use_covers = false;
  serial.num_threads = 1;
  auto serial_result = engine.Check(*q, serial);
  ASSERT_TRUE(serial_result.ok());

  DcSatOptions hw_options = serial;
  hw_options.num_threads = 0;
  auto auto_result = engine.Check(*q, hw_options);
  ASSERT_TRUE(auto_result.ok());
  EXPECT_EQ(auto_result->satisfied, serial_result->satisfied);
  EXPECT_EQ(auto_result->witness, serial_result->witness);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDcSatTest,
                         ::testing::Range<std::uint64_t>(0, 60));

DenialConstraint Q(const std::string& text) {
  auto q = ParseDenialConstraint(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return *q;
}

TEST(ParallelMonitorTest, ParallelPollMatchesSerialVerdicts) {
  BlockchainDatabase serial_db = MakeRunningExample();
  BlockchainDatabase parallel_db = MakeRunningExample();
  // Per-member fan-out is what this test measures; template batching would
  // collapse the six same-class entries into one shared task.
  MonitorOptions no_batching;
  no_batching.enable_template_batching = false;
  ConstraintMonitor serial_monitor(&serial_db, no_batching);
  ConstraintMonitor parallel_monitor(&parallel_db, no_batching);
  const char* queries[] = {
      "q() :- TxOut(t, s, 'U8Pk', a)", "q() :- TxOut(t, s, 'U3Pk', a)",
      "q() :- TxOut(t, s, 'U9Pk', a)", "q() :- TxOut(t, s, 'U5Pk', a)",
      "q() :- TxOut(t, s, 'U1Pk', a)", "q() :- TxOut(t, s, 'U6Pk', a)"};
  std::vector<MonitorHandle> serial_handles;
  std::vector<MonitorHandle> parallel_handles;
  for (const char* text : queries) {
    auto serial_handle = serial_monitor.Add(text, Q(text));
    auto parallel_handle = parallel_monitor.Add(text, Q(text));
    ASSERT_TRUE(serial_handle.ok());
    ASSERT_TRUE(parallel_handle.ok());
    serial_handles.push_back(*serial_handle);
    parallel_handles.push_back(*parallel_handle);
  }

  DcSatOptions serial_options;
  serial_options.num_threads = 1;
  DcSatOptions parallel_options;
  parallel_options.num_threads = 4;
  ASSERT_TRUE(serial_monitor.Poll(serial_options).ok());
  auto parallel_changes = parallel_monitor.Poll(parallel_options);
  ASSERT_TRUE(parallel_changes.ok());
  for (std::size_t i = 0; i < serial_handles.size(); ++i) {
    EXPECT_EQ(parallel_monitor.verdict(parallel_handles[i]),
              serial_monitor.verdict(serial_handles[i]))
        << serial_monitor.label(serial_handles[i]);
  }
  EXPECT_EQ(parallel_monitor.poll_stats().threads_used, 4u);
  EXPECT_EQ(parallel_monitor.poll_stats().constraints_parallel, 6u);
  EXPECT_EQ(parallel_monitor.poll_stats().compile_cache_misses, 6u);

  // A quiescent re-poll reports nothing; with nothing mutated, the dirty
  // filter skips every constraint outright.
  auto again = parallel_monitor.Poll(parallel_options);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->empty());
  EXPECT_EQ(parallel_monitor.poll_stats().constraints_skipped, 6u);
  EXPECT_EQ(parallel_monitor.poll_stats().constraints_evaluated, 6u);
}

TEST(ParallelMonitorTest, ConcurrentPollsFromManyThreadsAreSafe) {
  // Poll serializes internally (poll_mutex_); this exercises that claim
  // under tsan with genuinely concurrent callers.
  BlockchainDatabase db = MakeRunningExample();
  ConstraintMonitor monitor(&db);
  auto u8 = monitor.Add("u8", Q("q() :- TxOut(t, s, 'U8Pk', a)"));
  auto u9 = monitor.Add("u9", Q("q() :- TxOut(t, s, 'U9Pk', a)"));
  ASSERT_TRUE(u8.ok());
  ASSERT_TRUE(u9.ok());
  ASSERT_TRUE(monitor.Poll().ok());

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      DcSatOptions options;
      options.num_threads = 2;
      for (int i = 0; i < 5; ++i) {
        auto changes = monitor.Poll(options);
        if (!changes.ok() || !changes->empty()) failed.store(true);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(monitor.verdict(*u8), Verdict::kPossible);
  EXPECT_EQ(monitor.verdict(*u9), Verdict::kImpossible);
}

TEST(ParallelMonitorTest, ConcurrentCheckPreparedCallersAgree) {
  // The const query path: many threads share one engine's caches and one
  // compiled query, each running a serial check. All must get the serial
  // answer with zero interference (the tsan job validates the "strictly
  // read-only after PrepareSteadyState" claim).
  BlockchainDatabase db = MakeRunningExample();
  DcSatEngine engine(&db);
  engine.PrepareSteadyState();
  auto q = ParseDenialConstraint("q() :- TxOut(t, s, 'U8Pk', a)");
  ASSERT_TRUE(q.ok());
  auto compiled = CompiledQuery::Compile(*q, &db.database());
  ASSERT_TRUE(compiled.ok());

  auto serial = engine.CheckPrepared(*q, *compiled);
  ASSERT_TRUE(serial.ok());

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10; ++i) {
        auto result = engine.CheckPrepared(*q, *compiled);
        if (!result.ok() || result->satisfied != serial->satisfied ||
            result->witness != serial->witness) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ParallelMonitorTest, CheckPreparedRejectsStaleCaches) {
  BlockchainDatabase db = MakeRunningExample();
  DcSatEngine engine(&db);
  engine.PrepareSteadyState();
  auto q = ParseDenialConstraint("q() :- TxOut(t, s, 'U8Pk', a)");
  ASSERT_TRUE(q.ok());
  auto compiled = CompiledQuery::Compile(*q, &db.database());
  ASSERT_TRUE(compiled.ok());
  ASSERT_TRUE(engine.CheckPrepared(*q, *compiled).ok());

  ASSERT_TRUE(db.DiscardPending(0).ok());  // Mutation → caches stale.
  EXPECT_FALSE(engine.CheckPrepared(*q, *compiled).ok());
  engine.PrepareSteadyState();
  auto fresh = CompiledQuery::Compile(*q, &db.database());
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(engine.CheckPrepared(*q, *fresh).ok());
}

}  // namespace
}  // namespace bcdb
