#include <gtest/gtest.h>

#include <cmath>

#include "core/possible_worlds.h"
#include "core/probability.h"
#include "query/parser.h"
#include "running_example.h"

namespace bcdb {
namespace {

using testing_fixtures::MakeRunningExample;

DenialConstraint Parse(const std::string& text) {
  auto q = ParseDenialConstraint(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return *q;
}

double Estimate(const BlockchainDatabase& db, const std::string& text,
                const InclusionModel& model, std::size_t samples = 2000,
                std::uint64_t seed = 42) {
  auto estimate =
      EstimateViolationProbability(db, Parse(text), model, samples, seed);
  EXPECT_TRUE(estimate.ok()) << estimate.status();
  return estimate->probability;
}

TEST(ProbabilityTest, SampledWorldsAreAlwaysPossible) {
  BlockchainDatabase db = MakeRunningExample();
  InclusionModel model;
  model.default_probability = 0.7;
  Xoshiro256 rng(7);
  for (int i = 0; i < 200; ++i) {
    const WorldView world = SampleWorld(db, model, rng);
    std::vector<PendingId> active;
    world.active_bits().ForEach([&](std::size_t id) { active.push_back(id); });
    ASSERT_TRUE(IsPossibleWorld(db, active)) << "sample " << i;
  }
}

TEST(ProbabilityTest, ZeroProbabilityFreezesTheBase) {
  BlockchainDatabase db = MakeRunningExample();
  InclusionModel model;
  model.default_probability = 0.0;
  // Pending-only outcome: never sampled.
  EXPECT_EQ(Estimate(db, "q() :- TxOut(t, s, 'U8Pk', a)", model), 0.0);
  // Base fact: always true.
  EXPECT_EQ(Estimate(db, "q() :- TxOut(t, s, 'U3Pk', a)", model), 1.0);
}

TEST(ProbabilityTest, ConflictRaceIsAFairCoin) {
  BlockchainDatabase db = MakeRunningExample();
  InclusionModel model;
  model.default_probability = 1.0;
  // With every transaction offered, T1 and T5 race for output (2,2) and the
  // shuffle decides: U5Pk (paid only by T1) is received iff T1 arrives
  // first — probability 1/2.
  const double p = Estimate(db, "q() :- TxOut(t, s, 'U5Pk', a)", model, 4000);
  EXPECT_NEAR(p, 0.5, 0.05);
  // U8Pk needs T4, which needs T2 (which needs T1's race win) and T3 — all
  // offered, so again exactly the race: 1/2.
  const double p8 = Estimate(db, "q() :- TxOut(t, s, 'U8Pk', a)", model, 4000);
  EXPECT_NEAR(p8, 0.5, 0.05);
  // U7Pk is paid by T4 (race won by T1) or T5 (race won by T5): certainty.
  EXPECT_EQ(Estimate(db, "q() :- TxOut(t, s, 'U7Pk', a)", model), 1.0);
}

TEST(ProbabilityTest, PerTransactionOverrides) {
  BlockchainDatabase db = MakeRunningExample();
  InclusionModel model;
  model.default_probability = 1.0;
  model.probability = {1.0, 1.0, 1.0, 1.0, 0.0};  // T5 never offered.
  EXPECT_EQ(Estimate(db, "q() :- TxOut(8, 1, 'U7Pk', a)", model), 0.0);
  EXPECT_EQ(Estimate(db, "q() :- TxOut(t, s, 'U8Pk', a)", model), 1.0);

  model.probability = {0.0, 1.0, 1.0, 1.0, 1.0};  // T1 never offered.
  // Without T1 there is no T2, hence no T4, hence no U8Pk.
  EXPECT_EQ(Estimate(db, "q() :- TxOut(t, s, 'U8Pk', a)", model), 0.0);
}

TEST(ProbabilityTest, IndependentInclusionScales) {
  BlockchainDatabase db = MakeRunningExample();
  InclusionModel model;
  model.default_probability = 1.0;
  model.probability = {1.0, 1.0, 0.25, 1.0, 0.0};  // T3 at 1/4, no T5.
  // U8Pk needs T4 which needs T2 (sure, T5 absent) and T3 (1/4).
  const double p = Estimate(db, "q() :- TxOut(t, s, 'U8Pk', a)", model, 4000);
  EXPECT_NEAR(p, 0.25, 0.05);
}

TEST(ProbabilityTest, DeterministicForSeed) {
  BlockchainDatabase db = MakeRunningExample();
  InclusionModel model;
  model.default_probability = 0.6;
  const DenialConstraint q = Parse("q() :- TxOut(t, s, 'U8Pk', a)");
  auto a = EstimateViolationProbability(db, q, model, 500, 99);
  auto b = EstimateViolationProbability(db, q, model, 500, 99);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->violations, b->violations);

  auto c = EstimateViolationProbability(db, q, model, 500, 100);
  ASSERT_TRUE(c.ok());
  // Different seed: almost surely a different count (not guaranteed, but
  // with 500 samples the probability of equality is negligible for p≈0.1).
  EXPECT_TRUE(a->violations != c->violations || a->violations == 0);
}

TEST(ProbabilityTest, EstimateFieldsConsistent) {
  BlockchainDatabase db = MakeRunningExample();
  InclusionModel model;
  auto estimate = EstimateViolationProbability(
      db, Parse("q() :- TxOut(t, s, 'U8Pk', a)"), model, 1000, 1);
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(estimate->samples, 1000u);
  EXPECT_DOUBLE_EQ(
      estimate->probability,
      static_cast<double>(estimate->violations) / 1000.0);
  EXPECT_GE(estimate->standard_error, 0.0);
  EXPECT_LE(estimate->standard_error, 0.5 / std::sqrt(1000.0) + 1e-12);
}

TEST(ProbabilityTest, RejectsZeroSamples) {
  BlockchainDatabase db = MakeRunningExample();
  EXPECT_FALSE(EstimateViolationProbability(
                   db, Parse("q() :- TxOut(t, s, 'U8Pk', a)"),
                   InclusionModel{}, 0, 1)
                   .ok());
}

}  // namespace
}  // namespace bcdb
