#include <gtest/gtest.h>

#include "bitcoin/chain.h"

namespace bcdb {
namespace bitcoin {
namespace {

BitcoinTransaction Payment(const OutPoint& src, const std::string& from,
                           Satoshi in_amount, const std::string& to,
                           Satoshi amount, Satoshi fee) {
  std::vector<TxOutput> outputs{TxOutput{to, amount}};
  const Satoshi change = in_amount - amount - fee;
  if (change > 0) outputs.push_back(TxOutput{from, change});
  return BitcoinTransaction(
      {TxInput{src, from, in_amount, SignatureFor(from)}}, outputs);
}

class ChainTest : public ::testing::Test {
 protected:
  /// Mines a block paying the subsidy to `miner`.
  BitcoinTransaction MineCoinbaseTo(const std::string& miner) {
    BitcoinTransaction cb =
        BitcoinTransaction::Coinbase(miner, kBlockReward, chain_.height() + 1);
    EXPECT_TRUE(chain_.MineAndAppend({cb}).ok());
    return cb;
  }

  Blockchain chain_;
};

TEST_F(ChainTest, GenesisOnly) {
  EXPECT_EQ(chain_.height(), 0u);
  EXPECT_TRUE(chain_.utxos().empty());
  EXPECT_EQ(chain_.Stats().blocks, 1u);
}

TEST_F(ChainTest, CoinbaseCreatesUtxo) {
  BitcoinTransaction cb = MineCoinbaseTo("AlicePk");
  EXPECT_EQ(chain_.height(), 1u);
  ASSERT_EQ(chain_.utxos().size(), 1u);
  const auto it = chain_.utxos().find(OutPoint{cb.txid(), 1});
  ASSERT_NE(it, chain_.utxos().end());
  EXPECT_EQ(it->second.pubkey, "AlicePk");
  EXPECT_EQ(it->second.amount, kBlockReward);
  EXPECT_TRUE(chain_.ContainsTransaction(cb.txid()));
}

TEST_F(ChainTest, SpendMovesFunds) {
  BitcoinTransaction cb = MineCoinbaseTo("AlicePk");
  BitcoinTransaction pay = Payment(OutPoint{cb.txid(), 1}, "AlicePk",
                                   kBlockReward, "BobPk", kCoin, 1000);
  ASSERT_TRUE(chain_.MineAndAppend({pay}).ok());
  // Alice's coinbase output is spent; Bob's and Alice's change exist.
  EXPECT_EQ(chain_.utxos().count(OutPoint{cb.txid(), 1}), 0u);
  EXPECT_EQ(chain_.utxos().count(OutPoint{pay.txid(), 1}), 1u);
  EXPECT_EQ(chain_.utxos().count(OutPoint{pay.txid(), 2}), 1u);
}

TEST_F(ChainTest, RejectsDoubleSpendAcrossBlocks) {
  BitcoinTransaction cb = MineCoinbaseTo("AlicePk");
  BitcoinTransaction pay1 = Payment(OutPoint{cb.txid(), 1}, "AlicePk",
                                    kBlockReward, "BobPk", kCoin, 1000);
  ASSERT_TRUE(chain_.MineAndAppend({pay1}).ok());
  BitcoinTransaction pay2 = Payment(OutPoint{cb.txid(), 1}, "AlicePk",
                                    kBlockReward, "CarolPk", kCoin, 1000);
  EXPECT_EQ(chain_.MineAndAppend({pay2}).code(), StatusCode::kNotFound);
}

TEST_F(ChainTest, RejectsDoubleSpendWithinBlock) {
  BitcoinTransaction cb = MineCoinbaseTo("AlicePk");
  BitcoinTransaction pay1 = Payment(OutPoint{cb.txid(), 1}, "AlicePk",
                                    kBlockReward, "BobPk", kCoin, 1000);
  BitcoinTransaction pay2 = Payment(OutPoint{cb.txid(), 1}, "AlicePk",
                                    kBlockReward, "CarolPk", kCoin, 1000);
  EXPECT_FALSE(chain_.MineAndAppend({pay1, pay2}).ok());
}

TEST_F(ChainTest, AllowsSpendingWithinSameBlock) {
  BitcoinTransaction cb = MineCoinbaseTo("AlicePk");
  BitcoinTransaction pay1 = Payment(OutPoint{cb.txid(), 1}, "AlicePk",
                                    kBlockReward, "BobPk", kCoin, 1000);
  BitcoinTransaction pay2 = Payment(OutPoint{pay1.txid(), 1}, "BobPk", kCoin,
                                    "CarolPk", kCoin / 2, 1000);
  EXPECT_TRUE(chain_.MineAndAppend({pay1, pay2}).ok());
}

TEST_F(ChainTest, RejectsWrongOwnerOrAmount) {
  BitcoinTransaction cb = MineCoinbaseTo("AlicePk");
  // Wrong claimed amount.
  BitcoinTransaction bad_amount = Payment(
      OutPoint{cb.txid(), 1}, "AlicePk", kBlockReward - 5, "BobPk", kCoin, 0);
  EXPECT_FALSE(chain_.MineAndAppend({bad_amount}).ok());
  // Wrong claimed owner.
  BitcoinTransaction bad_owner = Payment(OutPoint{cb.txid(), 1}, "EvePk",
                                         kBlockReward, "BobPk", kCoin, 1000);
  EXPECT_FALSE(chain_.MineAndAppend({bad_owner}).ok());
}

TEST_F(ChainTest, RejectsBadSignature) {
  BitcoinTransaction cb = MineCoinbaseTo("AlicePk");
  BitcoinTransaction forged(
      {TxInput{OutPoint{cb.txid(), 1}, "AlicePk", kBlockReward, "EveSig"}},
      {TxOutput{"EvePk", kBlockReward}});
  EXPECT_FALSE(chain_.MineAndAppend({forged}).ok());
}

TEST_F(ChainTest, RejectsOverspend) {
  BitcoinTransaction cb = MineCoinbaseTo("AlicePk");
  BitcoinTransaction overspend(
      {TxInput{OutPoint{cb.txid(), 1}, "AlicePk", kBlockReward,
               SignatureFor("AlicePk")}},
      {TxOutput{"BobPk", kBlockReward + 1}});
  EXPECT_FALSE(chain_.MineAndAppend({overspend}).ok());
}

TEST_F(ChainTest, RejectsExcessiveCoinbase) {
  BitcoinTransaction greedy = BitcoinTransaction::Coinbase(
      "MinerPk", kBlockReward + 1, chain_.height() + 1);
  EXPECT_EQ(chain_.MineAndAppend({greedy}).code(),
            StatusCode::kConstraintViolation);
}

TEST_F(ChainTest, CoinbaseMayCollectFees) {
  BitcoinTransaction cb = MineCoinbaseTo("AlicePk");
  BitcoinTransaction pay = Payment(OutPoint{cb.txid(), 1}, "AlicePk",
                                   kBlockReward, "BobPk", kCoin, 5000);
  BitcoinTransaction cb2 = BitcoinTransaction::Coinbase(
      "MinerPk", kBlockReward + 5000, chain_.height() + 1);
  EXPECT_TRUE(chain_.MineAndAppend({cb2, pay}).ok());
}

TEST_F(ChainTest, RejectsMisplacedCoinbase) {
  BitcoinTransaction cb = MineCoinbaseTo("AlicePk");
  BitcoinTransaction pay = Payment(OutPoint{cb.txid(), 1}, "AlicePk",
                                   kBlockReward, "BobPk", kCoin, 1000);
  BitcoinTransaction cb2 =
      BitcoinTransaction::Coinbase("MinerPk", kBlockReward, 2);
  EXPECT_FALSE(chain_.MineAndAppend({pay, cb2}).ok());
}

TEST_F(ChainTest, RejectsBadLinkage) {
  Block detached(5, 12345, {});
  EXPECT_FALSE(chain_.AppendBlock(detached).ok());
  Block wrong_height(2, chain_.tip().hash(), {});
  EXPECT_FALSE(chain_.AppendBlock(wrong_height).ok());
}

TEST_F(ChainTest, StatsAccumulate) {
  MineCoinbaseTo("AlicePk");
  MineCoinbaseTo("BobPk");
  const ChainStats stats = chain_.Stats();
  EXPECT_EQ(stats.blocks, 3u);  // Genesis + 2.
  EXPECT_EQ(stats.transactions, 2u);
  EXPECT_EQ(stats.inputs, 0u);
  EXPECT_EQ(stats.outputs, 2u);
}

TEST_F(ChainTest, AcceptBlockExtendsTipAndRejectsMalformedOffers) {
  BitcoinTransaction cb =
      BitcoinTransaction::Coinbase("AlicePk", kBlockReward, 1);
  const Block block(1, chain_.tip().hash(), {cb});
  auto update = chain_.AcceptBlock(block);
  ASSERT_TRUE(update.ok()) << update.status();
  EXPECT_EQ(update->kind, ChainUpdate::Kind::kExtendedTip);
  EXPECT_EQ(update->connected_blocks, 1u);
  EXPECT_TRUE(update->disconnected.empty());
  EXPECT_EQ(chain_.height(), 1u);

  // Re-offering a known block, linking to an unknown parent, and a height
  // that does not follow the parent are all typed rejections.
  EXPECT_EQ(chain_.AcceptBlock(block).status().code(),
            StatusCode::kAlreadyExists);
  const Block orphan(
      2, /*prev_hash=*/0x1234abcd,
      {BitcoinTransaction::Coinbase("BobPk", kBlockReward, 2)});
  EXPECT_EQ(chain_.AcceptBlock(orphan).status().code(), StatusCode::kNotFound);
  const Block skewed(
      7, chain_.tip().hash(),
      {BitcoinTransaction::Coinbase("BobPk", kBlockReward, 7)});
  EXPECT_EQ(chain_.AcceptBlock(skewed).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ChainTest, EqualLengthCompetitorStaysSideChain) {
  MineCoinbaseTo("AlicePk");
  const Block rival(
      1, chain_.blocks()[0].hash(),
      {BitcoinTransaction::Coinbase("RivalPk", kBlockReward, 1)});
  auto update = chain_.AcceptBlock(rival);
  ASSERT_TRUE(update.ok()) << update.status();
  EXPECT_EQ(update->kind, ChainUpdate::Kind::kSideChain);
  // First-seen wins: the active chain is untouched but the rival is known.
  EXPECT_EQ(chain_.height(), 1u);
  EXPECT_NE(chain_.tip().hash(), rival.hash());
  EXPECT_NE(chain_.FindBlock(rival.hash()), nullptr);
  EXPECT_EQ(chain_.utxos().count(OutPoint{rival.transactions()[0].txid(), 1}),
            0u);
}

TEST_F(ChainTest, LongerBranchReorgsAndReportsDisconnections) {
  // Active: A1 (coinbase -> Alice), A2 (coinbase + Alice pays Bob).
  BitcoinTransaction cb_a1 = MineCoinbaseTo("AlicePk");
  BitcoinTransaction cb_a2 =
      BitcoinTransaction::Coinbase("AlicePk", kBlockReward, 2);
  BitcoinTransaction pay = Payment(OutPoint{cb_a1.txid(), 1}, "AlicePk",
                                   kBlockReward, "BobPk", kCoin, 0);
  ASSERT_TRUE(chain_.MineAndAppend({cb_a2, pay}).ok());
  ASSERT_TRUE(chain_.ContainsTransaction(pay.txid()));

  // Rival branch from genesis: three coinbase-only blocks.
  std::vector<Block> branch;
  BlockHash prev = chain_.blocks()[0].hash();
  for (std::uint64_t h = 1; h <= 3; ++h) {
    branch.emplace_back(
        h, prev,
        std::vector<BitcoinTransaction>{
            BitcoinTransaction::Coinbase("RivalPk", kBlockReward, h)});
    prev = branch.back().hash();
  }
  auto side1 = chain_.AcceptBlock(branch[0]);
  ASSERT_TRUE(side1.ok());
  EXPECT_EQ(side1->kind, ChainUpdate::Kind::kSideChain);
  auto side2 = chain_.AcceptBlock(branch[1]);
  ASSERT_TRUE(side2.ok());
  EXPECT_EQ(side2->kind, ChainUpdate::Kind::kSideChain);

  auto reorg = chain_.AcceptBlock(branch[2]);
  ASSERT_TRUE(reorg.ok()) << reorg.status();
  EXPECT_EQ(reorg->kind, ChainUpdate::Kind::kReorged);
  EXPECT_EQ(reorg->disconnected_blocks, 2u);
  EXPECT_EQ(reorg->connected_blocks, 3u);
  // Disconnected transactions come back in block order, coinbases included.
  ASSERT_EQ(reorg->disconnected.size(), 3u);
  EXPECT_EQ(reorg->disconnected[0].txid(), cb_a1.txid());
  EXPECT_EQ(reorg->disconnected[1].txid(), cb_a2.txid());
  EXPECT_EQ(reorg->disconnected[2].txid(), pay.txid());

  // The node now follows the rival branch: rolled-back confirmations are
  // gone and the UTXO set is the branch's.
  EXPECT_EQ(chain_.height(), 3u);
  EXPECT_EQ(chain_.tip().hash(), branch[2].hash());
  EXPECT_FALSE(chain_.ContainsTransaction(pay.txid()));
  EXPECT_FALSE(chain_.ContainsTransaction(cb_a1.txid()));
  EXPECT_EQ(chain_.utxos().size(), 3u);
  for (const Block& block : branch) {
    EXPECT_TRUE(chain_.ContainsTransaction(block.transactions()[0].txid()));
    EXPECT_EQ(
        chain_.utxos().count(OutPoint{block.transactions()[0].txid(), 1}),
        1u);
  }
}

TEST_F(ChainTest, InvalidLongerBranchLeavesActiveChainUntouched) {
  BitcoinTransaction cb_a1 = MineCoinbaseTo("AlicePk");
  // Rival branch whose second block overspends a nonexistent output; it is
  // only fully validated at adoption time, which must fail atomically.
  const BitcoinTransaction rival_cb =
      BitcoinTransaction::Coinbase("RivalPk", kBlockReward, 1);
  const Block b1(1, chain_.blocks()[0].hash(), {rival_cb});
  const BitcoinTransaction bogus =
      Payment(OutPoint{0x77777, 1}, "NoonePk", kCoin, "BobPk", kCoin, 0);
  const Block b2(2, b1.hash(), {bogus});
  ASSERT_TRUE(chain_.AcceptBlock(b1).ok());
  EXPECT_FALSE(chain_.AcceptBlock(b2).ok());
  EXPECT_EQ(chain_.height(), 1u);
  EXPECT_EQ(chain_.tip().hash(), chain_.blocks()[1].hash());
  EXPECT_TRUE(chain_.ContainsTransaction(cb_a1.txid()));
  EXPECT_EQ(chain_.utxos().count(OutPoint{cb_a1.txid(), 1}), 1u);
}

TEST_F(ChainTest, ReorgReconfirmsSharedTransactions) {
  // The rival branch confirms the same payment the active chain had: after
  // the switch it must still count as confirmed (replay-from-genesis sees
  // it fresh on the candidate chain).
  BitcoinTransaction cb_a1 = MineCoinbaseTo("AlicePk");
  BitcoinTransaction pay = Payment(OutPoint{cb_a1.txid(), 1}, "AlicePk",
                                   kBlockReward, "BobPk", kCoin, 0);
  ASSERT_TRUE(chain_.MineAndAppend({pay}).ok());

  std::vector<Block> branch;
  branch.emplace_back(2, chain_.blocks()[1].hash(),
                      std::vector<BitcoinTransaction>{
                          BitcoinTransaction::Coinbase("RivalPk",
                                                       kBlockReward, 2),
                          pay});
  branch.emplace_back(3, branch.back().hash(),
                      std::vector<BitcoinTransaction>{
                          BitcoinTransaction::Coinbase("RivalPk",
                                                       kBlockReward, 3)});
  ASSERT_TRUE(chain_.AcceptBlock(branch[0]).ok());
  auto reorg = chain_.AcceptBlock(branch[1]);
  ASSERT_TRUE(reorg.ok()) << reorg.status();
  EXPECT_EQ(reorg->kind, ChainUpdate::Kind::kReorged);
  // The payment was disconnected with its old block but re-confirmed on
  // the new branch.
  EXPECT_TRUE(chain_.ContainsTransaction(pay.txid()));
  EXPECT_TRUE(chain_.ContainsTransaction(cb_a1.txid()));
  EXPECT_EQ(chain_.utxos().count(OutPoint{pay.txid(), 1}), 1u);
}

}  // namespace
}  // namespace bitcoin
}  // namespace bcdb
