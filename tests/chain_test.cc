#include <gtest/gtest.h>

#include "bitcoin/chain.h"

namespace bcdb {
namespace bitcoin {
namespace {

BitcoinTransaction Payment(const OutPoint& src, const std::string& from,
                           Satoshi in_amount, const std::string& to,
                           Satoshi amount, Satoshi fee) {
  std::vector<TxOutput> outputs{TxOutput{to, amount}};
  const Satoshi change = in_amount - amount - fee;
  if (change > 0) outputs.push_back(TxOutput{from, change});
  return BitcoinTransaction(
      {TxInput{src, from, in_amount, SignatureFor(from)}}, outputs);
}

class ChainTest : public ::testing::Test {
 protected:
  /// Mines a block paying the subsidy to `miner`.
  BitcoinTransaction MineCoinbaseTo(const std::string& miner) {
    BitcoinTransaction cb =
        BitcoinTransaction::Coinbase(miner, kBlockReward, chain_.height() + 1);
    EXPECT_TRUE(chain_.MineAndAppend({cb}).ok());
    return cb;
  }

  Blockchain chain_;
};

TEST_F(ChainTest, GenesisOnly) {
  EXPECT_EQ(chain_.height(), 0u);
  EXPECT_TRUE(chain_.utxos().empty());
  EXPECT_EQ(chain_.Stats().blocks, 1u);
}

TEST_F(ChainTest, CoinbaseCreatesUtxo) {
  BitcoinTransaction cb = MineCoinbaseTo("AlicePk");
  EXPECT_EQ(chain_.height(), 1u);
  ASSERT_EQ(chain_.utxos().size(), 1u);
  const auto it = chain_.utxos().find(OutPoint{cb.txid(), 1});
  ASSERT_NE(it, chain_.utxos().end());
  EXPECT_EQ(it->second.pubkey, "AlicePk");
  EXPECT_EQ(it->second.amount, kBlockReward);
  EXPECT_TRUE(chain_.ContainsTransaction(cb.txid()));
}

TEST_F(ChainTest, SpendMovesFunds) {
  BitcoinTransaction cb = MineCoinbaseTo("AlicePk");
  BitcoinTransaction pay = Payment(OutPoint{cb.txid(), 1}, "AlicePk",
                                   kBlockReward, "BobPk", kCoin, 1000);
  ASSERT_TRUE(chain_.MineAndAppend({pay}).ok());
  // Alice's coinbase output is spent; Bob's and Alice's change exist.
  EXPECT_EQ(chain_.utxos().count(OutPoint{cb.txid(), 1}), 0u);
  EXPECT_EQ(chain_.utxos().count(OutPoint{pay.txid(), 1}), 1u);
  EXPECT_EQ(chain_.utxos().count(OutPoint{pay.txid(), 2}), 1u);
}

TEST_F(ChainTest, RejectsDoubleSpendAcrossBlocks) {
  BitcoinTransaction cb = MineCoinbaseTo("AlicePk");
  BitcoinTransaction pay1 = Payment(OutPoint{cb.txid(), 1}, "AlicePk",
                                    kBlockReward, "BobPk", kCoin, 1000);
  ASSERT_TRUE(chain_.MineAndAppend({pay1}).ok());
  BitcoinTransaction pay2 = Payment(OutPoint{cb.txid(), 1}, "AlicePk",
                                    kBlockReward, "CarolPk", kCoin, 1000);
  EXPECT_EQ(chain_.MineAndAppend({pay2}).code(), StatusCode::kNotFound);
}

TEST_F(ChainTest, RejectsDoubleSpendWithinBlock) {
  BitcoinTransaction cb = MineCoinbaseTo("AlicePk");
  BitcoinTransaction pay1 = Payment(OutPoint{cb.txid(), 1}, "AlicePk",
                                    kBlockReward, "BobPk", kCoin, 1000);
  BitcoinTransaction pay2 = Payment(OutPoint{cb.txid(), 1}, "AlicePk",
                                    kBlockReward, "CarolPk", kCoin, 1000);
  EXPECT_FALSE(chain_.MineAndAppend({pay1, pay2}).ok());
}

TEST_F(ChainTest, AllowsSpendingWithinSameBlock) {
  BitcoinTransaction cb = MineCoinbaseTo("AlicePk");
  BitcoinTransaction pay1 = Payment(OutPoint{cb.txid(), 1}, "AlicePk",
                                    kBlockReward, "BobPk", kCoin, 1000);
  BitcoinTransaction pay2 = Payment(OutPoint{pay1.txid(), 1}, "BobPk", kCoin,
                                    "CarolPk", kCoin / 2, 1000);
  EXPECT_TRUE(chain_.MineAndAppend({pay1, pay2}).ok());
}

TEST_F(ChainTest, RejectsWrongOwnerOrAmount) {
  BitcoinTransaction cb = MineCoinbaseTo("AlicePk");
  // Wrong claimed amount.
  BitcoinTransaction bad_amount = Payment(
      OutPoint{cb.txid(), 1}, "AlicePk", kBlockReward - 5, "BobPk", kCoin, 0);
  EXPECT_FALSE(chain_.MineAndAppend({bad_amount}).ok());
  // Wrong claimed owner.
  BitcoinTransaction bad_owner = Payment(OutPoint{cb.txid(), 1}, "EvePk",
                                         kBlockReward, "BobPk", kCoin, 1000);
  EXPECT_FALSE(chain_.MineAndAppend({bad_owner}).ok());
}

TEST_F(ChainTest, RejectsBadSignature) {
  BitcoinTransaction cb = MineCoinbaseTo("AlicePk");
  BitcoinTransaction forged(
      {TxInput{OutPoint{cb.txid(), 1}, "AlicePk", kBlockReward, "EveSig"}},
      {TxOutput{"EvePk", kBlockReward}});
  EXPECT_FALSE(chain_.MineAndAppend({forged}).ok());
}

TEST_F(ChainTest, RejectsOverspend) {
  BitcoinTransaction cb = MineCoinbaseTo("AlicePk");
  BitcoinTransaction overspend(
      {TxInput{OutPoint{cb.txid(), 1}, "AlicePk", kBlockReward,
               SignatureFor("AlicePk")}},
      {TxOutput{"BobPk", kBlockReward + 1}});
  EXPECT_FALSE(chain_.MineAndAppend({overspend}).ok());
}

TEST_F(ChainTest, RejectsExcessiveCoinbase) {
  BitcoinTransaction greedy = BitcoinTransaction::Coinbase(
      "MinerPk", kBlockReward + 1, chain_.height() + 1);
  EXPECT_EQ(chain_.MineAndAppend({greedy}).code(),
            StatusCode::kConstraintViolation);
}

TEST_F(ChainTest, CoinbaseMayCollectFees) {
  BitcoinTransaction cb = MineCoinbaseTo("AlicePk");
  BitcoinTransaction pay = Payment(OutPoint{cb.txid(), 1}, "AlicePk",
                                   kBlockReward, "BobPk", kCoin, 5000);
  BitcoinTransaction cb2 = BitcoinTransaction::Coinbase(
      "MinerPk", kBlockReward + 5000, chain_.height() + 1);
  EXPECT_TRUE(chain_.MineAndAppend({cb2, pay}).ok());
}

TEST_F(ChainTest, RejectsMisplacedCoinbase) {
  BitcoinTransaction cb = MineCoinbaseTo("AlicePk");
  BitcoinTransaction pay = Payment(OutPoint{cb.txid(), 1}, "AlicePk",
                                   kBlockReward, "BobPk", kCoin, 1000);
  BitcoinTransaction cb2 =
      BitcoinTransaction::Coinbase("MinerPk", kBlockReward, 2);
  EXPECT_FALSE(chain_.MineAndAppend({pay, cb2}).ok());
}

TEST_F(ChainTest, RejectsBadLinkage) {
  Block detached(5, 12345, {});
  EXPECT_FALSE(chain_.AppendBlock(detached).ok());
  Block wrong_height(2, chain_.tip().hash(), {});
  EXPECT_FALSE(chain_.AppendBlock(wrong_height).ok());
}

TEST_F(ChainTest, StatsAccumulate) {
  MineCoinbaseTo("AlicePk");
  MineCoinbaseTo("BobPk");
  const ChainStats stats = chain_.Stats();
  EXPECT_EQ(stats.blocks, 3u);  // Genesis + 2.
  EXPECT_EQ(stats.transactions, 2u);
  EXPECT_EQ(stats.inputs, 0u);
  EXPECT_EQ(stats.outputs, 2u);
}

}  // namespace
}  // namespace bitcoin
}  // namespace bcdb
