#include <gtest/gtest.h>

#include "relational/database.h"
#include "relational/relation.h"

namespace bcdb {
namespace {

Catalog MakeCatalog() {
  Catalog catalog;
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "R", {Attribute{"a", ValueType::kInt, false},
                            Attribute{"b", ValueType::kString, false}}))
                  .ok());
  return catalog;
}

Tuple T(std::int64_t a, const std::string& b) {
  return Tuple({Value::Int(a), Value::Str(b)});
}

TEST(RelationTest, InsertDeduplicates) {
  Database db(MakeCatalog());
  Relation& rel = db.relation(0);
  const TupleId id1 = rel.Insert(T(1, "x"), kBaseOwner);
  const TupleId id2 = rel.Insert(T(1, "x"), kBaseOwner);
  EXPECT_EQ(id1, id2);
  EXPECT_EQ(rel.num_tuples(), 1u);
}

TEST(RelationTest, VisibilityFollowsOwners) {
  Database db(MakeCatalog());
  Relation& rel = db.relation(0);
  const TupleOwner t0 = db.RegisterOwner();
  const TupleOwner t1 = db.RegisterOwner();
  rel.Insert(T(1, "base"), kBaseOwner);
  rel.Insert(T(2, "pending0"), t0);
  rel.Insert(T(3, "pending1"), t1);

  WorldView base = db.BaseView();
  EXPECT_TRUE(rel.ContainsVisible(T(1, "base"), base));
  EXPECT_FALSE(rel.ContainsVisible(T(2, "pending0"), base));
  EXPECT_EQ(rel.CountVisible(base), 1u);

  WorldView with_t0 = db.BaseView();
  with_t0.Activate(t0);
  EXPECT_TRUE(rel.ContainsVisible(T(2, "pending0"), with_t0));
  EXPECT_FALSE(rel.ContainsVisible(T(3, "pending1"), with_t0));
  EXPECT_EQ(rel.CountVisible(with_t0), 2u);

  EXPECT_EQ(rel.CountVisible(db.FullView()), 3u);
}

TEST(RelationTest, SharedTupleVisibleThroughEitherOwner) {
  Database db(MakeCatalog());
  Relation& rel = db.relation(0);
  const TupleOwner t0 = db.RegisterOwner();
  // Same tuple contributed by base and by a pending transaction.
  rel.Insert(T(1, "x"), kBaseOwner);
  rel.Insert(T(1, "x"), t0);
  EXPECT_EQ(rel.num_tuples(), 1u);
  EXPECT_TRUE(rel.ContainsVisible(T(1, "x"), db.BaseView()));
  EXPECT_EQ(rel.owners(0).size(), 2u);
}

TEST(RelationTest, PromoteOwnerMakesTuplesBase) {
  Database db(MakeCatalog());
  Relation& rel = db.relation(0);
  const TupleOwner t0 = db.RegisterOwner();
  rel.Insert(T(5, "p"), t0);
  EXPECT_FALSE(rel.ContainsVisible(T(5, "p"), db.BaseView()));
  rel.PromoteOwner(t0);
  EXPECT_TRUE(rel.ContainsVisible(T(5, "p"), db.BaseView()));
  EXPECT_TRUE(rel.TuplesOwnedBy(t0).empty());
}

TEST(RelationTest, DropOwnerHidesTuples) {
  Database db(MakeCatalog());
  Relation& rel = db.relation(0);
  const TupleOwner t0 = db.RegisterOwner();
  rel.Insert(T(5, "p"), t0);
  rel.DropOwner(t0);
  EXPECT_FALSE(rel.ContainsVisible(T(5, "p"), db.FullView()));
  EXPECT_EQ(rel.num_tuples(), 1u);  // Storage retained, invisible.
}

TEST(RelationTest, TuplesOwnedBy) {
  Database db(MakeCatalog());
  Relation& rel = db.relation(0);
  const TupleOwner t0 = db.RegisterOwner();
  rel.Insert(T(1, "a"), t0);
  rel.Insert(T(2, "b"), t0);
  EXPECT_EQ(rel.TuplesOwnedBy(t0).size(), 2u);
  EXPECT_TRUE(rel.TuplesOwnedBy(kBaseOwner).empty());
  EXPECT_TRUE(rel.TuplesOwnedBy(99).empty());
}

TEST(RelationTest, IndexLookup) {
  Database db(MakeCatalog());
  Relation& rel = db.relation(0);
  rel.Insert(T(1, "x"), kBaseOwner);
  rel.Insert(T(1, "y"), kBaseOwner);
  rel.Insert(T(2, "x"), kBaseOwner);
  const std::size_t idx = rel.GetOrBuildIndex({0});
  EXPECT_EQ(rel.IndexLookup(idx, Tuple({Value::Int(1)})).size(), 2u);
  EXPECT_EQ(rel.IndexLookup(idx, Tuple({Value::Int(2)})).size(), 1u);
  EXPECT_TRUE(rel.IndexLookup(idx, Tuple({Value::Int(3)})).empty());
}

TEST(RelationTest, IndexMaintainedAcrossInserts) {
  Database db(MakeCatalog());
  Relation& rel = db.relation(0);
  const std::size_t idx = rel.GetOrBuildIndex({1});
  rel.Insert(T(1, "k"), kBaseOwner);
  rel.Insert(T(2, "k"), kBaseOwner);
  EXPECT_EQ(rel.IndexLookup(idx, Tuple({Value::Str("k")})).size(), 2u);
}

TEST(RelationTest, SamePositionsReuseIndex) {
  Database db(MakeCatalog());
  Relation& rel = db.relation(0);
  EXPECT_EQ(rel.GetOrBuildIndex({0, 1}), rel.GetOrBuildIndex({0, 1}));
  EXPECT_NE(rel.GetOrBuildIndex({0}), rel.GetOrBuildIndex({1}));
}

TEST(DatabaseTest, InsertValidatesSchema) {
  Database db(MakeCatalog());
  EXPECT_TRUE(db.Insert("R", T(1, "a")).ok());
  EXPECT_FALSE(db.Insert("R", Tuple({Value::Int(1)})).ok());
  EXPECT_EQ(db.Insert("missing", T(1, "a")).code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, TotalTuples) {
  Database db(MakeCatalog());
  ASSERT_TRUE(db.Insert("R", T(1, "a")).ok());
  ASSERT_TRUE(db.Insert("R", T(2, "b")).ok());
  EXPECT_EQ(db.TotalTuples(), 2u);
}

TEST(WorldViewTest, ActivationBasics) {
  WorldView view = WorldView::BaseOnly(8);
  EXPECT_TRUE(view.IsActive(kBaseOwner));
  EXPECT_FALSE(view.IsActive(3));
  view.Activate(3);
  EXPECT_TRUE(view.IsActive(3));
  EXPECT_EQ(view.NumActive(), 1u);
  view.Deactivate(3);
  EXPECT_FALSE(view.IsActive(3));
}

TEST(WorldViewTest, AllPendingSeesEverything) {
  WorldView view = WorldView::AllPending(4);
  for (TupleOwner o = 0; o < 4; ++o) EXPECT_TRUE(view.IsActive(o));
}

}  // namespace
}  // namespace bcdb
