// Bitcoin-shaped block files: framing, content-addressed integrity, the
// export → load → rebuild pipeline, and durable dataset ingest.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bitcoin/block_file.h"
#include "bitcoin/generator.h"
#include "bitcoin/to_relational.h"
#include "storage/durable_store.h"
#include "storage_test_util.h"

namespace bcdb {
namespace {

using bitcoin::BitcoinTransaction;
using bitcoin::Block;
using bitcoin::BuildBlockchainDatabase;
using bitcoin::DecodeBlockPayload;
using bitcoin::EncodeBlockPayload;
using bitcoin::ExportNode;
using bitcoin::GeneratedWorkload;
using bitcoin::GeneratorParams;
using bitcoin::GenerateWorkload;
using bitcoin::LoadNode;
using bitcoin::MakeBitcoinCatalog;
using bitcoin::MakeBitcoinConstraints;
using bitcoin::ReadBlockFile;
using bitcoin::SimulatedNode;
using bitcoin::WriteBlockFile;
using storage::DurableStore;
using storage_test::ExpectEquivalent;
using storage_test::FlipByte;
using storage_test::ScratchDir;

GeneratorParams SmallParams() {
  GeneratorParams params;
  params.seed = 7;
  params.num_blocks = 6;
  params.num_users = 6;
  params.num_pending = 8;
  params.num_contradictions = 1;
  params.pending_chain_depth = 2;
  params.star_size = 2;
  params.rich_payments = 2;
  return params;
}

TEST(BlockFileTest, ExportLoadRoundTripsChainAndMempool) {
  StatusOr<GeneratedWorkload> workload = GenerateWorkload(SmallParams());
  ASSERT_TRUE(workload.ok()) << workload.status();
  const SimulatedNode& node = workload->node;

  ScratchDir dir;
  const std::string blocks = dir.Sub("blk00000.dat");
  const std::string mempool = dir.Sub("mempool.dat");
  ASSERT_TRUE(ExportNode(node, blocks, mempool).ok());

  StatusOr<SimulatedNode> loaded = LoadNode({blocks}, mempool);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->chain().blocks().size(), node.chain().blocks().size());
  EXPECT_EQ(loaded->chain().tip().hash(), node.chain().tip().hash());
  EXPECT_EQ(loaded->mempool().transactions().size(),
            node.mempool().transactions().size());

  // The relational image — the actual experimental input — is id-for-id
  // identical, so datasets rebuilt from block files feed the engines the
  // exact same D = (R, I, T).
  StatusOr<BlockchainDatabase> want = BuildBlockchainDatabase(node);
  ASSERT_TRUE(want.ok()) << want.status();
  StatusOr<BlockchainDatabase> got = BuildBlockchainDatabase(*loaded);
  ASSERT_TRUE(got.ok()) << got.status();
  ExpectEquivalent(*want, *got);
}

TEST(BlockFileTest, LoadValidatesLikeALiveChain) {
  StatusOr<GeneratedWorkload> workload = GenerateWorkload(SmallParams());
  ASSERT_TRUE(workload.ok());
  const std::vector<Block>& chain = workload->node.chain().blocks();
  ASSERT_GT(chain.size(), 3u);

  ScratchDir dir;
  // Blocks out of order: replay must reject the broken linkage.
  const std::string path = dir.Sub("disordered.dat");
  ASSERT_TRUE(
      WriteBlockFile(path, {chain[2], chain[1], chain[3]}).ok());
  EXPECT_FALSE(LoadNode({path}).ok());
}

TEST(BlockFileTest, LoadSpansMultipleFilesInOrder) {
  StatusOr<GeneratedWorkload> workload = GenerateWorkload(SmallParams());
  ASSERT_TRUE(workload.ok());
  const SimulatedNode& node = workload->node;
  const std::vector<Block>& chain = node.chain().blocks();
  const std::size_t mid = chain.size() / 2;

  ScratchDir dir;
  const std::string first = dir.Sub("blk00000.dat");
  const std::string second = dir.Sub("blk00001.dat");
  ASSERT_TRUE(WriteBlockFile(
                  first, std::vector<Block>(chain.begin() + 1,
                                            chain.begin() + mid))
                  .ok());
  ASSERT_TRUE(WriteBlockFile(
                  second, std::vector<Block>(chain.begin() + mid, chain.end()))
                  .ok());
  StatusOr<SimulatedNode> loaded = LoadNode({first, second});
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->chain().tip().hash(), node.chain().tip().hash());
}

TEST(BlockFileTest, DetectsCorruptionByRecomputedIds) {
  StatusOr<GeneratedWorkload> workload = GenerateWorkload(SmallParams());
  ASSERT_TRUE(workload.ok());
  const SimulatedNode& node = workload->node;

  ScratchDir dir;
  const std::string path = dir.Sub("blk.dat");
  ASSERT_TRUE(ExportNode(node, path, "").ok());
  const std::uint64_t size = storage_test::FileSize(path);

  // A flip anywhere breaks either the framing, a recomputed txid/block
  // hash, or chain validation.
  for (std::uint64_t offset = 3; offset < size; offset += size / 11) {
    const std::string corrupt = dir.Sub("corrupt.dat");
    std::filesystem::copy_file(path, corrupt,
                               std::filesystem::copy_options::overwrite_existing);
    FlipByte(corrupt, offset);
    bool failed = false;
    StatusOr<std::vector<Block>> blocks = ReadBlockFile(corrupt);
    if (!blocks.ok()) {
      failed = true;
    } else {
      SimulatedNode replayed;
      for (const Block& block : *blocks) {
        if (!replayed.ReceiveBlock(block).ok()) {
          failed = true;
          break;
        }
      }
    }
    EXPECT_TRUE(failed) << "undetected corruption at offset " << offset;
  }
}

TEST(BlockFileTest, ToleratesPreallocationPadding) {
  StatusOr<GeneratedWorkload> workload = GenerateWorkload(SmallParams());
  ASSERT_TRUE(workload.ok());

  ScratchDir dir;
  const std::string path = dir.Sub("padded.dat");
  ASSERT_TRUE(ExportNode(workload->node, path, "").ok());
  storage_test::AppendBytesToFile(path, std::string(64, '\0'));
  EXPECT_TRUE(ReadBlockFile(path).ok());

  storage_test::AppendBytesToFile(path, "junk");
  EXPECT_FALSE(ReadBlockFile(path).ok());
}

TEST(BlockFileTest, BlockPayloadRejectsTrailingBytes) {
  StatusOr<GeneratedWorkload> workload = GenerateWorkload(SmallParams());
  ASSERT_TRUE(workload.ok());
  const Block& block = workload->node.chain().blocks()[1];
  const std::string payload = EncodeBlockPayload(block);
  StatusOr<Block> decoded = DecodeBlockPayload(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->hash(), block.hash());
  EXPECT_FALSE(DecodeBlockPayload(payload + "x").ok());
  EXPECT_FALSE(
      DecodeBlockPayload(std::string_view(payload.data(), payload.size() - 1))
          .ok());
}

TEST(BlockFileTest, DurableIngestRecoversIdForId) {
  // Block files → node → durable BuildBlockchainDatabase → crash →
  // recover: the dataset pipeline with persistence in the loop.
  StatusOr<GeneratedWorkload> workload = GenerateWorkload(SmallParams());
  ASSERT_TRUE(workload.ok());
  const SimulatedNode& node = workload->node;

  ScratchDir dir;
  const std::string store_dir = dir.Sub("store");
  std::optional<BlockchainDatabase> want;
  {
    auto store = DurableStore::Open(store_dir, MakeBitcoinCatalog());
    ASSERT_TRUE(store.ok()) << store.status();
    // Recover positions a fresh store at seq 0; the empty bootstrap
    // database is discarded in favor of the ingest-built one (whose
    // mutation seqs also start at 0, so the WAL matches it exactly).
    auto bootstrap = (*store)->Recover(ConstraintSet{});
    ASSERT_TRUE(bootstrap.ok()) << bootstrap.status();
    ASSERT_EQ(bootstrap->version(), 0u);
    auto built = BuildBlockchainDatabase(node, store->get());
    ASSERT_TRUE(built.ok()) << built.status();
    want.emplace(std::move(*built));
    ASSERT_TRUE((*store)->Sync().ok());
    ASSERT_TRUE((*store)->status().ok());
  }
  auto store = DurableStore::Open(store_dir, MakeBitcoinCatalog());
  ASSERT_TRUE(store.ok());
  auto constraints = MakeBitcoinConstraints((*store)->catalog());
  ASSERT_TRUE(constraints.ok());
  auto recovered = (*store)->Recover(std::move(*constraints));
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ExpectEquivalent(*want, *recovered);
}

}  // namespace
}  // namespace bcdb
