#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/dcsat.h"
#include "core/monitor.h"
#include "query/parser.h"
#include "util/rng.h"

namespace bcdb {
namespace {

/// Differential testing of the *full-lifecycle* mutation model: randomized
/// interleavings of every mutation the database publishes — base inserts
/// (block confirmation), base retractions (reorged-away coinbases),
/// pending adds (mempool arrival), applies (confirmation), discards
/// (eviction / replace-by-fee), and restores (a reorg returning a confirmed
/// transaction to the mempool) — while a long-lived engine and monitor
/// patch their steady-state caches from the mutation-delta log. At every
/// step they must be bit-identical to a from-scratch build: same validity
/// bits, same adjacency, same conflict counts, same verdicts and witnesses.

Catalog MakeCatalog() {
  Catalog catalog;
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "R", {Attribute{"a", ValueType::kInt, false},
                            Attribute{"b", ValueType::kInt, false}}))
                  .ok());
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "S", {Attribute{"x", ValueType::kInt, false},
                            Attribute{"y", ValueType::kInt, true}}))
                  .ok());
  return catalog;
}

BlockchainDatabase MakeInstance(Xoshiro256& rng, bool with_ind) {
  Catalog catalog = MakeCatalog();
  ConstraintSet constraints;
  auto key = FunctionalDependency::Key(catalog, "R", {"a"});
  EXPECT_TRUE(key.ok());
  constraints.AddFd(std::move(*key));
  if (with_ind) {
    auto ind = InclusionDependency::Create(catalog, "S", {"x"}, "R", {"a"});
    EXPECT_TRUE(ind.ok());
    constraints.AddInd(std::move(*ind));
  }
  auto db =
      BlockchainDatabase::Create(std::move(catalog), std::move(constraints));
  EXPECT_TRUE(db.ok());

  const std::size_t base_r = rng.NextBelow(3);
  for (std::size_t a = 0; a < base_r; ++a) {
    EXPECT_TRUE(db->InsertCurrent(
                      "R", Tuple({Value::Int(static_cast<std::int64_t>(a)),
                                  Value::Int(rng.NextInRange(0, 3))}))
                    .ok());
  }
  EXPECT_TRUE(db->ValidateCurrentState().ok());
  return std::move(*db);
}

/// Small domains force frequent FD collisions — base inserts that
/// invalidate pending transactions, base retractions that revalidate them.
Transaction RandomTxn(Xoshiro256& rng, std::size_t ordinal) {
  Transaction txn("P" + std::to_string(ordinal));
  const std::size_t num_tuples = 1 + rng.NextBelow(2);
  for (std::size_t i = 0; i < num_tuples; ++i) {
    if (rng.NextBool(0.5)) {
      txn.Add("R", Tuple({Value::Int(rng.NextInRange(0, 5)),
                          Value::Int(rng.NextInRange(0, 3))}));
    } else {
      txn.Add("S", Tuple({Value::Int(rng.NextInRange(0, 5)),
                          Value::Int(rng.NextInRange(0, 3))}));
    }
  }
  return txn;
}

const char* kEngineQueries[] = {
    "q() :- R(x, y)",
    "q() :- R(0, y)",
    "q() :- R(x, y), S(x, z)",
    "q() :- R(x, 1), S(x, 2)",
    "q() :- R(x, y), S(x, z), y < z",
    "[q(sum(y)) :- S(x, y)] >= 4",
};

const char* kMonitorQueries[] = {
    "q() :- R(x, y)",
    "q() :- R(x, 2)",
    "q() :- R(x, y), S(x, z)",
    "q() :- S(3, y)",
};

SteadyStateOptions ScratchOptions() {
  SteadyStateOptions options;
  options.incremental = false;
  return options;
}

void ExpectEngineEquivalence(DcSatEngine& incremental, BlockchainDatabase& db,
                             const std::string& context) {
  DcSatEngine scratch(&db, ScratchOptions());
  const FdGraph& inc_graph = incremental.PrepareSteadyState();
  const FdGraph& scr_graph = scratch.PrepareSteadyState();

  ASSERT_EQ(inc_graph.valid_nodes(), scr_graph.valid_nodes()) << context;
  ASSERT_EQ(inc_graph.graph().num_vertices(), scr_graph.graph().num_vertices())
      << context;
  for (std::size_t v = 0; v < inc_graph.graph().num_vertices(); ++v) {
    ASSERT_EQ(inc_graph.graph().Neighbors(v), scr_graph.graph().Neighbors(v))
        << context << " vertex " << v;
  }
  ASSERT_EQ(inc_graph.num_conflict_pairs(), scr_graph.num_conflict_pairs())
      << context;

  DcSatOptions default_options;
  DcSatOptions search_options;  // Force the clique search everywhere.
  search_options.use_precheck = false;
  search_options.use_covers = false;
  search_options.use_tractable_fragments = false;
  for (const char* text : kEngineQueries) {
    auto q = ParseDenialConstraint(text);
    ASSERT_TRUE(q.ok()) << text;
    for (const DcSatOptions& options : {default_options, search_options}) {
      auto inc = incremental.Check(*q, options);
      auto scr = scratch.Check(*q, options);
      ASSERT_TRUE(inc.ok()) << context << " " << text;
      ASSERT_TRUE(scr.ok()) << context << " " << text;
      ASSERT_EQ(inc->satisfied, scr->satisfied) << context << " " << text;
      ASSERT_EQ(inc->witness, scr->witness) << context << " " << text;
      ASSERT_EQ(inc->stats.num_valid_nodes, scr->stats.num_valid_nodes)
          << context << " " << text;
      ASSERT_EQ(inc->stats.fd_conflict_pairs, scr->stats.fd_conflict_pairs)
          << context << " " << text;
      ASSERT_EQ(inc->stats.num_components, scr->stats.num_components)
          << context << " " << text;
      ASSERT_EQ(inc->stats.num_cliques, scr->stats.num_cliques)
          << context << " " << text;
      ASSERT_EQ(inc->stats.num_worlds_evaluated,
                scr->stats.num_worlds_evaluated)
          << context << " " << text;
    }
  }
}

void ExpectMonitorEquivalence(ConstraintMonitor& monitor,
                              const std::vector<MonitorHandle>& handles,
                              BlockchainDatabase& db,
                              const std::string& context) {
  ASSERT_TRUE(monitor.Poll().ok()) << context;
  ConstraintMonitor fresh(&db, MonitorOptions{.steady = ScratchOptions(),
                                              .dirty_tracking = false});
  std::vector<MonitorHandle> fresh_handles;
  for (const char* text : kMonitorQueries) {
    auto handle = fresh.Add(text, text);
    ASSERT_TRUE(handle.ok()) << context << " " << text;
    fresh_handles.push_back(*handle);
  }
  ASSERT_TRUE(fresh.Poll().ok()) << context;
  for (std::size_t i = 0; i < handles.size(); ++i) {
    ASSERT_EQ(monitor.verdict(handles[i]), fresh.verdict(fresh_handles[i]))
        << context << " " << kMonitorQueries[i];
  }
}

/// Shared driver: runs `steps` random lifecycle mutations, differentially
/// checking after every `refresh_every` of them (1 = per-step).
void RunLifecycleDifferential(std::uint64_t seed, bool with_ind,
                              std::size_t steps, std::size_t refresh_every) {
  Xoshiro256 rng(seed * 2 + (with_ind ? 1 : 0));
  BlockchainDatabase db = MakeInstance(rng, with_ind);
  DcSatEngine engine(&db);  // Incremental maintenance on by default.
  ConstraintMonitor monitor(&db);
  std::vector<MonitorHandle> handles;
  for (const char* text : kMonitorQueries) {
    auto handle = monitor.Add(text, text);
    ASSERT_TRUE(handle.ok()) << text;
    handles.push_back(*handle);
  }

  std::size_t next_ordinal = 0;
  std::vector<PendingId> live;
  std::vector<PendingId> applied;
  /// Base tuples this driver inserted (eligible for RemoveCurrent).
  std::vector<std::pair<std::string, Tuple>> base;
  const std::size_t initial = 2 + rng.NextBelow(3);
  for (std::size_t i = 0; i < initial; ++i) {
    auto id = db.AddPending(RandomTxn(rng, next_ordinal++));
    ASSERT_TRUE(id.ok());
    live.push_back(*id);
  }
  ExpectEngineEquivalence(engine, db, "initial");
  ExpectMonitorEquivalence(monitor, handles, db, "initial");

  for (std::size_t step = 0; step < steps; ++step) {
    const std::string context = "seed " + std::to_string(seed) + " ind " +
                                std::to_string(with_ind) + " K " +
                                std::to_string(refresh_every) + " step " +
                                std::to_string(step);
    const bool trace =  // NOLINT(concurrency-mt-unsafe): read-only, no setenv anywhere
        std::getenv("BCDB_LIFECYCLE_TRACE") != nullptr;
    const std::size_t op = rng.NextBelow(8);
    switch (op) {
      case 0:
      case 1: {  // Block confirmation brings a fresh base tuple.
        const std::string relation = rng.NextBool(0.7) ? "R" : "S";
        const Tuple tuple({Value::Int(rng.NextInRange(0, 5)),
                           Value::Int(rng.NextInRange(0, 3))});
        if (db.InsertCurrent(relation, tuple).ok()) {
          // Set semantics: a duplicate insert is a no-op, so track each base
          // tuple once — a second entry would outlive the single removal.
          if (std::find(base.begin(), base.end(),
                        std::make_pair(relation, tuple)) == base.end()) {
            base.emplace_back(relation, tuple);
          }
          if (trace)
            fprintf(stderr, "%s: insert %s %s\n", context.c_str(),
                    relation.c_str(), tuple.ToString().c_str());
        }
        break;
      }
      case 2: {  // A reorg drops a previously confirmed base tuple.
        if (base.empty()) break;
        const std::size_t pick = rng.NextBelow(base.size());
        // NotFound is possible when the entry went stale: an UnapplyPending
        // can demote base ownership of a tuple this driver also inserted.
        const Status removed =
            db.RemoveCurrent(base[pick].first, base[pick].second);
        ASSERT_TRUE(removed.ok() || removed.code() == StatusCode::kNotFound)
            << context << ": " << removed.ToString();
        if (trace && removed.ok())
          fprintf(stderr, "%s: remove %s %s\n", context.c_str(),
                  base[pick].first.c_str(), base[pick].second.ToString().c_str());
        base.erase(base.begin() + pick);
        break;
      }
      case 3: {  // A reorg returns an applied transaction to the mempool.
        if (applied.empty()) break;
        const std::size_t pick = rng.NextBelow(applied.size());
        const PendingId id = applied[pick];
        ASSERT_TRUE(db.UnapplyPending(id).ok()) << context;
        applied.erase(applied.begin() + pick);
        live.push_back(id);
        if (trace) fprintf(stderr, "%s: unapply %zu\n", context.c_str(), id);
        break;
      }
      case 4:
      case 5: {  // Mempool arrival.
        auto id = db.AddPending(RandomTxn(rng, next_ordinal++));
        ASSERT_TRUE(id.ok()) << context;
        live.push_back(*id);
        if (trace) fprintf(stderr, "%s: add %zu\n", context.c_str(), *id);
        break;
      }
      default: {  // Confirmation or eviction of a live transaction.
        if (live.empty()) break;
        const std::size_t pick = rng.NextBelow(live.size());
        const PendingId id = live[pick];
        if (op == 6 && db.ApplyPending(id).ok()) {
          applied.push_back(id);
          if (trace) fprintf(stderr, "%s: apply %zu\n", context.c_str(), id);
        } else {
          // Base-inconsistent transactions cannot apply; evict instead.
          ASSERT_TRUE(db.DiscardPending(id).ok()) << context;
          if (trace) fprintf(stderr, "%s: discard %zu\n", context.c_str(), id);
        }
        live.erase(live.begin() + pick);
        break;
      }
    }
    if ((step + 1) % refresh_every == 0) {
      ExpectEngineEquivalence(engine, db, context);
      ExpectMonitorEquivalence(monitor, handles, db, context);
    }
  }
  ExpectEngineEquivalence(engine, db, "final");
  ExpectMonitorEquivalence(monitor, handles, db, "final");

  // The long-lived consumers really rode the delta path: base-state events
  // carried their payloads, so only the add/restore+apply guard may have
  // forced a rebuild.
  const SteadyStateStats& stats = engine.steady_state_stats();
  EXPECT_GT(stats.incremental_batches, 0u);
  EXPECT_EQ(stats.fallbacks_base_insert, 0u);
  EXPECT_EQ(stats.fallbacks_batch_too_large, 0u);
  EXPECT_EQ(stats.fallbacks_missed_events, 0u);
  if (refresh_every == 1) {
    // Per-step refreshes can never see an add and an apply of the same
    // transaction in one batch.
    EXPECT_EQ(stats.fallbacks_applied_in_batch, 0u);
    EXPECT_EQ(stats.full_rebuilds, 1u);
  }
}

class LifecycleDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LifecycleDifferentialTest, PerStepMatchesScratch) {
  for (bool with_ind : {false, true}) {
    RunLifecycleDifferential(GetParam(), with_ind, /*steps=*/16,
                             /*refresh_every=*/1);
  }
}

TEST_P(LifecycleDifferentialTest, BatchedMatchesScratch) {
  // Multi-event delta batches (the production shape): reorg-style windows
  // where a restore, an apply and base churn land in one refresh — including
  // the restore-then-apply-in-one-batch pattern that must take the
  // applied-in-batch rebuild guard rather than an unsound patch.
  for (bool with_ind : {false, true}) {
    RunLifecycleDifferential(GetParam(), with_ind, /*steps=*/24,
                             /*refresh_every=*/2 + GetParam() % 4);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LifecycleDifferentialTest,
                         ::testing::Range<std::uint64_t>(0, 30));

TEST(LifecycleEdgeTest, RestoreThenApplyInOneBatchFallsBack) {
  // [UnapplyPending(A), ApplyPending(A)] inside one delta batch: the replay
  // would integrate A via AddPendingNode, but the apply's cascade is
  // computed against A's edges *as replayed*, which can differ from the
  // from-scratch view. The engine must detect the pair and rebuild.
  Xoshiro256 rng(21);
  BlockchainDatabase db = MakeInstance(rng, false);
  Transaction txn("A");
  txn.Add("R", Tuple({Value::Int(9), Value::Int(1)}));
  auto id = db.AddPending(txn);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(db.ApplyPending(*id).ok());

  DcSatEngine engine(&db);
  engine.PrepareSteadyState();

  ASSERT_TRUE(db.UnapplyPending(*id).ok());
  ASSERT_TRUE(db.ApplyPending(*id).ok());
  engine.PrepareSteadyState();
  EXPECT_EQ(engine.steady_state_stats().fallbacks_applied_in_batch, 1u);
  EXPECT_TRUE(engine.last_refresh().full_rebuild);
  ExpectEngineEquivalence(engine, db, "restore+apply batch");
}

TEST(LifecycleEdgeTest, RestoreRevalidatesFormerCascadeVictims) {
  // Base tuple R(4, 0) invalidates pending B = R(4, 1) via the key FD.
  // Retracting it must revalidate B incrementally — and the revalidation
  // must re-probe against the *final* base state, not merely undo the edge.
  Xoshiro256 rng(22);
  BlockchainDatabase db = MakeInstance(rng, false);
  DcSatEngine engine(&db);
  engine.PrepareSteadyState();

  Transaction txn_b("B");
  txn_b.Add("R", Tuple({Value::Int(4), Value::Int(1)}));
  auto b = db.AddPending(txn_b);
  ASSERT_TRUE(b.ok());
  engine.PrepareSteadyState();

  const Tuple blocker({Value::Int(4), Value::Int(0)});
  ASSERT_TRUE(db.InsertCurrent("R", blocker).ok());
  engine.PrepareSteadyState();
  EXPECT_FALSE(engine.last_refresh().full_rebuild);
  EXPECT_FALSE(engine.PrepareSteadyState().valid_nodes().Test(*b));
  ExpectEngineEquivalence(engine, db, "blocked");

  ASSERT_TRUE(db.RemoveCurrent("R", blocker).ok());
  engine.PrepareSteadyState();
  EXPECT_FALSE(engine.last_refresh().full_rebuild);
  EXPECT_TRUE(engine.PrepareSteadyState().valid_nodes().Test(*b));
  ExpectEngineEquivalence(engine, db, "unblocked");
}

TEST(LifecycleEdgeTest, UnapplyRestoresPendingStateAndVisibility) {
  Xoshiro256 rng(23);
  BlockchainDatabase db = MakeInstance(rng, false);
  Transaction txn("A");
  txn.Add("R", Tuple({Value::Int(5), Value::Int(2)}));
  auto id = db.AddPending(txn);
  ASSERT_TRUE(id.ok());

  ASSERT_EQ(db.UnapplyPending(*id).code(), StatusCode::kInvalidArgument)
      << "unapply of a never-applied transaction must fail";
  ASSERT_TRUE(db.ApplyPending(*id).ok());
  ASSERT_TRUE(db.UnapplyPending(*id).ok());
  EXPECT_TRUE(db.IsPending(*id));
  // Back to pending: applying again must succeed (round trip).
  ASSERT_TRUE(db.ApplyPending(*id).ok());
  ASSERT_EQ(db.UnapplyPending(*id).ok(), true);
  ASSERT_EQ(db.UnapplyPending(*id).code(), StatusCode::kInvalidArgument)
      << "double unapply must fail";
}

}  // namespace
}  // namespace bcdb
