#include <gtest/gtest.h>

#include "relational/schema.h"

namespace bcdb {
namespace {

RelationSchema MakeSchema() {
  return RelationSchema("R", {Attribute{"id", ValueType::kInt, false},
                              Attribute{"name", ValueType::kString, false},
                              Attribute{"amount", ValueType::kInt, true}});
}

TEST(RelationSchemaTest, Basics) {
  RelationSchema schema = MakeSchema();
  EXPECT_EQ(schema.name(), "R");
  EXPECT_EQ(schema.arity(), 3u);
  EXPECT_EQ(schema.attribute(1).name, "name");
}

TEST(RelationSchemaTest, AttributeIndex) {
  RelationSchema schema = MakeSchema();
  ASSERT_TRUE(schema.AttributeIndex("amount").ok());
  EXPECT_EQ(*schema.AttributeIndex("amount"), 2u);
  EXPECT_FALSE(schema.AttributeIndex("missing").ok());
}

TEST(RelationSchemaTest, AttributeIndexesPreservesOrder) {
  RelationSchema schema = MakeSchema();
  auto result = schema.AttributeIndexes({"name", "id"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, (std::vector<std::size_t>{1, 0}));
}

TEST(RelationSchemaTest, ValidateTupleAcceptsGood) {
  RelationSchema schema = MakeSchema();
  EXPECT_TRUE(schema
                  .ValidateTuple(Tuple({Value::Int(1), Value::Str("a"),
                                        Value::Int(5)}))
                  .ok());
}

TEST(RelationSchemaTest, ValidateTupleRejectsArity) {
  RelationSchema schema = MakeSchema();
  EXPECT_EQ(schema.ValidateTuple(Tuple({Value::Int(1)})).code(),
            StatusCode::kInvalidArgument);
}

TEST(RelationSchemaTest, ValidateTupleRejectsNull) {
  RelationSchema schema = MakeSchema();
  EXPECT_FALSE(schema
                   .ValidateTuple(Tuple({Value::Int(1), Value::Null(),
                                         Value::Int(5)}))
                   .ok());
}

TEST(RelationSchemaTest, ValidateTupleRejectsWrongType) {
  RelationSchema schema = MakeSchema();
  EXPECT_FALSE(schema
                   .ValidateTuple(Tuple({Value::Str("not int"),
                                         Value::Str("a"), Value::Int(5)}))
                   .ok());
}

TEST(RelationSchemaTest, NumericTypesInterchangeable) {
  RelationSchema schema = MakeSchema();
  // A real value in an int column is accepted (numeric family).
  EXPECT_TRUE(schema
                  .ValidateTuple(Tuple({Value::Real(1.5), Value::Str("a"),
                                        Value::Int(5)}))
                  .ok());
}

TEST(RelationSchemaTest, NonNegativeEnforced) {
  RelationSchema schema = MakeSchema();
  EXPECT_FALSE(schema
                   .ValidateTuple(Tuple({Value::Int(1), Value::Str("a"),
                                         Value::Int(-5)}))
                   .ok());
}

TEST(CatalogTest, AddAndLookup) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation(MakeSchema()).ok());
  ASSERT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "S", {Attribute{"x", ValueType::kInt, false}}))
                  .ok());
  EXPECT_EQ(catalog.num_relations(), 2u);
  EXPECT_TRUE(catalog.HasRelation("R"));
  EXPECT_FALSE(catalog.HasRelation("T"));
  ASSERT_TRUE(catalog.RelationId("S").ok());
  EXPECT_EQ(*catalog.RelationId("S"), 1u);
  EXPECT_EQ(catalog.schema(0).name(), "R");
}

TEST(CatalogTest, RejectsDuplicates) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation(MakeSchema()).ok());
  EXPECT_EQ(catalog.AddRelation(MakeSchema()).code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, UnknownRelationIsNotFound) {
  Catalog catalog;
  EXPECT_EQ(catalog.RelationId("nope").status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace bcdb
