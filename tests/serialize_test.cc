#include <gtest/gtest.h>

#include <cstdio>

#include "bitcoin/generator.h"
#include "bitcoin/serialize.h"

namespace bcdb {
namespace bitcoin {
namespace {

GeneratedWorkload MakeWorkload() {
  GeneratorParams params;
  params.seed = 21;
  params.num_blocks = 30;
  params.num_users = 10;
  params.num_pending = 18;
  params.num_contradictions = 3;
  params.pending_chain_depth = 4;
  params.star_size = 3;
  params.rich_payments = 2;
  auto workload = GenerateWorkload(params);
  EXPECT_TRUE(workload.ok()) << workload.status();
  return std::move(*workload);
}

TEST(SerializeTest, RoundTripPreservesChainAndMempool) {
  GeneratedWorkload workload = MakeWorkload();
  auto data = SerializeNode(workload.node);
  ASSERT_TRUE(data.ok()) << data.status();
  auto restored = DeserializeNode(*data);
  ASSERT_TRUE(restored.ok()) << restored.status();

  // Same chain tip (block hashes cover all content transitively) and the
  // same mempool transaction ids in order.
  EXPECT_EQ(restored->chain().height(), workload.node.chain().height());
  EXPECT_EQ(restored->chain().tip().hash(),
            workload.node.chain().tip().hash());
  ASSERT_EQ(restored->mempool().size(), workload.node.mempool().size());
  for (std::size_t i = 0; i < restored->mempool().size(); ++i) {
    EXPECT_EQ(restored->mempool().transactions()[i].txid(),
              workload.node.mempool().transactions()[i].txid());
  }
  EXPECT_EQ(restored->chain().utxos().size(),
            workload.node.chain().utxos().size());
}

TEST(SerializeTest, SerializationIsDeterministic) {
  GeneratedWorkload workload = MakeWorkload();
  auto a = SerializeNode(workload.node);
  auto b = SerializeNode(workload.node);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(SerializeTest, DoubleRoundTripIsStable) {
  GeneratedWorkload workload = MakeWorkload();
  auto once = SerializeNode(workload.node);
  ASSERT_TRUE(once.ok());
  auto restored = DeserializeNode(*once);
  ASSERT_TRUE(restored.ok());
  auto twice = SerializeNode(*restored);
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(*once, *twice);
}

TEST(SerializeTest, LoadValidatesHistory) {
  GeneratedWorkload workload = MakeWorkload();
  auto data = SerializeNode(workload.node);
  ASSERT_TRUE(data.ok());
  // Corrupt an amount: the replay validation must reject the snapshot.
  std::string corrupted = *data;
  const std::size_t position = corrupted.find("\nout ");
  ASSERT_NE(position, std::string::npos);
  const std::size_t amount_start =
      corrupted.find_last_of(' ', corrupted.find('\n', position + 1));
  corrupted.replace(amount_start + 1,
                    corrupted.find('\n', amount_start) - amount_start - 1,
                    "999999999999");
  EXPECT_FALSE(DeserializeNode(corrupted).ok());
}

TEST(SerializeTest, RejectsGarbage) {
  EXPECT_FALSE(DeserializeNode("").ok());
  EXPECT_FALSE(DeserializeNode("not a snapshot").ok());
  EXPECT_FALSE(DeserializeNode("bcdb-node v1\nblock 1\ntx\nbogus\n").ok());
  EXPECT_FALSE(
      DeserializeNode("bcdb-node v1\nblock 1\ntx\nin 1 1 A 5\nendtx\n").ok());
}

TEST(SerializeTest, EmptyNodeRoundTrips) {
  SimulatedNode node;
  auto data = SerializeNode(node);
  ASSERT_TRUE(data.ok());
  auto restored = DeserializeNode(*data);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->chain().height(), 0u);
  EXPECT_EQ(restored->mempool().size(), 0u);
}

TEST(SerializeTest, FileRoundTrip) {
  GeneratedWorkload workload = MakeWorkload();
  const std::string path = ::testing::TempDir() + "/bcdb_snapshot.txt";
  ASSERT_TRUE(SaveNodeToFile(workload.node, path).ok());
  auto restored = LoadNodeFromFile(path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->chain().tip().hash(),
            workload.node.chain().tip().hash());
  std::remove(path.c_str());
  EXPECT_EQ(LoadNodeFromFile(path).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace bitcoin
}  // namespace bcdb
