#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/bitset.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/union_find.h"

namespace bcdb {
namespace {

// --- Status / StatusOr ---

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arg");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad arg");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad arg");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ConstraintViolation("x").code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = Status::NotFound("missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result = std::string("hello");
  std::string value = std::move(result).value();
  EXPECT_EQ(value, "hello");
}

// --- UnionFind ---

TEST(UnionFindTest, SingletonsInitially) {
  UnionFind uf(4);
  EXPECT_FALSE(uf.Connected(0, 1));
  EXPECT_EQ(uf.SetSize(2), 1u);
  EXPECT_EQ(uf.Components().size(), 4u);
}

TEST(UnionFindTest, UnionMerges) {
  UnionFind uf(5);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Union(1, 2));
  EXPECT_FALSE(uf.Union(0, 2));  // Already merged.
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_FALSE(uf.Connected(0, 3));
  EXPECT_EQ(uf.SetSize(1), 3u);
  EXPECT_EQ(uf.Components().size(), 3u);
}

TEST(UnionFindTest, ComponentsPartition) {
  UnionFind uf(6);
  uf.Union(0, 3);
  uf.Union(4, 5);
  auto components = uf.Components();
  std::size_t total = 0;
  for (const auto& c : components) total += c.size();
  EXPECT_EQ(total, 6u);
  EXPECT_EQ(components.size(), 4u);
}

// --- Xoshiro256 ---

TEST(RngTest, DeterministicAcrossInstances) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, NextBelowInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBelow(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextInRangeInclusive) {
  Xoshiro256 rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// --- DynamicBitset ---

TEST(BitsetTest, SetTestReset) {
  DynamicBitset b(130);
  EXPECT_TRUE(b.None());
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3u);
  b.Reset(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(BitsetTest, SetAllRespectsSize) {
  DynamicBitset b(70);
  b.SetAll();
  EXPECT_EQ(b.Count(), 70u);
}

TEST(BitsetTest, IntersectionAndDifference) {
  DynamicBitset a(100), b(100);
  a.Set(3);
  a.Set(50);
  a.Set(99);
  b.Set(50);
  b.Set(99);
  EXPECT_EQ(a.IntersectionCount(b), 2u);
  DynamicBitset c = a & b;
  EXPECT_EQ(c.Count(), 2u);
  a -= b;
  EXPECT_TRUE(a.Test(3));
  EXPECT_FALSE(a.Test(50));
}

TEST(BitsetTest, FindFirstAndNext) {
  DynamicBitset b(200);
  EXPECT_EQ(b.FindFirst(), 200u);
  b.Set(5);
  b.Set(130);
  EXPECT_EQ(b.FindFirst(), 5u);
  EXPECT_EQ(b.FindNext(6), 130u);
  EXPECT_EQ(b.FindNext(131), 200u);
}

TEST(BitsetTest, ForEachVisitsAscending) {
  DynamicBitset b(300);
  b.Set(1);
  b.Set(63);
  b.Set(64);
  b.Set(299);
  std::vector<std::size_t> visited;
  b.ForEach([&](std::size_t i) { visited.push_back(i); });
  EXPECT_EQ(visited, (std::vector<std::size_t>{1, 63, 64, 299}));
  EXPECT_EQ(b.ToVector(), visited);
}

TEST(BitsetTest, HashDistinguishesContents) {
  DynamicBitset a(64), b(64);
  a.Set(3);
  b.Set(4);
  EXPECT_NE(a.Hash(), b.Hash());
  b.Reset(4);
  b.Set(3);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_EQ(a, b);
}

// --- Strings ---

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(StringsTest, SplitAndTrim) {
  EXPECT_EQ(SplitAndTrim(" a , b ,c ", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitAndTrim("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  hi \t"), "hi");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("hello", "lo"));
  EXPECT_TRUE(StartsWith("x", ""));
}

}  // namespace
}  // namespace bcdb
