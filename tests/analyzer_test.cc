#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/analyzer.h"
#include "analysis/lint_format.h"
#include "analysis/schema_text.h"
#include "core/dcsat.h"
#include "core/monitor.h"
#include "query/parser.h"
#include "query/template.h"

namespace bcdb {
namespace {

// R(a int, b int), S(x int, y int nonneg), Str(s string, n int).
Catalog MakeCatalog() {
  Catalog catalog;
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "R", {Attribute{"a", ValueType::kInt, false},
                            Attribute{"b", ValueType::kInt, false}}))
                  .ok());
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "S", {Attribute{"x", ValueType::kInt, false},
                            Attribute{"y", ValueType::kInt, true}}))
                  .ok());
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "Str", {Attribute{"s", ValueType::kString, false},
                              Attribute{"n", ValueType::kInt, false}}))
                  .ok());
  return catalog;
}

enum class Sets { kNone, kFdOnly, kIndOnly, kMixed };

ConstraintSet MakeConstraints(const Catalog& catalog, Sets which) {
  ConstraintSet constraints;
  if (which == Sets::kFdOnly || which == Sets::kMixed) {
    constraints.AddFd(*FunctionalDependency::Key(catalog, "R", {"a"}));
  }
  if (which == Sets::kIndOnly || which == Sets::kMixed) {
    constraints.AddInd(
        *InclusionDependency::Create(catalog, "S", {"x"}, "R", {"a"}));
  }
  return constraints;
}

bool HasDiagnostic(const AnalysisReport& report, AnalysisCode code) {
  return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

const Diagnostic* FindDiagnostic(const AnalysisReport& report,
                                 AnalysisCode code) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

class AnalyzerTest : public ::testing::Test {
 protected:
  AnalyzerTest() : db_(MakeCatalog()) {}

  AnalysisReport Analyze(const char* text, Sets which = Sets::kMixed) {
    return AnalyzeConstraintText(
        text, db_, MakeConstraints(db_.catalog(), which));
  }

  AnalysisReport Analyze(const DenialConstraint& q, Sets which = Sets::kMixed) {
    return AnalyzeConstraint(q, db_, MakeConstraints(db_.catalog(), which));
  }

  Database db_;
};

// --- One test per diagnostic kind. ---

TEST_F(AnalyzerTest, ParseError) {
  AnalysisReport report = Analyze("q() :- R(x,");
  EXPECT_FALSE(report.ok());
  const Diagnostic* diag = FindDiagnostic(report, AnalysisCode::kParseError);
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->severity, Severity::kError);
}

TEST_F(AnalyzerTest, NoPositiveAtoms) {
  DenialConstraint q;  // Empty body.
  AnalysisReport report = Analyze(q);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasDiagnostic(report, AnalysisCode::kNoPositiveAtoms));
}

TEST_F(AnalyzerTest, UnknownRelation) {
  AnalysisReport report = Analyze("q() :- Nope(x, y)");
  EXPECT_FALSE(report.ok());
  const Diagnostic* diag =
      FindDiagnostic(report, AnalysisCode::kUnknownRelation);
  ASSERT_NE(diag, nullptr);
  EXPECT_NE(diag->message.find("Nope"), std::string::npos);
}

TEST_F(AnalyzerTest, ArityMismatch) {
  AnalysisReport report = Analyze("q() :- R(x, y, z)");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasDiagnostic(report, AnalysisCode::kArityMismatch));
}

TEST_F(AnalyzerTest, ConstantTypeMismatch) {
  AnalysisReport report = Analyze("q() :- R('oops', y)");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasDiagnostic(report, AnalysisCode::kConstantTypeMismatch));
}

TEST_F(AnalyzerTest, UnsafeVariable) {
  AnalysisReport report = Analyze("q() :- R(x, y), not S(x, w)");
  EXPECT_FALSE(report.ok());
  const Diagnostic* diag = FindDiagnostic(report, AnalysisCode::kUnsafeVariable);
  ASSERT_NE(diag, nullptr);
  EXPECT_NE(diag->message.find("'w'"), std::string::npos);

  AnalysisReport cmp = Analyze("q() :- R(x, y), z > 3");
  EXPECT_TRUE(HasDiagnostic(cmp, AnalysisCode::kUnsafeVariable));
}

TEST_F(AnalyzerTest, BadAggregate) {
  DenialConstraint q;
  q.positive_atoms.push_back(
      Atom{"R", {Term::Var("x"), Term::Var("y")}, false});
  AggregateSpec spec;
  spec.fn = AggregateFunction::kSum;
  spec.args = {Term::Var("x"), Term::Var("y")};  // sum takes one variable.
  spec.op = ComparisonOp::kGt;
  spec.threshold = Value::Int(3);
  q.aggregate = spec;
  AnalysisReport report = Analyze(q);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasDiagnostic(report, AnalysisCode::kBadAggregate));
}

TEST_F(AnalyzerTest, CompileRejectedSafetyNet) {
  // A defect the structured checks do not reproduce: non-variable head
  // terms. The compiler safety net must still fail the report.
  DenialConstraint q;
  q.head_vars = {Term::Const(std::int64_t{7})};
  q.positive_atoms.push_back(
      Atom{"R", {Term::Var("x"), Term::Var("y")}, false});
  AnalysisReport report = Analyze(q);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasDiagnostic(report, AnalysisCode::kCompileRejected));
}

TEST_F(AnalyzerTest, AlwaysFalseComparison) {
  AnalysisReport report = Analyze("q() :- R(x, y), x < x");
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(HasDiagnostic(report, AnalysisCode::kAlwaysFalseComparison));
  EXPECT_TRUE(report.proved_unsat);
  EXPECT_EQ(report.tractability, TractabilityClass::kTriviallyUnsat);

  // Constant fold: 1 = 2 never holds.
  AnalysisReport folded = Analyze("q() :- R(x, y), 1 = 2");
  EXPECT_TRUE(folded.proved_unsat);
  // Conflicting constants through an equality chain: x = 1, x = y, y = 2.
  AnalysisReport chained = Analyze("q() :- R(x, y), x = 1, x = y, y = 2");
  EXPECT_TRUE(chained.proved_unsat);
}

TEST_F(AnalyzerTest, JoinTypeConflict) {
  // `v` joins R.a (int) and Str.s (string): no tuple pair can match.
  AnalysisReport report = Analyze("q() :- R(v, b), Str(v, n)");
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(HasDiagnostic(report, AnalysisCode::kJoinTypeConflict));
  EXPECT_TRUE(report.proved_unsat);
  EXPECT_EQ(report.tractability, TractabilityClass::kTriviallyUnsat);
}

TEST_F(AnalyzerTest, ComparisonTypeMismatch) {
  // Numeric sorts before string in the total value order: a < s is always
  // true (redundant, a warning but not unsat)...
  AnalysisReport redundant = Analyze("q() :- R(a, b), Str(s, n), a < s");
  EXPECT_TRUE(redundant.ok());
  EXPECT_TRUE(
      HasDiagnostic(redundant, AnalysisCode::kComparisonTypeMismatch));
  EXPECT_FALSE(redundant.proved_unsat);
  // ... while a > s can never hold.
  AnalysisReport unsat = Analyze("q() :- R(a, b), Str(s, n), a > s");
  EXPECT_TRUE(HasDiagnostic(unsat, AnalysisCode::kComparisonTypeMismatch));
  EXPECT_TRUE(unsat.proved_unsat);
}

TEST_F(AnalyzerTest, AlreadyViolated) {
  Database db(MakeCatalog());
  ASSERT_TRUE(db.Insert("R", Tuple({Value::Int(1), Value::Int(2)})).ok());
  auto q = ParseDenialConstraint("q() :- R(x, y)");
  ASSERT_TRUE(q.ok());
  AnalysisReport report =
      AnalyzeConstraint(*q, db, MakeConstraints(db.catalog(), Sets::kMixed));
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(HasDiagnostic(report, AnalysisCode::kAlreadyViolated));
  EXPECT_EQ(report.tractability, TractabilityClass::kTriviallyViolated);

  // With the base-state probe off the class stays data-independent.
  AnalyzerOptions options;
  options.check_base_state = false;
  AnalysisReport unprobed = AnalyzeConstraint(
      *q, db, MakeConstraints(db.catalog(), Sets::kMixed), options);
  EXPECT_FALSE(HasDiagnostic(unprobed, AnalysisCode::kAlreadyViolated));
  EXPECT_EQ(unprobed.tractability, TractabilityClass::kCoNpMixed);
}

TEST_F(AnalyzerTest, NonMonotone) {
  AnalysisReport report = Analyze("q() :- R(x, y), not S(x, y)");
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.monotone);
  const Diagnostic* diag = FindDiagnostic(report, AnalysisCode::kNonMonotone);
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->severity, Severity::kNote);
  EXPECT_FALSE(report.monotone_reason.empty());
}

TEST_F(AnalyzerTest, Disconnected) {
  AnalysisReport report = Analyze("q() :- R(x, y), S(u, v)");
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.connected);
  EXPECT_TRUE(HasDiagnostic(report, AnalysisCode::kDisconnected));
  // A shared variable connects the Gaifman graph: no note.
  AnalysisReport joined = Analyze("q() :- R(x, y), S(x, v)");
  EXPECT_TRUE(joined.connected);
  EXPECT_FALSE(HasDiagnostic(joined, AnalysisCode::kDisconnected));
}

TEST_F(AnalyzerTest, MixedConstraintClass) {
  AnalysisReport report = Analyze("q() :- S(x, y)", Sets::kMixed);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.tractability, TractabilityClass::kCoNpMixed);
  EXPECT_TRUE(HasDiagnostic(report, AnalysisCode::kMixedConstraintClass));
}

TEST_F(AnalyzerTest, GeneralQueryShape) {
  // FD-only constraints but an aggregate query: outside the proven-PTIME
  // FD fragment, though the constraint set alone is one-sided.
  AnalysisReport report =
      Analyze("[q(count()) :- R(x, y)] > 2", Sets::kFdOnly);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.tractability, TractabilityClass::kCoNpMixed);
  EXPECT_TRUE(HasDiagnostic(report, AnalysisCode::kGeneralQueryShape));
  // IND-only constraints with a non-monotone query: same note.
  AnalysisReport ind = Analyze("q() :- R(x, y), not S(x, y)", Sets::kIndOnly);
  EXPECT_EQ(ind.tractability, TractabilityClass::kCoNpMixed);
  EXPECT_TRUE(HasDiagnostic(ind, AnalysisCode::kGeneralQueryShape));
}

// --- One test per tractability class (the unsat / violated corners are
// covered above). ---

TEST_F(AnalyzerTest, ClassPtimeFdOnly) {
  AnalysisReport report = Analyze("q() :- R(x, y), S(x, z)", Sets::kFdOnly);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.tractability, TractabilityClass::kPtimeFdOnly);
  EXPECT_TRUE(report.monotone);
}

TEST_F(AnalyzerTest, ClassPtimeIndOnly) {
  AnalysisReport report = Analyze("q() :- S(x, y)", Sets::kIndOnly);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.tractability, TractabilityClass::kPtimeIndOnly);
  // Monotone aggregates stay in the IND fragment (Theorem 2).
  AnalysisReport agg = Analyze("[q(sum(y)) :- S(x, y)] > 5", Sets::kIndOnly);
  EXPECT_EQ(agg.tractability, TractabilityClass::kPtimeIndOnly);
  // An empty constraint set behaves like IND-only (unique maximal world).
  AnalysisReport none = Analyze("q() :- S(x, y)", Sets::kNone);
  EXPECT_EQ(none.tractability, TractabilityClass::kPtimeIndOnly);
}

TEST_F(AnalyzerTest, ClassCoNpMixed) {
  AnalysisReport report = Analyze("q() :- S(x, y), R(x, b)", Sets::kMixed);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.tractability, TractabilityClass::kCoNpMixed);
}

// --- Derived facts. ---

TEST_F(AnalyzerTest, FootprintClosesUnderIndCoupling) {
  auto q = ParseDenialConstraint("q() :- S(x, y)");
  ASSERT_TRUE(q.ok());
  const Catalog& catalog = db_.catalog();
  // With the IND S[x] ⊆ R[a], watching S requires watching R too.
  std::vector<std::size_t> coupled = IndClosedFootprint(
      *q, catalog, MakeConstraints(catalog, Sets::kMixed));
  EXPECT_EQ(coupled, (std::vector<std::size_t>{
                         catalog.RelationId("R").value(),
                         catalog.RelationId("S").value()}));
  // Without INDs the footprint is just the referenced relation.
  std::vector<std::size_t> bare = IndClosedFootprint(
      *q, catalog, MakeConstraints(catalog, Sets::kFdOnly));
  EXPECT_EQ(bare,
            (std::vector<std::size_t>{catalog.RelationId("S").value()}));
}

TEST_F(AnalyzerTest, SpansPointIntoSourceText) {
  const char* text = "q() :- Nope(x, y)";
  AnalysisReport report = Analyze(text);
  const Diagnostic* diag =
      FindDiagnostic(report, AnalysisCode::kUnknownRelation);
  ASSERT_NE(diag, nullptr);
  ASSERT_TRUE(diag->span.valid());
  EXPECT_EQ(std::string_view(text).substr(diag->span.offset,
                                          diag->span.length),
            "Nope");
}

// --- The {key, ind} CoNP witness construction from the hardness proof:
// a key conflict decides which R-tuple exists, and the IND couples an
// S-tuple's world membership to that choice. The classifier must place the
// constraint in kCoNpMixed, and the classified dispatch must still decide
// the instance exactly like the general search. ---

TEST(AnalyzerHardnessFixtureTest, MixedKeyIndWitness) {
  Catalog catalog = MakeCatalog();
  ConstraintSet constraints = MakeConstraints(catalog, Sets::kMixed);
  auto db = BlockchainDatabase::Create(std::move(catalog),
                                       std::move(constraints));
  ASSERT_TRUE(db.ok());
  // Two pending R-tuples conflict on the key R(a); the S-tuple is only
  // possible in worlds whose R-choice witnesses the IND S[x] ⊆ R[a].
  Transaction t0("t0");
  t0.Add("R", Tuple({Value::Int(1), Value::Int(0)}));
  Transaction t1("t1");
  t1.Add("R", Tuple({Value::Int(1), Value::Int(7)}));
  Transaction t2("t2");
  t2.Add("S", Tuple({Value::Int(1), Value::Int(5)}));
  ASSERT_TRUE(db->AddPending(t0).ok());
  ASSERT_TRUE(db->AddPending(t1).ok());
  ASSERT_TRUE(db->AddPending(t2).ok());

  DcSatEngine engine(&*db);
  auto q = ParseDenialConstraint("q() :- S(x, y), R(x, 7)");
  ASSERT_TRUE(q.ok());
  AnalysisReport report = engine.Analyze(*q);
  ASSERT_TRUE(report.ok()) << report.ErrorSummary();
  EXPECT_EQ(report.tractability, TractabilityClass::kCoNpMixed);

  // q is realizable exactly in the world {t1, t2}.
  auto classified = engine.Check(*q, report);
  ASSERT_TRUE(classified.ok());
  DcSatOptions general_options;
  general_options.use_tractable_fragments = false;
  auto general = engine.Check(*q, general_options);
  ASSERT_TRUE(general.ok());
  EXPECT_FALSE(classified->satisfied);
  EXPECT_EQ(classified->satisfied, general->satisfied);
  ASSERT_TRUE(classified->witness.has_value());
  EXPECT_EQ(*classified->witness, *general->witness);
  // {t1, t2} is the only violating world: t0/t1 conflict on the key, and
  // only t1 supplies R(1, 7).
  std::vector<PendingId> sorted = *classified->witness;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<PendingId>{1, 2}));
}

// --- Classified engine dispatch. ---

TEST(ClassifiedDispatchTest, TriviallyUnsatShortCircuits) {
  Catalog catalog = MakeCatalog();
  auto db = BlockchainDatabase::Create(std::move(catalog),
                                       MakeConstraints(MakeCatalog(), Sets::kMixed));
  ASSERT_TRUE(db.ok());
  Transaction t0("t0");
  t0.Add("R", Tuple({Value::Int(1), Value::Int(2)}));
  ASSERT_TRUE(db->AddPending(t0).ok());
  DcSatEngine engine(&*db);
  auto q = ParseDenialConstraint("q() :- R(x, y), x != x");
  ASSERT_TRUE(q.ok());
  AnalysisReport report = engine.Analyze(*q);
  EXPECT_EQ(report.tractability, TractabilityClass::kTriviallyUnsat);
  auto result = engine.Check(*q, report);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->decided);
  EXPECT_TRUE(result->satisfied);
  EXPECT_EQ(result->stats.algorithm_used, DcSatAlgorithm::kStatic);
  EXPECT_EQ(result->stats.num_worlds_evaluated, 0u);
  // The unclassified general path agrees on the verdict.
  auto general = engine.Check(*q);
  ASSERT_TRUE(general.ok());
  EXPECT_TRUE(general->satisfied);
}

TEST(ClassifiedDispatchTest, ErrorReportRejected) {
  auto db = BlockchainDatabase::Create(MakeCatalog(),
                                       MakeConstraints(MakeCatalog(), Sets::kNone));
  ASSERT_TRUE(db.ok());
  DcSatEngine engine(&*db);
  auto q = ParseDenialConstraint("q() :- Nope(x)");
  ASSERT_TRUE(q.ok());
  AnalysisReport report = engine.Analyze(*q);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(engine.Check(*q, report).status().code(),
            StatusCode::kInvalidArgument);
}

// --- Monitor registration contract. ---

TEST(MonitorRegistrationTest, RejectsUnknownRelationAtAdd) {
  auto db = BlockchainDatabase::Create(MakeCatalog(),
                                       MakeConstraints(MakeCatalog(), Sets::kMixed));
  ASSERT_TRUE(db.ok());
  ConstraintMonitor monitor(&*db);
  // Regression for the old late-failure behaviour: the rejection happens at
  // Add, with the analyzer's diagnostic code in the message — Poll never
  // sees the entry.
  auto added = monitor.Add("bad", "q() :- Ghost(x, y)");
  ASSERT_FALSE(added.ok());
  EXPECT_EQ(added.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(added.status().message().find("unknown-relation"),
            std::string::npos);
  EXPECT_EQ(monitor.size(), 0u);
  auto changes = monitor.Poll();
  ASSERT_TRUE(changes.ok());
  EXPECT_TRUE(changes->empty());
}

TEST(MonitorRegistrationTest, RejectsUnsafeVariableWithAllDiagnostics) {
  auto db = BlockchainDatabase::Create(MakeCatalog(),
                                       MakeConstraints(MakeCatalog(), Sets::kMixed));
  ASSERT_TRUE(db.ok());
  ConstraintMonitor monitor(&*db);
  // Two defects at once: both appear in the rejection message.
  auto added = monitor.Add("bad", "q() :- R(x, y, z), w > 1");
  ASSERT_FALSE(added.ok());
  EXPECT_NE(added.status().message().find("arity-mismatch"),
            std::string::npos);
  EXPECT_NE(added.status().message().find("unsafe-variable"),
            std::string::npos);
}

TEST(MonitorRegistrationTest, AcceptedEntryExposesAnalysis) {
  auto db = BlockchainDatabase::Create(MakeCatalog(),
                                       MakeConstraints(MakeCatalog(), Sets::kMixed));
  ASSERT_TRUE(db.ok());
  ConstraintMonitor monitor(&*db);
  auto handle = monitor.Add("watch-s", "q() :- S(x, y)");
  ASSERT_TRUE(handle.ok());
  const AnalysisReport* report = monitor.analysis(*handle);
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->tractability, TractabilityClass::kCoNpMixed);
  // The IND-closed footprint watches R as well as S.
  EXPECT_EQ(report->footprint.size(), 2u);
  EXPECT_TRUE(report->monotone);
  EXPECT_TRUE(monitor.Remove(*handle).ok());
  EXPECT_EQ(monitor.analysis(*handle), nullptr);
}

// --- Schema description language. ---

TEST(SchemaTextTest, ParsesRelationsKeysFdsInds) {
  auto schema = ParseSchemaText(
      "# comment\n"
      "relation R(a int, b real nonneg)\n"
      "relation S(x int, t string)\n"
      "key R(a)\n"
      "fd S(x) -> (t)\n"
      "ind S(x) <= R(a)\n");
  ASSERT_TRUE(schema.ok()) << schema.status().message();
  EXPECT_EQ(schema->catalog.num_relations(), 2u);
  const RelationSchema& r = schema->catalog.schema(0);
  EXPECT_EQ(r.attribute(1).type, ValueType::kReal);
  EXPECT_TRUE(r.attribute(1).non_negative);
  EXPECT_EQ(schema->constraints.fds().size(), 2u);
  EXPECT_TRUE(schema->constraints.fds()[0].is_key());
  EXPECT_EQ(schema->constraints.inds().size(), 1u);
}

TEST(SchemaTextTest, ErrorsCarryLineNumbers) {
  auto bad_type = ParseSchemaText("relation R(a float)\n");
  ASSERT_FALSE(bad_type.ok());
  EXPECT_NE(bad_type.status().message().find("line 1"), std::string::npos);
  auto bad_ind = ParseSchemaText(
      "relation R(a int)\n"
      "\n"
      "ind R(a) <= Missing(b)\n");
  ASSERT_FALSE(bad_ind.ok());
  EXPECT_NE(bad_ind.status().message().find("line 3"), std::string::npos);
}

// --- Lint rendering. ---

TEST(LintFormatTest, JsonEscapesAndCounts) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  LintedConstraint c;
  c.text = "q() :- R(x, y)";
  c.line = 3;
  c.report.tractability = TractabilityClass::kPtimeFdOnly;
  c.report.monotone = true;
  c.report.diagnostics.push_back(Diagnostic{
      Severity::kError, AnalysisCode::kUnknownRelation, "msg \"quoted\"",
      SourceSpan{7, 4}});
  const std::string json = FormatFileJson("f.dc", {c});
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"class\": \"ptime-fd-only\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"offset\": 7"), std::string::npos);
}

TEST(LintFormatTest, TextRendersCaretUnderSpan) {
  LintedConstraint c;
  c.text = "q() :- Nope(x)";
  c.line = 2;
  c.report.diagnostics.push_back(Diagnostic{
      Severity::kError, AnalysisCode::kUnknownRelation, "no Nope",
      SourceSpan{7, 4}});
  const std::string text = FormatConstraintText("f.dc", c);
  EXPECT_NE(text.find("f.dc:2: error: no Nope [unknown-relation]"),
            std::string::npos);
  EXPECT_NE(text.find("       ^~~~"), std::string::npos);
}

TEST(LintFormatTest, TemplateLinesCarryClassKeyAndAdmission) {
  Database db(MakeCatalog());
  ConstraintSet constraints;
  auto tmpl = ConstraintTemplate::Parse("q() :- R($a, y)");
  ASSERT_TRUE(tmpl.ok()) << tmpl.status().message();
  const TemplateAnalysis analysis = AnalyzeTemplate(*tmpl, db, constraints);
  ASSERT_TRUE(analysis.report.ok());
  EXPECT_TRUE(analysis.batchable);

  LintedConstraint c;
  c.text = "q() :- R($a, y)";
  c.line = 4;
  c.report = analysis.report;
  c.is_template = true;
  c.batchable = analysis.batchable;
  c.num_params = tmpl->num_params();
  c.class_key = analysis.class_key;

  const std::string text = FormatConstraintText("f.dc", c);
  EXPECT_NE(text.find("f.dc:4: template (1 param)"), std::string::npos);
  EXPECT_NE(text.find("batch-admitted"), std::string::npos);
  EXPECT_NE(text.find("f.dc:4: class key: " + analysis.class_key),
            std::string::npos);

  const std::string json = FormatFileJson("f.dc", {c});
  EXPECT_NE(json.find("\"template\": true"), std::string::npos);
  EXPECT_NE(json.find("\"params\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"batchable\": true"), std::string::npos);
  EXPECT_NE(json.find("\"class_key\": \"" + JsonEscape(analysis.class_key) +
                      "\""),
            std::string::npos);

  // An alpha-renamed registration of the same skeleton shares the key: the
  // lint output is how an operator spots fleets that will share one class.
  auto renamed = ConstraintTemplate::Parse("q() :- R($other, z)");
  ASSERT_TRUE(renamed.ok());
  EXPECT_EQ(AnalyzeTemplate(*renamed, db, constraints).class_key,
            analysis.class_key);
}

}  // namespace
}  // namespace bcdb
