#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/bit_graph.h"
#include "core/bron_kerbosch.h"
#include "util/rng.h"

namespace bcdb {
namespace {

using CliqueSet = std::set<std::vector<std::size_t>>;

CliqueSet Enumerate(const BitGraph& g, const DynamicBitset& subset,
                    bool use_pivot) {
  CliqueSet cliques;
  EnumerateMaximalCliques(g, subset, use_pivot,
                          [&](const std::vector<std::size_t>& clique) {
                            std::vector<std::size_t> sorted = clique;
                            std::sort(sorted.begin(), sorted.end());
                            cliques.insert(sorted);
                            return true;
                          });
  return cliques;
}

DynamicBitset AllOf(std::size_t n) {
  DynamicBitset b(n);
  b.SetAll();
  return b;
}

/// Reference: maximal cliques by brute force over all vertex subsets.
CliqueSet BruteForce(const BitGraph& g, const DynamicBitset& subset) {
  std::vector<std::size_t> vertices = subset.ToVector();
  const std::size_t n = vertices.size();
  std::vector<std::vector<std::size_t>> cliques;
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::size_t{1} << i)) members.push_back(vertices[i]);
    }
    bool is_clique = true;
    for (std::size_t i = 0; i < members.size() && is_clique; ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        if (!g.HasEdge(members[i], members[j])) {
          is_clique = false;
          break;
        }
      }
    }
    if (is_clique) cliques.push_back(members);
  }
  // Keep only maximal ones.
  CliqueSet maximal;
  for (const auto& c : cliques) {
    bool contained = false;
    for (const auto& d : cliques) {
      if (d.size() > c.size() &&
          std::includes(d.begin(), d.end(), c.begin(), c.end())) {
        contained = true;
        break;
      }
    }
    if (!contained) maximal.insert(c);
  }
  return maximal;
}

TEST(BitGraphTest, EdgesAndNeighbors) {
  BitGraph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(3, 3));
  EXPECT_EQ(g.CountEdges(), 2u);
  g.RemoveEdge(0, 1);
  EXPECT_FALSE(g.HasEdge(0, 1));
}

TEST(BitGraphTest, MakeCompleteOver) {
  BitGraph g(6);
  DynamicBitset subset(6);
  subset.Set(1);
  subset.Set(3);
  subset.Set(4);
  g.MakeCompleteOver(subset);
  EXPECT_TRUE(g.HasEdge(1, 3));
  EXPECT_TRUE(g.HasEdge(3, 4));
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 1));
  EXPECT_EQ(g.CountEdges(), 3u);
}

TEST(BronKerboschTest, EmptyGraphSingleEmptyClique) {
  BitGraph g(4);
  DynamicBitset none(4);
  CliqueSet cliques = Enumerate(g, none, true);
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_TRUE(cliques.begin()->empty());
}

TEST(BronKerboschTest, IsolatedVertices) {
  BitGraph g(3);
  CliqueSet cliques = Enumerate(g, AllOf(3), true);
  // Three singleton maximal cliques.
  EXPECT_EQ(cliques.size(), 3u);
}

TEST(BronKerboschTest, Triangle) {
  BitGraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  CliqueSet cliques = Enumerate(g, AllOf(3), true);
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(*cliques.begin(), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(BronKerboschTest, CompleteMinusOneEdge) {
  // The running-example shape: K5 minus edge (0,4) has exactly the two
  // maximal cliques {1,2,3,4} and {0,1,2,3}.
  BitGraph g(5);
  DynamicBitset all = AllOf(5);
  g.MakeCompleteOver(all);
  g.RemoveEdge(0, 4);
  CliqueSet cliques = Enumerate(g, all, true);
  ASSERT_EQ(cliques.size(), 2u);
  EXPECT_TRUE(cliques.count({0, 1, 2, 3}));
  EXPECT_TRUE(cliques.count({1, 2, 3, 4}));
}

TEST(BronKerboschTest, SubsetRestriction) {
  BitGraph g(5);
  g.MakeCompleteOver(AllOf(5));
  DynamicBitset subset(5);
  subset.Set(1);
  subset.Set(2);
  CliqueSet cliques = Enumerate(g, subset, true);
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(*cliques.begin(), (std::vector<std::size_t>{1, 2}));
}

TEST(BronKerboschTest, EarlyStop) {
  BitGraph g(6);  // Six isolated vertices -> six cliques.
  std::size_t seen = 0;
  CliqueEnumerationStats stats = EnumerateMaximalCliques(
      g, AllOf(6), true, [&](const std::vector<std::size_t>&) {
        return ++seen < 2;  // Stop after the second clique.
      });
  EXPECT_EQ(seen, 2u);
  EXPECT_TRUE(stats.stopped_early);
  EXPECT_EQ(stats.cliques_reported, 2u);
}

TEST(BronKerboschTest, MatchesBruteForceOnRandomGraphs) {
  Xoshiro256 rng(1234);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 2 + rng.NextBelow(9);  // 2..10 vertices.
    const double p = rng.NextDouble();
    BitGraph g(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (rng.NextBool(p)) g.AddEdge(i, j);
      }
    }
    const CliqueSet expected = BruteForce(g, AllOf(n));
    EXPECT_EQ(Enumerate(g, AllOf(n), true), expected) << "trial " << trial;
    EXPECT_EQ(Enumerate(g, AllOf(n), false), expected)
        << "no-pivot trial " << trial;
  }
}

TEST(BronKerboschTest, PivotAndPlainAgreeOnDenseGraphs) {
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 12;
    BitGraph g(n);
    DynamicBitset all = AllOf(n);
    g.MakeCompleteOver(all);
    // Remove a few random edges (the fd-graph conflict pattern).
    for (int k = 0; k < 4; ++k) {
      const std::size_t a = rng.NextBelow(n);
      const std::size_t b = rng.NextBelow(n);
      g.RemoveEdge(a, b);
    }
    EXPECT_EQ(Enumerate(g, all, true), Enumerate(g, all, false));
  }
}

}  // namespace
}  // namespace bcdb
