// Focused unit tests for the graph-layer pieces that the integration suites
// exercise only indirectly: equality-constraint bucketing, getMaximal
// fixpoint behaviour, fd-graph edge cases, and out-of-order block gossip.

#include <gtest/gtest.h>

#include "core/fd_graph.h"
#include "core/get_maximal.h"
#include "core/ind_graph.h"
#include "network/simulator.h"
#include "query/parser.h"

namespace bcdb {
namespace {

/// Two relations with one IND; no FDs — everything is mutually compatible.
BlockchainDatabase MakeIndOnlyDb() {
  Catalog catalog;
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "P", {Attribute{"k", ValueType::kInt, false},
                            Attribute{"v", ValueType::kInt, false}}))
                  .ok());
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "C", {Attribute{"r", ValueType::kInt, false}}))
                  .ok());
  ConstraintSet constraints;
  constraints.AddInd(
      *InclusionDependency::Create(catalog, "C", {"r"}, "P", {"k"}));
  auto db =
      BlockchainDatabase::Create(std::move(catalog), std::move(constraints));
  EXPECT_TRUE(db.ok());
  return std::move(*db);
}

Transaction Parent(std::int64_t k) {
  Transaction txn("parent" + std::to_string(k));
  txn.Add("P", Tuple({Value::Int(k), Value::Int(0)}));
  return txn;
}

Transaction Child(std::int64_t r) {
  Transaction txn("child" + std::to_string(r));
  txn.Add("C", Tuple({Value::Int(r)}));
  return txn;
}

TEST(IndGraphUnitTest, BucketsLinkOnlyAcrossSides) {
  BlockchainDatabase db = MakeIndOnlyDb();
  // parents 1, 2; children referencing 1, 1, 3 (3 is dangling).
  ASSERT_TRUE(db.AddPending(Parent(1)).ok());  // 0
  ASSERT_TRUE(db.AddPending(Parent(2)).ok());  // 1
  ASSERT_TRUE(db.AddPending(Child(1)).ok());   // 2
  ASSERT_TRUE(db.AddPending(Child(1)).ok());   // 3  (distinct txn, same ref)
  ASSERT_TRUE(db.AddPending(Child(3)).ok());   // 4  (no pending parent)

  FdGraph fd_graph(db);
  UnionFind uf(db.num_pending());
  MergeEqualityComponents(db, EqualitiesFromConstraints(db.constraints()),
                          fd_graph.valid_nodes(), uf);
  // Children of key 1 merge with parent(1) — and with each other only
  // through that parent (complete-bipartite bucket).
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_TRUE(uf.Connected(0, 3));
  EXPECT_TRUE(uf.Connected(2, 3));
  // parent(2) stays alone: its bucket has no child side.
  EXPECT_FALSE(uf.Connected(0, 1));
  // Dangling child(3): bucket has a lhs side only.
  EXPECT_FALSE(uf.Connected(4, 0));
  EXPECT_FALSE(uf.Connected(4, 1));
}

TEST(IndGraphUnitTest, QueryEqualitiesMergeViaSharedConstants) {
  BlockchainDatabase db = MakeIndOnlyDb();
  ASSERT_TRUE(db.AddPending(Parent(7)).ok());  // 0
  ASSERT_TRUE(db.AddPending(Parent(7)).ok());  // 1: same key, no conflict
                                               // (no FDs) — P(7,0) dedupes?
  // Note: both transactions contribute the identical tuple (7,0); set
  // semantics share it, and the Θ-bucket sees both owners on both sides.
  auto q = ParseDenialConstraint("q() :- P(7, v1), P(7, v2)");
  ASSERT_TRUE(q.ok());
  auto theta_q = EqualitiesFromQuery(*q, db.catalog());
  ASSERT_TRUE(theta_q.ok());
  ASSERT_FALSE(theta_q->empty());

  FdGraph fd_graph(db);
  UnionFind uf(db.num_pending());
  MergeEqualityComponents(db, *theta_q, fd_graph.valid_nodes(), uf);
  EXPECT_TRUE(uf.Connected(0, 1));
}

TEST(GetMaximalUnitTest, FixpointAddsDependantsAcrossPasses) {
  BlockchainDatabase db = MakeIndOnlyDb();
  // Chain: C(5) needs P(5); list the child first so the first pass cannot
  // place it.
  auto child = db.AddPending(Child(5));
  auto parent = db.AddPending(Parent(5));
  ASSERT_TRUE(child.ok());
  ASSERT_TRUE(parent.ok());

  GetMaximalStats stats;
  const WorldView world = GetMaximal(db, {*child, *parent}, &stats);
  EXPECT_TRUE(world.IsActive(static_cast<TupleOwner>(*child)));
  EXPECT_TRUE(world.IsActive(static_cast<TupleOwner>(*parent)));
  EXPECT_EQ(stats.appended, 2u);
  EXPECT_GE(stats.iterations, 1u);
}

TEST(GetMaximalUnitTest, UnappendableCandidatesStayOut) {
  BlockchainDatabase db = MakeIndOnlyDb();
  auto dangling = db.AddPending(Child(9));  // No parent anywhere.
  ASSERT_TRUE(dangling.ok());
  GetMaximalStats stats;
  const WorldView world = GetMaximal(db, {*dangling}, &stats);
  EXPECT_FALSE(world.IsActive(static_cast<TupleOwner>(*dangling)));
  EXPECT_EQ(stats.appended, 0u);
}

TEST(FdGraphUnitTest, NoFdsMeansCompleteGraph) {
  BlockchainDatabase db = MakeIndOnlyDb();
  ASSERT_TRUE(db.AddPending(Parent(1)).ok());
  ASSERT_TRUE(db.AddPending(Parent(2)).ok());
  ASSERT_TRUE(db.AddPending(Child(1)).ok());
  FdGraph fd_graph(db);
  EXPECT_EQ(fd_graph.num_conflict_pairs(), 0u);
  EXPECT_EQ(fd_graph.valid_nodes().Count(), 3u);
  EXPECT_EQ(fd_graph.graph().CountEdges(), 3u);  // K3.
}

TEST(FdGraphUnitTest, AppliedAndDiscardedExcluded) {
  BlockchainDatabase db = MakeIndOnlyDb();
  auto a = db.AddPending(Parent(1));
  auto b = db.AddPending(Parent(2));
  auto c = db.AddPending(Parent(3));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(db.ApplyPending(*a).ok());
  ASSERT_TRUE(db.DiscardPending(*b).ok());
  FdGraph fd_graph(db);
  EXPECT_FALSE(fd_graph.valid_nodes().Test(*a));
  EXPECT_FALSE(fd_graph.valid_nodes().Test(*b));
  EXPECT_TRUE(fd_graph.valid_nodes().Test(*c));
}

TEST(NetworkUnitTest, OutOfOrderBlocksAreOrphanBufferedAndApplied) {
  net::NetworkParams params;
  params.num_nodes = 6;
  params.extra_edges = 0;  // Ring: multi-hop propagation.
  params.min_latency = 1.0;
  params.max_latency = 1.0;
  params.seed = 3;
  net::NetworkSimulator net(params);

  bitcoin::MinerPolicy policy;
  // Mine two blocks back-to-back at node 0 without letting gossip settle:
  // block 2's announcements race block 1's around the ring.
  ASSERT_TRUE(net.MineAt(0, policy).ok());
  net.RunUntil(net.now() + 1.0);  // Block 1 reaches the direct neighbours.
  ASSERT_TRUE(net.MineAt(0, policy).ok());
  net.Run();
  EXPECT_TRUE(net.ChainsConsistent());
  for (net::NodeId v = 0; v < net.num_nodes(); ++v) {
    EXPECT_EQ(net.node(v).chain().height(), 2u) << v;
  }
}

}  // namespace
}  // namespace bcdb
