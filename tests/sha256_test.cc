#include <gtest/gtest.h>

#include <string>

#include "bitcoin/sha256.h"

namespace bcdb {
namespace {

std::string HexOf(std::string_view data) {
  return Sha256::ToHex(Sha256::Hash(data));
}

// FIPS 180-4 / NIST test vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HexOf(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HexOf("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(HexOf("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.Update(chunk);
  EXPECT_EQ(Sha256::ToHex(hasher.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, ExactBlockBoundary) {
  // 64 bytes: padding spills into a second block.
  EXPECT_EQ(HexOf(std::string(64, 'x')),
            Sha256::ToHex(Sha256::Hash(std::string(64, 'x'))));
  // 55 and 56 bytes straddle the length-field boundary.
  EXPECT_NE(HexOf(std::string(55, 'y')), HexOf(std::string(56, 'y')));
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  Sha256 hasher;
  for (char c : data) hasher.Update(&c, 1);
  EXPECT_EQ(Sha256::ToHex(hasher.Finish()), HexOf(data));
}

TEST(Sha256Test, ResetReuses) {
  Sha256 hasher;
  hasher.Update("junk");
  (void)hasher.Finish();
  hasher.Reset();
  hasher.Update("abc");
  EXPECT_EQ(Sha256::ToHex(hasher.Finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, ToId63NonNegativeAndStable) {
  const auto digest = Sha256::Hash("abc");
  const std::int64_t id = Sha256::ToId63(digest);
  EXPECT_GE(id, 0);
  EXPECT_EQ(id, Sha256::ToId63(Sha256::Hash("abc")));
  EXPECT_NE(id, Sha256::ToId63(Sha256::Hash("abd")));
}

}  // namespace
}  // namespace bcdb
