// WAL framing, sync policies, torn-tail truncation, and WAL-driven
// DurableStore recovery (replay, rotation, degraded modes).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "storage/durable_store.h"
#include "storage/wal.h"
#include "storage_test_util.h"

namespace bcdb {
namespace {

using storage::DurableStore;
using storage::DurableStoreOptions;
using storage::ScanWal;
using storage::SyncPolicy;
using storage::TruncateWal;
using storage::WalScan;
using storage::WalWriter;
using storage_test::ExpectEquivalent;
using storage_test::FileSize;
using storage_test::FlipByte;
using storage_test::ListFilesWithSuffix;
using storage_test::MakeTestCatalog;
using storage_test::ScratchDir;
using storage_test::TruncateFileBy;

TEST(WalWriterTest, AppendedRecordsScanBackInOrder) {
  ScratchDir dir;
  const std::string path = dir.Sub("wal");
  const std::vector<std::string> payloads = {
      "first", "", std::string(1000, 'x'), std::string("\x00\xff\x01", 3)};
  {
    auto writer = WalWriter::Open(path, SyncPolicy::kNone);
    ASSERT_TRUE(writer.ok()) << writer.status();
    for (const std::string& p : payloads) {
      ASSERT_TRUE(writer->Append(p).ok());
    }
    EXPECT_EQ(writer->records(), payloads.size());
    ASSERT_TRUE(writer->Close().ok());
  }
  StatusOr<WalScan> scan = ScanWal(path);
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_EQ(scan->records, payloads);
  EXPECT_FALSE(scan->tail_corrupt);
  EXPECT_EQ(scan->valid_prefix, FileSize(path));
}

TEST(WalWriterTest, MissingFileScansEmpty) {
  ScratchDir dir;
  StatusOr<WalScan> scan = ScanWal(dir.Sub("never-written"));
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_TRUE(scan->records.empty());
  EXPECT_EQ(scan->valid_prefix, 0u);
  EXPECT_FALSE(scan->tail_corrupt);
}

TEST(WalWriterTest, SyncPolicyGovernsFsyncCount) {
  ScratchDir dir;
  {
    auto writer = WalWriter::Open(dir.Sub("every"), SyncPolicy::kEveryRecord);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(writer->Append("payload").ok());
    EXPECT_EQ(writer->syncs(), 5u);
  }
  {
    auto writer = WalWriter::Open(dir.Sub("none"), SyncPolicy::kNone);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(writer->Append("payload").ok());
    EXPECT_EQ(writer->syncs(), 0u);
    // An explicit Sync still works under kNone...
    ASSERT_TRUE(writer->Sync().ok());
    EXPECT_EQ(writer->syncs(), 1u);
    // ...and a Sync with nothing new pending is a no-op.
    ASSERT_TRUE(writer->Sync().ok());
    EXPECT_EQ(writer->syncs(), 1u);
  }
  {
    // Group commit: records smaller than the threshold batch into one sync.
    auto writer =
        WalWriter::Open(dir.Sub("group"), SyncPolicy::kGroup, /*group_bytes=*/256);
    ASSERT_TRUE(writer.ok());
    const std::string payload(100, 'p');  // ~112 framed bytes.
    ASSERT_TRUE(writer->Append(payload).ok());
    EXPECT_EQ(writer->syncs(), 0u);  // Below threshold: still buffered.
    ASSERT_TRUE(writer->Append(payload).ok());
    ASSERT_TRUE(writer->Append(payload).ok());
    EXPECT_GE(writer->syncs(), 1u);  // Threshold crossed at least once.
    EXPECT_LT(writer->syncs(), 3u);  // But NOT one sync per record.
  }
}

TEST(WalScanTest, TornTailStopsScanAndTruncates) {
  ScratchDir dir;
  const std::string path = dir.Sub("wal");
  {
    auto writer = WalWriter::Open(path, SyncPolicy::kNone);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(writer->Append("record-" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(writer->Close().ok());
  }
  const std::uint64_t full_size = FileSize(path);
  TruncateFileBy(path, 3);  // Tear the last record mid-payload.

  StatusOr<WalScan> scan = ScanWal(path);
  ASSERT_TRUE(scan.ok()) << scan.status();
  ASSERT_EQ(scan->records.size(), 3u);
  EXPECT_EQ(scan->records[2], "record-2");
  EXPECT_TRUE(scan->tail_corrupt);
  EXPECT_LT(scan->valid_prefix, full_size);

  // Recovery chops the tail; the file then scans clean and appends resume.
  ASSERT_TRUE(TruncateWal(path, scan->valid_prefix).ok());
  StatusOr<WalScan> rescan = ScanWal(path);
  ASSERT_TRUE(rescan.ok());
  EXPECT_EQ(rescan->records.size(), 3u);
  EXPECT_FALSE(rescan->tail_corrupt);

  auto writer = WalWriter::Open(path, SyncPolicy::kNone);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append("record-3b").ok());
  ASSERT_TRUE(writer->Close().ok());
  StatusOr<WalScan> final_scan = ScanWal(path);
  ASSERT_TRUE(final_scan.ok());
  ASSERT_EQ(final_scan->records.size(), 4u);
  EXPECT_EQ(final_scan->records[3], "record-3b");
}

TEST(WalScanTest, InteriorBitFlipStopsAtTheCorruptRecord) {
  ScratchDir dir;
  const std::string path = dir.Sub("wal");
  std::uint64_t second_record_offset = 0;
  {
    auto writer = WalWriter::Open(path, SyncPolicy::kNone);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(std::string(50, 'a')).ok());
    second_record_offset = writer->physical_bytes();
    ASSERT_TRUE(writer->Append(std::string(50, 'b')).ok());
    ASSERT_TRUE(writer->Append(std::string(50, 'c')).ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  FlipByte(path, second_record_offset + 20);  // Inside record 1's payload.

  StatusOr<WalScan> scan = ScanWal(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 1u);  // Record 2 is unreachable.
  EXPECT_EQ(scan->records[0], std::string(50, 'a'));
  EXPECT_TRUE(scan->tail_corrupt);
  EXPECT_EQ(scan->valid_prefix, second_record_offset);
}

// ---- DurableStore WAL recovery --------------------------------------------

/// Mirrors a scripted workload into both databases (one durable, one
/// in-memory reference).
void RunWorkloadOn(BlockchainDatabase* db) {
  ASSERT_TRUE(db->InsertCurrent("R", Tuple({Value::Int(1), Value::Int(2)})).ok());
  Transaction t1("t1");
  t1.Add("R", Tuple({Value::Int(3), Value::Int(4)}));
  t1.Add("S", Tuple({Value::Int(3), Value::Int(5)}));
  auto id1 = db->AddPending(t1);
  ASSERT_TRUE(id1.ok());
  Transaction t2("t2");
  t2.Add("S", Tuple({Value::Int(6), Value::Int(7)}));
  auto id2 = db->AddPending(t2);
  ASSERT_TRUE(id2.ok());
  ASSERT_TRUE(db->ApplyPending(*id1).ok());
  ASSERT_TRUE(db->DiscardPending(*id2).ok());
  ASSERT_TRUE(db->InsertCurrent("S", Tuple({Value::Int(8), Value::Int(9)})).ok());
}

TEST(DurableStoreWalTest, RecoversFromWalAloneWithoutAnyCheckpoint) {
  ScratchDir dir;
  const std::string path = dir.Sub("db");
  BlockchainDatabase reference = [&] {
    auto db = BlockchainDatabase::Create(MakeTestCatalog(), ConstraintSet{});
    EXPECT_TRUE(db.ok());
    RunWorkloadOn(&*db);
    return std::move(*db);
  }();
  {
    auto store = DurableStore::Open(path, MakeTestCatalog());
    ASSERT_TRUE(store.ok());
    auto db = (*store)->Recover(ConstraintSet{});
    ASSERT_TRUE(db.ok());
    db->AttachDurabilitySink(store->get());
    ASSERT_NO_FATAL_FAILURE(RunWorkloadOn(&*db));
    ASSERT_TRUE((*store)->Sync().ok());
    ASSERT_TRUE((*store)->status().ok());
  }
  ASSERT_TRUE(ListFilesWithSuffix(path, ".seg").empty());

  auto store = DurableStore::Open(path, MakeTestCatalog());
  ASSERT_TRUE(store.ok());
  auto recovered = (*store)->Recover(ConstraintSet{});
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ExpectEquivalent(reference, *recovered);
  EXPECT_EQ((*store)->stats().recovered_wal_records,
            reference.mutations().end_seq());
  EXPECT_FALSE((*store)->stats().degraded_recovery);
}

TEST(DurableStoreWalTest, RecoversCheckpointPlusWalSuffix) {
  ScratchDir dir;
  const std::string path = dir.Sub("db");
  BlockchainDatabase reference = [&] {
    auto db = BlockchainDatabase::Create(MakeTestCatalog(), ConstraintSet{});
    EXPECT_TRUE(db.ok());
    RunWorkloadOn(&*db);
    RunWorkloadOn(&*db);
    return std::move(*db);
  }();
  {
    auto store = DurableStore::Open(path, MakeTestCatalog());
    ASSERT_TRUE(store.ok());
    auto db = (*store)->Recover(ConstraintSet{});
    ASSERT_TRUE(db.ok());
    db->AttachDurabilitySink(store->get());
    ASSERT_NO_FATAL_FAILURE(RunWorkloadOn(&*db));
    ASSERT_TRUE((*store)->Checkpoint(*db).ok());
    ASSERT_NO_FATAL_FAILURE(RunWorkloadOn(&*db));  // Suffix past checkpoint.
    ASSERT_TRUE((*store)->Sync().ok());
  }
  auto store = DurableStore::Open(path, MakeTestCatalog());
  ASSERT_TRUE(store.ok());
  auto recovered = (*store)->Recover(ConstraintSet{});
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ExpectEquivalent(reference, *recovered);
  EXPECT_GT((*store)->stats().recovered_snapshot_tuples, 0u);
  EXPECT_GT((*store)->stats().recovered_wal_records, 0u);
  EXPECT_LT((*store)->stats().recovered_wal_records,
            reference.mutations().end_seq());
}

TEST(DurableStoreWalTest, CheckpointRotatesTheActiveWalFile) {
  ScratchDir dir;
  const std::string path = dir.Sub("db");
  auto store = DurableStore::Open(path, MakeTestCatalog());
  ASSERT_TRUE(store.ok());
  auto db = (*store)->Recover(ConstraintSet{});
  ASSERT_TRUE(db.ok());
  db->AttachDurabilitySink(store->get());

  ASSERT_NO_FATAL_FAILURE(RunWorkloadOn(&*db));
  const std::vector<std::string> before = ListFilesWithSuffix(path, ".log");
  ASSERT_EQ(before.size(), 1u);
  ASSERT_TRUE((*store)->Checkpoint(*db).ok());
  ASSERT_NO_FATAL_FAILURE(RunWorkloadOn(&*db));
  ASSERT_TRUE((*store)->Sync().ok());

  const std::vector<std::string> after = ListFilesWithSuffix(path, ".log");
  ASSERT_EQ(after.size(), 2u);  // Old span retained (fallback), new active.
  EXPECT_EQ(after[0], before[0]);
  EXPECT_NE(after[1], before[0]);
}

TEST(DurableStoreWalTest, TornWalTailIsTruncatedAndRecoveryContinues) {
  ScratchDir dir;
  const std::string path = dir.Sub("db");
  {
    auto store = DurableStore::Open(path, MakeTestCatalog());
    ASSERT_TRUE(store.ok());
    auto db = (*store)->Recover(ConstraintSet{});
    ASSERT_TRUE(db.ok());
    db->AttachDurabilitySink(store->get());
    ASSERT_NO_FATAL_FAILURE(RunWorkloadOn(&*db));
    ASSERT_TRUE((*store)->Sync().ok());
  }
  const std::vector<std::string> wals = ListFilesWithSuffix(path, ".log");
  ASSERT_EQ(wals.size(), 1u);
  TruncateFileBy(wals[0], 2);  // Tear the final record.

  BlockchainDatabase reference = [&] {
    auto db = BlockchainDatabase::Create(MakeTestCatalog(), ConstraintSet{});
    EXPECT_TRUE(db.ok());
    RunWorkloadOn(&*db);
    return std::move(*db);
  }();
  const std::uint64_t full_seq = reference.mutations().end_seq();

  auto store = DurableStore::Open(path, MakeTestCatalog());
  ASSERT_TRUE(store.ok());
  auto recovered = (*store)->Recover(ConstraintSet{});
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  // One event lost to the tear; a torn FINAL record is normal crash
  // residue, not degradation.
  EXPECT_EQ(recovered->mutations().end_seq(), full_seq - 1);
  EXPECT_FALSE((*store)->stats().degraded_recovery);

  // The store stays appendable after the truncation.
  recovered->AttachDurabilitySink(store->get());
  ASSERT_TRUE(
      recovered->InsertCurrent("R", Tuple({Value::Int(50), Value::Int(5)})).ok());
  ASSERT_TRUE((*store)->Sync().ok());
  ASSERT_TRUE((*store)->status().ok());
}

TEST(DurableStoreWalTest, InteriorCorruptionRecoversTheValidPrefix) {
  ScratchDir dir;
  const std::string path = dir.Sub("db");
  {
    auto store = DurableStore::Open(path, MakeTestCatalog());
    ASSERT_TRUE(store.ok());
    auto db = (*store)->Recover(ConstraintSet{});
    ASSERT_TRUE(db.ok());
    db->AttachDurabilitySink(store->get());
    ASSERT_NO_FATAL_FAILURE(RunWorkloadOn(&*db));
    ASSERT_TRUE((*store)->Sync().ok());
  }
  const std::vector<std::string> wals = ListFilesWithSuffix(path, ".log");
  ASSERT_EQ(wals.size(), 1u);
  FlipByte(wals[0], FileSize(wals[0]) / 2);  // Mid-log, not the tail.

  auto store = DurableStore::Open(path, MakeTestCatalog());
  ASSERT_TRUE(store.ok());
  auto recovered = (*store)->Recover(ConstraintSet{});
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  // Only the prefix survives; the database is a valid point-in-time image.
  BlockchainDatabase reference = [&] {
    auto db = BlockchainDatabase::Create(MakeTestCatalog(), ConstraintSet{});
    EXPECT_TRUE(db.ok());
    RunWorkloadOn(&*db);
    return std::move(*db);
  }();
  EXPECT_LT(recovered->mutations().end_seq(), reference.mutations().end_seq());

  // A third open recovers exactly the same prefix image (recovery is
  // idempotent after the degraded cleanup).
  const std::uint64_t prefix_seq = recovered->mutations().end_seq();
  store->reset();
  auto again = DurableStore::Open(path, MakeTestCatalog());
  ASSERT_TRUE(again.ok());
  auto recovered2 = (*again)->Recover(ConstraintSet{});
  ASSERT_TRUE(recovered2.ok()) << recovered2.status();
  EXPECT_EQ(recovered2->mutations().end_seq(), prefix_seq);
  ExpectEquivalent(*recovered, *recovered2);
}

TEST(DurableStoreWalTest, PoisonedReplaySalvageSurvivesReopen) {
  ScratchDir dir;
  const std::string path = dir.Sub("db");
  {
    auto store = DurableStore::Open(path, MakeTestCatalog());
    ASSERT_TRUE(store.ok());
    auto db = (*store)->Recover(ConstraintSet{});
    ASSERT_TRUE(db.ok());
    db->AttachDurabilitySink(store->get());
    ASSERT_NO_FATAL_FAILURE(RunWorkloadOn(&*db));
    ASSERT_TRUE((*store)->Checkpoint(*db).ok());  // Rotates: two WAL spans.
  }
  // Lose every checkpoint and corrupt the FIRST (non-final) WAL span:
  // replay stops at the bad record and the later span can never apply.
  for (const std::string& seg : ListFilesWithSuffix(path, ".seg")) {
    std::filesystem::remove(seg);
  }
  const std::vector<std::string> wals = ListFilesWithSuffix(path, ".log");
  ASSERT_EQ(wals.size(), 2u);
  FlipByte(wals[0], FileSize(wals[0]) / 2);

  auto store = DurableStore::Open(path, MakeTestCatalog());
  ASSERT_TRUE(store.ok());
  auto salvaged = (*store)->Recover(ConstraintSet{});
  ASSERT_TRUE(salvaged.ok()) << salvaged.status();
  EXPECT_TRUE((*store)->stats().degraded_recovery);
  EXPECT_GT(salvaged->mutations().end_seq(), 0u);

  // The salvage must be persisted (as a checkpoint) before the poisoned
  // WAL files are dropped — a second open must not come up empty.
  store->reset();
  auto again = DurableStore::Open(path, MakeTestCatalog());
  ASSERT_TRUE(again.ok());
  auto recovered = (*again)->Recover(ConstraintSet{});
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->mutations().end_seq(), salvaged->mutations().end_seq());
  ExpectEquivalent(*salvaged, *recovered);
}

}  // namespace
}  // namespace bcdb
