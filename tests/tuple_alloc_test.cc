// Asserts the hot lookup path — projecting a key from a stored tuple and
// probing a hash index with it — performs zero heap allocations. Runs in
// its own binary because it overrides the global allocation functions to
// count; the counting wrappers delegate to malloc/free, which sanitizer
// builds intercept as usual.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "relational/database.h"
#include "relational/relation.h"
#include "relational/tuple.h"

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace bcdb {
namespace {

class AllocationGuard {
 public:
  AllocationGuard() : start_(g_allocations.load()) {}
  std::size_t count() const { return g_allocations.load() - start_; }

 private:
  std::size_t start_;
};

Catalog MakeCatalog() {
  Catalog catalog;
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "R", {Attribute{"a", ValueType::kInt, false},
                            Attribute{"b", ValueType::kString, false},
                            Attribute{"c", ValueType::kInt, false}}))
                  .ok());
  return catalog;
}

TEST(TupleAllocTest, SmallTupleConstructionFromIdsDoesNotAllocate) {
  const Tuple source({Value::Int(1), Value::Str("x"), Value::Int(2)});
  const std::vector<std::size_t> positions{2, 0};
  AllocationGuard guard;
  const Tuple copy = source;                    // Id copy, arity <= 4.
  const Tuple gathered = source.Project(positions);
  EXPECT_EQ(guard.count(), 0u) << "small tuples must stay inline";
  EXPECT_EQ(copy, source);
  EXPECT_EQ(gathered.arity(), 2u);
}

TEST(TupleAllocTest, IndexLookupPathDoesNotAllocate) {
  Database db(MakeCatalog());
  Relation& rel = db.relation(0);
  for (int i = 0; i < 64; ++i) {
    rel.Insert(Tuple({Value::Int(i % 8), Value::Str("s" + std::to_string(i)),
                      Value::Int(i)}),
               kBaseOwner);
  }
  const std::vector<std::size_t> key_positions{0};
  const std::size_t index_id = rel.GetOrBuildIndex(key_positions);
  const WorldView base = db.BaseView();
  const Tuple& probe_source = rel.tuple(0);

  std::size_t hits = 0;
  AllocationGuard guard;
  for (int round = 0; round < 100; ++round) {
    const ProjectionKey key = probe_source.ProjectKey(key_positions);
    for (TupleId id : rel.IndexLookup(index_id, key)) {
      if (rel.IsVisible(id, base)) ++hits;
    }
    if (rel.ContainsVisible(key, base)) ++hits;
  }
  EXPECT_EQ(guard.count(), 0u)
      << "projection-key index probes must not touch the heap";
  EXPECT_GT(hits, 0u);
}

TEST(TupleAllocTest, FdStyleBucketProbeDoesNotAllocate) {
  // The FdGraph conflict probe: project a determinant, look it up in an
  // id-keyed bucket map. With heterogeneous lookup the probe side never
  // materializes a Tuple.
  const std::vector<std::size_t> determinant{0, 2};
  std::unordered_map<Tuple, int, TupleHash, TupleEq> buckets;
  std::vector<Tuple> tuples;
  for (int i = 0; i < 32; ++i) {
    tuples.push_back(Tuple(
        {Value::Int(i % 4), Value::Str("d" + std::to_string(i)),
         Value::Int(i % 3)}));
    buckets[tuples.back().Project(determinant)] += 1;
  }
  std::size_t found = 0;
  AllocationGuard guard;
  for (const Tuple& t : tuples) {
    auto it = buckets.find(t.ProjectKey(determinant));
    if (it != buckets.end()) found += static_cast<std::size_t>(it->second);
  }
  EXPECT_EQ(guard.count(), 0u) << "bucket probes must not touch the heap";
  EXPECT_GT(found, 0u);
}

}  // namespace
}  // namespace bcdb
