#include "util/mutex.h"

#include <thread>

#include <gtest/gtest.h>

#include "util/thread_annotations.h"

namespace bcdb {
namespace {

TEST(LockRankTest, NamesCoverEveryRank) {
  EXPECT_STREQ(LockRankName(LockRank::kMutationListeners),
               "kMutationListeners");
  EXPECT_STREQ(LockRankName(LockRank::kMonitor), "kMonitor");
  EXPECT_STREQ(LockRankName(LockRank::kDurableStore), "kDurableStore");
  EXPECT_STREQ(LockRankName(LockRank::kMutationLog), "kMutationLog");
  EXPECT_STREQ(LockRankName(LockRank::kEnginePool), "kEnginePool");
  EXPECT_STREQ(LockRankName(LockRank::kThreadPoolQueue), "kThreadPoolQueue");
  EXPECT_STREQ(LockRankName(LockRank::kThreadPoolWake), "kThreadPoolWake");
  EXPECT_STREQ(LockRankName(LockRank::kValuePool), "kValuePool");
}

/// Takes and drops `mu` from whatever thread calls it; true if the
/// acquisition succeeded. Opted out of the static analysis: the
/// conditional unlock is exactly the shape the analysis (rightly)
/// distrusts in production code.
bool TryLockAndRelease(Mutex& mu) BCDB_NO_THREAD_SAFETY_ANALYSIS {
  if (!mu.TryLock()) return false;
  mu.Unlock();
  return true;
}

TEST(MutexTest, TryLockContendedAndUncontended) {
  Mutex mu(LockRank::kMonitor);
  {
    MutexLock lock(mu);
    std::thread other([&mu] { EXPECT_FALSE(TryLockAndRelease(mu)); });
    other.join();
  }
  std::thread other([&mu] { EXPECT_TRUE(TryLockAndRelease(mu)); });
  other.join();
  EXPECT_TRUE(TryLockAndRelease(mu));
}

TEST(MutexTest, RankAccessor) {
  Mutex mu(LockRank::kMutationLog);
  EXPECT_EQ(mu.rank(), LockRank::kMutationLog);
  SharedMutex smu(LockRank::kValuePool);
  EXPECT_EQ(smu.rank(), LockRank::kValuePool);
}

TEST(SharedMutexTest, ReadersShareWritersExclude) {
  SharedMutex mu(LockRank::kMonitor);
  mu.ReaderLock();
  // A second reader (from another thread) must get in while the first
  // reader is held — join() would hang forever if readers excluded each
  // other.
  std::thread reader([&mu] {
    SharedReaderLock lock(mu);
  });
  reader.join();
  mu.ReaderUnlock();

  SharedMutexLock writer(mu);
  mu.AssertHeld();
}

TEST(CondVarTest, WaitReleasesLockAndWakesOnPredicate) {
  Mutex mu(LockRank::kMonitor);
  CondVar cv;
  bool ready = false;
  bool observed = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    cv.Wait(mu, [&ready] { return ready; });
    observed = ready;
  });
  {
    // If Wait held the native mutex while blocked, this acquisition would
    // deadlock instead of letting us flip the predicate.
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();
  EXPECT_TRUE(observed);
}

#if defined(BCDB_DEBUG_LOCKS)

TEST(MutexTest, HeldStackBookkeeping) {
  Mutex low(LockRank::kMonitor);
  Mutex high(LockRank::kValuePool);
  EXPECT_EQ(lock_debug::NumHeldByCurrentThread(), 0u);
  EXPECT_FALSE(lock_debug::HeldByCurrentThread(&low));
  {
    MutexLock outer(low);
    EXPECT_TRUE(lock_debug::HeldByCurrentThread(&low));
    EXPECT_EQ(lock_debug::NumHeldByCurrentThread(), 1u);
    {
      MutexLock inner(high);  // Ascending ranks: legal nesting.
      EXPECT_TRUE(lock_debug::HeldByCurrentThread(&high));
      EXPECT_EQ(lock_debug::NumHeldByCurrentThread(), 2u);
    }
    EXPECT_FALSE(lock_debug::HeldByCurrentThread(&high));
    EXPECT_EQ(lock_debug::NumHeldByCurrentThread(), 1u);
  }
  EXPECT_EQ(lock_debug::NumHeldByCurrentThread(), 0u);
}

TEST(MutexTest, HeldStackIsPerThread) {
  Mutex mu(LockRank::kMonitor);
  MutexLock lock(mu);
  std::thread other([&mu] {
    EXPECT_FALSE(lock_debug::HeldByCurrentThread(&mu));
    EXPECT_EQ(lock_debug::NumHeldByCurrentThread(), 0u);
  });
  other.join();
}

/// The violating sequences live in free functions opted out of the static
/// analysis — clang would (correctly) reject them at compile time, and the
/// point here is to pin the *runtime* checker's behavior for gcc builds.
void AcquireDescendingRanks() BCDB_NO_THREAD_SAFETY_ANALYSIS {
  Mutex high(LockRank::kValuePool);
  Mutex low(LockRank::kMonitor);
  high.Lock();
  low.Lock();  // Rank descent: must abort before deadlock can form.
}

void AcquireSameRankTwice() BCDB_NO_THREAD_SAFETY_ANALYSIS {
  Mutex a(LockRank::kThreadPoolQueue);
  Mutex b(LockRank::kThreadPoolQueue);
  a.Lock();
  b.Lock();  // Same rank held together: forbidden (order is undefined).
}

void AcquireRecursively() BCDB_NO_THREAD_SAFETY_ANALYSIS {
  Mutex mu(LockRank::kMonitor);
  mu.Lock();
  mu.Lock();
}

void ReleaseWithoutHolding() BCDB_NO_THREAD_SAFETY_ANALYSIS {
  Mutex mu(LockRank::kMonitor);
  mu.Unlock();
}

TEST(MutexDeathTest, RankDescentAborts) {
  EXPECT_DEATH(AcquireDescendingRanks(), "ranks must strictly increase");
}

TEST(MutexDeathTest, SameRankNestingAborts) {
  EXPECT_DEATH(AcquireSameRankTwice(), "ranks must strictly increase");
}

TEST(MutexDeathTest, RecursiveAcquisitionAborts) {
  EXPECT_DEATH(AcquireRecursively(), "recursive acquisition");
}

TEST(MutexDeathTest, ReleaseNotHeldAborts) {
  EXPECT_DEATH(ReleaseWithoutHolding(), "does not hold");
}

TEST(MutexDeathTest, AssertHeldAbortsWhenNotHeld) {
  Mutex mu(LockRank::kMonitor);
  EXPECT_DEATH(mu.AssertHeld(), "AssertHeld failed");
}

TEST(MutexTest, AssertHeldPassesWhenHeld) {
  Mutex mu(LockRank::kMonitor);
  MutexLock lock(mu);
  mu.AssertHeld();  // Must not abort.
}

TEST(MutexDeathTest, DiagnosticNamesTheDesignDoc) {
  // The abort message must point at the hierarchy documentation — it is
  // the first thing a developer hits when they violate the order.
  EXPECT_DEATH(AcquireDescendingRanks(), "DESIGN.md section 16");
}

#endif  // BCDB_DEBUG_LOCKS

}  // namespace
}  // namespace bcdb
