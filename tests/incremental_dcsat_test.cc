#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/dcsat.h"
#include "core/monitor.h"
#include "query/parser.h"
#include "util/rng.h"

namespace bcdb {
namespace {

using Verdict = ConstraintMonitor::Verdict;

/// Differential testing of the incremental steady-state maintenance: a
/// long-lived engine/monitor that patches its fd graph, Θ_I components and
/// validity bits from the mutation-delta log must be *bit-identical* — same
/// graph, same verdicts, same witnesses, same clique counts — to a
/// from-scratch build at every step of a randomized
/// AddPending/ApplyPending/DiscardPending/Poll interleaving.

Catalog MakeCatalog() {
  Catalog catalog;
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "R", {Attribute{"a", ValueType::kInt, false},
                            Attribute{"b", ValueType::kInt, false}}))
                  .ok());
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "S", {Attribute{"x", ValueType::kInt, false},
                            Attribute{"y", ValueType::kInt, true}}))
                  .ok());
  return catalog;
}

BlockchainDatabase MakeInstance(Xoshiro256& rng, bool with_ind) {
  Catalog catalog = MakeCatalog();
  ConstraintSet constraints;
  auto key = FunctionalDependency::Key(catalog, "R", {"a"});
  EXPECT_TRUE(key.ok());
  constraints.AddFd(std::move(*key));
  if (with_ind) {
    auto ind = InclusionDependency::Create(catalog, "S", {"x"}, "R", {"a"});
    EXPECT_TRUE(ind.ok());
    constraints.AddInd(std::move(*ind));
  }
  auto db =
      BlockchainDatabase::Create(std::move(catalog), std::move(constraints));
  EXPECT_TRUE(db.ok());

  const std::size_t base_r = rng.NextBelow(3);
  for (std::size_t a = 0; a < base_r; ++a) {
    EXPECT_TRUE(db->InsertCurrent(
                      "R", Tuple({Value::Int(static_cast<std::int64_t>(a)),
                                  Value::Int(rng.NextInRange(0, 3))}))
                    .ok());
  }
  EXPECT_TRUE(db->ValidateCurrentState().ok());
  return std::move(*db);
}

/// Small domains force frequent FD collisions (cascades on apply) and
/// shared Θ-buckets (non-trivial component structure).
Transaction RandomTxn(Xoshiro256& rng, std::size_t ordinal) {
  Transaction txn("P" + std::to_string(ordinal));
  const std::size_t num_tuples = 1 + rng.NextBelow(2);
  for (std::size_t i = 0; i < num_tuples; ++i) {
    if (rng.NextBool(0.5)) {
      txn.Add("R", Tuple({Value::Int(rng.NextInRange(0, 5)),
                          Value::Int(rng.NextInRange(0, 3))}));
    } else {
      txn.Add("S", Tuple({Value::Int(rng.NextInRange(0, 5)),
                          Value::Int(rng.NextInRange(0, 3))}));
    }
  }
  return txn;
}

const char* kEngineQueries[] = {
    "q() :- R(x, y)",
    "q() :- R(0, y)",
    "q() :- R(x, y), S(x, z)",
    "q() :- R(x, 1), S(x, 2)",
    "q() :- R(x, y), S(x, z), y < z",
    "[q(sum(y)) :- S(x, y)] >= 4",
};

const char* kMonitorQueries[] = {
    "q() :- R(x, y)",
    "q() :- R(x, 2)",
    "q() :- R(x, y), S(x, z)",
    "q() :- S(3, y)",
};

SteadyStateOptions ScratchOptions() {
  SteadyStateOptions options;
  options.incremental = false;
  return options;
}

/// The maintained steady-state structures vs a from-scratch build: same
/// validity bits, same adjacency, same conflict count, and — for every
/// query under two option sets — the same full result.
void ExpectEngineEquivalence(DcSatEngine& incremental, BlockchainDatabase& db,
                             const std::string& context) {
  DcSatEngine scratch(&db, ScratchOptions());
  const FdGraph& inc_graph = incremental.PrepareSteadyState();
  const FdGraph& scr_graph = scratch.PrepareSteadyState();

  ASSERT_EQ(inc_graph.valid_nodes(), scr_graph.valid_nodes()) << context;
  ASSERT_EQ(inc_graph.num_conflict_pairs(), scr_graph.num_conflict_pairs())
      << context;
  ASSERT_EQ(inc_graph.graph().num_vertices(), scr_graph.graph().num_vertices())
      << context;
  for (std::size_t v = 0; v < inc_graph.graph().num_vertices(); ++v) {
    ASSERT_EQ(inc_graph.graph().Neighbors(v), scr_graph.graph().Neighbors(v))
        << context << " vertex " << v;
  }

  DcSatOptions default_options;
  DcSatOptions search_options;  // Force the clique search everywhere.
  search_options.use_precheck = false;
  search_options.use_covers = false;
  search_options.use_tractable_fragments = false;
  for (const char* text : kEngineQueries) {
    auto q = ParseDenialConstraint(text);
    ASSERT_TRUE(q.ok()) << text;
    for (const DcSatOptions& options : {default_options, search_options}) {
      auto inc = incremental.Check(*q, options);
      auto scr = scratch.Check(*q, options);
      ASSERT_TRUE(inc.ok()) << context << " " << text;
      ASSERT_TRUE(scr.ok()) << context << " " << text;
      ASSERT_EQ(inc->satisfied, scr->satisfied) << context << " " << text;
      ASSERT_EQ(inc->witness, scr->witness) << context << " " << text;
      ASSERT_EQ(inc->stats.algorithm_used, scr->stats.algorithm_used)
          << context << " " << text;
      ASSERT_EQ(inc->stats.precheck_decided, scr->stats.precheck_decided)
          << context << " " << text;
      ASSERT_EQ(inc->stats.num_valid_nodes, scr->stats.num_valid_nodes)
          << context << " " << text;
      ASSERT_EQ(inc->stats.fd_conflict_pairs, scr->stats.fd_conflict_pairs)
          << context << " " << text;
      ASSERT_EQ(inc->stats.num_components, scr->stats.num_components)
          << context << " " << text;
      ASSERT_EQ(inc->stats.num_components_covered,
                scr->stats.num_components_covered)
          << context << " " << text;
      ASSERT_EQ(inc->stats.num_cliques, scr->stats.num_cliques)
          << context << " " << text;
      ASSERT_EQ(inc->stats.num_worlds_evaluated,
                scr->stats.num_worlds_evaluated)
          << context << " " << text;
    }
  }
}

/// The long-lived monitor (dirty-skipping, incremental engine) vs a fresh
/// monitor that evaluates everything from scratch.
void ExpectMonitorEquivalence(ConstraintMonitor& monitor,
                              const std::vector<MonitorHandle>& handles,
                              BlockchainDatabase& db,
                              const std::string& context) {
  ASSERT_TRUE(monitor.Poll().ok()) << context;
  ConstraintMonitor fresh(&db, MonitorOptions{.steady = ScratchOptions(),
                                              .dirty_tracking = false});
  std::vector<MonitorHandle> fresh_handles;
  for (const char* text : kMonitorQueries) {
    auto handle = fresh.Add(text, text);
    ASSERT_TRUE(handle.ok()) << context << " " << text;
    fresh_handles.push_back(*handle);
  }
  ASSERT_TRUE(fresh.Poll().ok()) << context;
  for (std::size_t i = 0; i < handles.size(); ++i) {
    ASSERT_EQ(monitor.verdict(handles[i]), fresh.verdict(fresh_handles[i]))
        << context << " " << kMonitorQueries[i];
  }
}

class IncrementalDcSatTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalDcSatTest, RandomMutationSequenceMatchesScratch) {
  for (bool with_ind : {false, true}) {
    Xoshiro256 rng(GetParam() * 2 + (with_ind ? 1 : 0));
    BlockchainDatabase db = MakeInstance(rng, with_ind);
    DcSatEngine engine(&db);  // Incremental maintenance on by default.
    ConstraintMonitor monitor(&db);
    std::vector<MonitorHandle> handles;
    for (const char* text : kMonitorQueries) {
      auto handle = monitor.Add(text, text);
      ASSERT_TRUE(handle.ok()) << text;
      handles.push_back(*handle);
    }

    // A few transactions before the engines first build, a dozen randomized
    // mutations after, differentially checked at every step.
    std::size_t next_ordinal = 0;
    std::vector<PendingId> live;
    const std::size_t initial = 2 + rng.NextBelow(3);
    for (std::size_t i = 0; i < initial; ++i) {
      auto id = db.AddPending(RandomTxn(rng, next_ordinal++));
      ASSERT_TRUE(id.ok());
      live.push_back(*id);
    }
    ExpectEngineEquivalence(engine, db, "initial");
    ExpectMonitorEquivalence(monitor, handles, db, "initial");

    for (int step = 0; step < 12; ++step) {
      const std::string context = "seed " + std::to_string(GetParam()) +
                                  " ind " + std::to_string(with_ind) +
                                  " step " + std::to_string(step);
      const std::size_t op = rng.NextBelow(3);
      if (op == 0 || live.empty()) {
        auto id = db.AddPending(RandomTxn(rng, next_ordinal++));
        ASSERT_TRUE(id.ok()) << context;
        live.push_back(*id);
      } else {
        const std::size_t pick = rng.NextBelow(live.size());
        const PendingId id = live[pick];
        if (op == 1 && db.ApplyPending(id).ok()) {
          // Applied (with possible cascade invalidations among survivors).
        } else {
          // Base-inconsistent transactions cannot apply; evict instead —
          // every step mutates, so every step exercises a delta batch.
          ASSERT_TRUE(db.DiscardPending(id).ok()) << context;
        }
        live.erase(live.begin() + pick);
      }
      ExpectEngineEquivalence(engine, db, context);
      ExpectMonitorEquivalence(monitor, handles, db, context);
    }

    // The long-lived consumers really took the delta path (one full build,
    // then incremental batches).
    EXPECT_GT(engine.steady_state_stats().incremental_batches, 0u);
    EXPECT_GT(monitor.engine().steady_state_stats().incremental_batches, 0u);
    EXPECT_EQ(engine.steady_state_stats().full_rebuilds, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalDcSatTest,
                         ::testing::Range<std::uint64_t>(0, 60));

class IncrementalBatchedDcSatTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalBatchedDcSatTest, BatchedMutationSequenceMatchesScratch) {
  // The same differential as above, but the consumers refresh only every K
  // mutations, so every delta batch carries multiple events — the
  // production shape (max_delta_events = 256), including an AddPending and
  // ApplyPending of one transaction inside a single batch, which must take
  // the applied-in-batch fallback rather than an unsound patch.
  for (bool with_ind : {false, true}) {
    Xoshiro256 rng(GetParam() * 2 + (with_ind ? 1 : 0));
    const std::size_t refresh_every = 2 + GetParam() % 4;  // K in [2, 5].
    BlockchainDatabase db = MakeInstance(rng, with_ind);
    DcSatEngine engine(&db);
    ConstraintMonitor monitor(&db);
    std::vector<MonitorHandle> handles;
    for (const char* text : kMonitorQueries) {
      auto handle = monitor.Add(text, text);
      ASSERT_TRUE(handle.ok()) << text;
      handles.push_back(*handle);
    }

    std::size_t next_ordinal = 0;
    std::vector<PendingId> live;
    const std::size_t initial = 2 + rng.NextBelow(3);
    for (std::size_t i = 0; i < initial; ++i) {
      auto id = db.AddPending(RandomTxn(rng, next_ordinal++));
      ASSERT_TRUE(id.ok());
      live.push_back(*id);
    }
    ExpectEngineEquivalence(engine, db, "initial");
    ExpectMonitorEquivalence(monitor, handles, db, "initial");

    for (std::size_t step = 0; step < 20; ++step) {
      const std::string context = "seed " + std::to_string(GetParam()) +
                                  " ind " + std::to_string(with_ind) +
                                  " K " + std::to_string(refresh_every) +
                                  " step " + std::to_string(step);
      const std::size_t op = rng.NextBelow(3);
      if (op == 0 || live.empty()) {
        auto id = db.AddPending(RandomTxn(rng, next_ordinal++));
        ASSERT_TRUE(id.ok()) << context;
        live.push_back(*id);
      } else {
        const std::size_t pick = rng.NextBelow(live.size());
        const PendingId id = live[pick];
        if (op == 1 && db.ApplyPending(id).ok()) {
          // Applied; when `id` entered in this same unchecked window, the
          // next refresh sees add+apply in one batch.
        } else {
          ASSERT_TRUE(db.DiscardPending(id).ok()) << context;
        }
        live.erase(live.begin() + pick);
      }
      if ((step + 1) % refresh_every == 0) {
        ExpectEngineEquivalence(engine, db, context);
        ExpectMonitorEquivalence(monitor, handles, db, context);
      }
    }
    ExpectEngineEquivalence(engine, db, "final");
    ExpectMonitorEquivalence(monitor, handles, db, "final");

    // Every refresh after the first build consumed a multi-event batch:
    // either patched incrementally or rejected by the applied-in-batch
    // guard — never by size or a trimmed log.
    const SteadyStateStats& stats = engine.steady_state_stats();
    EXPECT_GE(stats.incremental_batches + stats.fallbacks_applied_in_batch,
              20 / refresh_every)
        << "ind " << with_ind;
    EXPECT_EQ(stats.fallbacks_batch_too_large, 0u);
    EXPECT_EQ(stats.fallbacks_missed_events, 0u);
    EXPECT_EQ(stats.fallbacks_base_insert, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalBatchedDcSatTest,
                         ::testing::Range<std::uint64_t>(0, 30));

TEST(IncrementalFallbackTest, OversizedBatchFallsBackToFullRebuild) {
  Xoshiro256 rng(7);
  BlockchainDatabase db = MakeInstance(rng, true);
  SteadyStateOptions options;
  options.max_delta_events = 1;
  DcSatEngine engine(&db, options);
  engine.PrepareSteadyState();

  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(db.AddPending(RandomTxn(rng, i)).ok());
  }
  engine.PrepareSteadyState();
  EXPECT_EQ(engine.steady_state_stats().fallbacks_batch_too_large, 1u);
  EXPECT_EQ(engine.steady_state_stats().full_rebuilds, 2u);
  EXPECT_TRUE(engine.last_refresh().full_rebuild);
  ExpectEngineEquivalence(engine, db, "oversized batch");

  // A single follow-up mutation fits the budget again.
  ASSERT_TRUE(db.AddPending(RandomTxn(rng, 3)).ok());
  engine.PrepareSteadyState();
  EXPECT_EQ(engine.steady_state_stats().incremental_batches, 1u);
  EXPECT_FALSE(engine.last_refresh().full_rebuild);
  ExpectEngineEquivalence(engine, db, "follow-up delta");
}

TEST(IncrementalFallbackTest, BaseInsertHandledIncrementally) {
  // Base-state events published through the public API carry their tuple
  // payload, so the engine patches determinant buckets in place instead of
  // rebuilding.
  Xoshiro256 rng(8);
  BlockchainDatabase db = MakeInstance(rng, false);
  DcSatEngine engine(&db);
  engine.PrepareSteadyState();

  ASSERT_TRUE(
      db.InsertCurrent("R", Tuple({Value::Int(17), Value::Int(1)})).ok());
  engine.PrepareSteadyState();
  EXPECT_EQ(engine.steady_state_stats().fallbacks_base_insert, 0u);
  EXPECT_FALSE(engine.last_refresh().full_rebuild);
  ExpectEngineEquivalence(engine, db, "base insert");

  ASSERT_TRUE(
      db.RemoveCurrent("R", Tuple({Value::Int(17), Value::Int(1)})).ok());
  engine.PrepareSteadyState();
  EXPECT_EQ(engine.steady_state_stats().fallbacks_base_insert, 0u);
  EXPECT_FALSE(engine.last_refresh().full_rebuild);
  ExpectEngineEquivalence(engine, db, "base remove");
}

TEST(IncrementalFallbackTest, TrimmedLogFallsBackToFullRebuild) {
  Xoshiro256 rng(9);
  BlockchainDatabase db = MakeInstance(rng, false);
  DcSatEngine engine(&db);
  engine.PrepareSteadyState();

  // Blow past the mutation log's retention window; the engine's cursor is
  // trimmed out and the delta path must refuse to patch.
  SteadyStateOptions greedy;
  greedy.max_delta_events = MutationLog::kDefaultCapacity + 64;
  DcSatEngine greedy_engine(&db, greedy);
  greedy_engine.PrepareSteadyState();
  for (std::size_t i = 0; i < MutationLog::kDefaultCapacity + 8; ++i) {
    Transaction txn("Bulk" + std::to_string(i));
    txn.Add("S", Tuple({Value::Int(static_cast<std::int64_t>(i)),
                        Value::Int(1)}));
    ASSERT_TRUE(db.AddPending(txn).ok());
  }
  greedy_engine.PrepareSteadyState();
  EXPECT_EQ(greedy_engine.steady_state_stats().fallbacks_missed_events, 1u);
  EXPECT_TRUE(greedy_engine.last_refresh().full_rebuild);
}

TEST(IncrementalFallbackTest, SameBatchAddApplyFallsBackToFullRebuild) {
  // Regression: AddPending(j) and ApplyPending(j) inside one delta batch.
  // The replayed AddPendingNode(j) sees IsPending(j) == false and never
  // integrates j, so the kPendingApplied replay would compute an empty
  // cascade and leave j's still-pending FD-conflictors marked valid —
  // where a from-scratch build invalidates them. The engine must detect
  // the add+apply pair and rebuild.
  Xoshiro256 rng(13);
  BlockchainDatabase db = MakeInstance(rng, true);
  DcSatEngine engine(&db);

  Transaction bystander("bystander");
  bystander.Add("R", Tuple({Value::Int(40), Value::Int(2)}));
  auto bystander_id = db.AddPending(bystander);
  ASSERT_TRUE(bystander_id.ok());
  engine.PrepareSteadyState();  // Build once; the next batch is add+apply.

  Transaction winner("winner");
  winner.Add("R", Tuple({Value::Int(40), Value::Int(1)}));
  auto winner_id = db.AddPending(winner);
  ASSERT_TRUE(winner_id.ok());
  ASSERT_TRUE(db.ApplyPending(*winner_id).ok());

  const FdGraph& graph = engine.PrepareSteadyState();
  EXPECT_EQ(engine.steady_state_stats().fallbacks_applied_in_batch, 1u);
  EXPECT_TRUE(engine.last_refresh().full_rebuild);
  // The bystander now FD-conflicts with the applied tuple in the base.
  EXPECT_FALSE(graph.valid_nodes().Test(*bystander_id));
  ExpectEngineEquivalence(engine, db, "same-batch add+apply");
}

TEST(IncrementalCascadeTest, ApplyInvalidatesConflictorsAndTheirComponents) {
  // Deterministic cascade: two pending transactions claim the same R-key
  // with different payloads; applying one must invalidate the other in the
  // maintained structures exactly as a rebuild would.
  Xoshiro256 rng(11);
  BlockchainDatabase db = MakeInstance(rng, true);
  DcSatEngine engine(&db);

  Transaction winner("winner");
  winner.Add("R", Tuple({Value::Int(40), Value::Int(1)}));
  Transaction loser("loser");
  loser.Add("R", Tuple({Value::Int(40), Value::Int(2)}));
  loser.Add("S", Tuple({Value::Int(40), Value::Int(3)}));
  auto winner_id = db.AddPending(winner);
  auto loser_id = db.AddPending(loser);
  ASSERT_TRUE(winner_id.ok());
  ASSERT_TRUE(loser_id.ok());

  const FdGraph& before = engine.PrepareSteadyState();
  EXPECT_TRUE(before.valid_nodes().Test(*loser_id));
  EXPECT_EQ(before.num_conflict_pairs(), 1u);

  ASSERT_TRUE(db.ApplyPending(*winner_id).ok());
  const FdGraph& after = engine.PrepareSteadyState();
  EXPECT_FALSE(engine.last_refresh().full_rebuild);
  EXPECT_EQ(engine.last_refresh().cascade_invalidated,
            std::vector<PendingId>{*loser_id});
  EXPECT_FALSE(after.valid_nodes().Test(*loser_id));
  EXPECT_EQ(after.num_conflict_pairs(), 0u);
  ExpectEngineEquivalence(engine, db, "cascade");
}

}  // namespace
}  // namespace bcdb
