#include <gtest/gtest.h>

#include "relational/tuple.h"

namespace bcdb {
namespace {

TEST(TupleTest, ArityAndAccess) {
  Tuple t({Value::Int(1), Value::Str("x"), Value::Real(0.5)});
  EXPECT_EQ(t.arity(), 3u);
  EXPECT_EQ(t[0], Value::Int(1));
  EXPECT_EQ(t.at(1), Value::Str("x"));
}

TEST(TupleTest, Equality) {
  Tuple a({Value::Int(1), Value::Str("x")});
  Tuple b({Value::Int(1), Value::Str("x")});
  Tuple c({Value::Int(2), Value::Str("x")});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(TupleTest, CrossTypeNumericTupleEquality) {
  Tuple a({Value::Int(1)});
  Tuple b({Value::Real(1.0)});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(TupleTest, ProjectPreservesOrder) {
  Tuple t({Value::Int(10), Value::Int(20), Value::Int(30)});
  Tuple p = t.Project({2, 0});
  ASSERT_EQ(p.arity(), 2u);
  EXPECT_EQ(p[0], Value::Int(30));
  EXPECT_EQ(p[1], Value::Int(10));
}

TEST(TupleTest, ProjectEmpty) {
  Tuple t({Value::Int(1)});
  EXPECT_EQ(t.Project({}).arity(), 0u);
}

TEST(TupleTest, EmptyTuplesEqual) {
  EXPECT_EQ(Tuple(), Tuple({}));
}

TEST(TupleTest, ToString) {
  Tuple t({Value::Int(1), Value::Str("a")});
  EXPECT_EQ(t.ToString(), "(1, 'a')");
  EXPECT_EQ(Tuple().ToString(), "()");
}

TEST(TupleTest, ArityChangesHash) {
  Tuple a({Value::Int(1)});
  Tuple b({Value::Int(1), Value::Int(1)});
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace bcdb
