#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/dcsat.h"
#include "core/possible_worlds.h"
#include "query/analysis.h"
#include "query/compiled_query.h"
#include "query/parser.h"
#include "util/rng.h"

namespace bcdb {
namespace {

/// Randomized equivalence testing: on small random blockchain databases,
/// NaiveDCSat and OptDCSat (under every option combination) must agree with
/// the exhaustive possible-world oracle for every monotone constraint, and
/// the exhaustive algorithm must agree with a hand-rolled world scan for
/// non-monotone ones.

Catalog MakeCatalog() {
  Catalog catalog;
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "R", {Attribute{"a", ValueType::kInt, false},
                            Attribute{"b", ValueType::kInt, false}}))
                  .ok());
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "S", {Attribute{"x", ValueType::kInt, false},
                            Attribute{"y", ValueType::kInt, true}}))
                  .ok());
  return catalog;
}

ConstraintSet MakeConstraints(const Catalog& catalog, bool with_ind) {
  ConstraintSet constraints;
  auto key = FunctionalDependency::Key(catalog, "R", {"a"});
  EXPECT_TRUE(key.ok());
  constraints.AddFd(std::move(*key));
  if (with_ind) {
    auto ind = InclusionDependency::Create(catalog, "S", {"x"}, "R", {"a"});
    EXPECT_TRUE(ind.ok());
    constraints.AddInd(std::move(*ind));
  }
  return constraints;
}

/// Builds a random instance: a consistent base plus 3..6 random pending
/// transactions over a tiny value domain (collisions and dependencies are
/// likely by construction).
BlockchainDatabase MakeRandomInstance(std::uint64_t seed, bool with_ind) {
  Xoshiro256 rng(seed);
  Catalog catalog = MakeCatalog();
  ConstraintSet constraints = MakeConstraints(catalog, with_ind);
  auto db =
      BlockchainDatabase::Create(std::move(catalog), std::move(constraints));
  EXPECT_TRUE(db.ok());

  // Base R tuples: distinct keys 0..k-1.
  const std::size_t base_r = rng.NextBelow(3);
  for (std::size_t a = 0; a < base_r; ++a) {
    EXPECT_TRUE(db->InsertCurrent(
                      "R", Tuple({Value::Int(static_cast<std::int64_t>(a)),
                                  Value::Int(rng.NextInRange(0, 3))}))
                    .ok());
  }
  // Base S tuples referencing existing R keys.
  if (base_r > 0) {
    const std::size_t base_s = rng.NextBelow(3);
    for (std::size_t i = 0; i < base_s; ++i) {
      EXPECT_TRUE(
          db->InsertCurrent(
                "S",
                Tuple({Value::Int(static_cast<std::int64_t>(
                           rng.NextBelow(base_r))),
                       Value::Int(rng.NextInRange(0, 3))}))
              .ok());
    }
  }
  EXPECT_TRUE(db->ValidateCurrentState().ok());

  const std::size_t num_pending = 3 + rng.NextBelow(4);
  for (std::size_t t = 0; t < num_pending; ++t) {
    Transaction txn("P" + std::to_string(t));
    const std::size_t num_tuples = 1 + rng.NextBelow(3);
    for (std::size_t i = 0; i < num_tuples; ++i) {
      if (rng.NextBool(0.5)) {
        txn.Add("R", Tuple({Value::Int(rng.NextInRange(0, 4)),
                            Value::Int(rng.NextInRange(0, 3))}));
      } else {
        txn.Add("S", Tuple({Value::Int(rng.NextInRange(0, 4)),
                            Value::Int(rng.NextInRange(0, 3))}));
      }
    }
    EXPECT_TRUE(db->AddPending(txn).ok());
  }
  return std::move(*db);
}

/// Ground truth: scan every possible world with a freshly compiled query.
bool OracleSatisfied(const BlockchainDatabase& db, const DenialConstraint& q) {
  auto worlds = EnumeratePossibleWorlds(db, 1u << 16);
  EXPECT_TRUE(worlds.ok());
  auto compiled = CompiledQuery::Compile(q, &db.database());
  EXPECT_TRUE(compiled.ok());
  for (const WorldView& world : *worlds) {
    if (compiled->Evaluate(world)) return false;
  }
  return true;
}

const char* kMonotoneQueries[] = {
    "q() :- R(x, y)",
    "q() :- R(0, y)",
    "q() :- R(x, 2)",
    "q() :- S(x, y)",
    "q() :- R(x, y), S(x, z)",
    "q() :- R(x, y), S(x, y)",
    "q() :- R(x, 1), S(x, 2)",
    "q() :- R(x, y), S(z, w)",            // Disconnected.
    "q() :- R(x, y), S(z, w), y = w",     // Connected via '='.
    "q() :- R(x, y), x != y",
    "q() :- R(x, y), S(x, z), y < z",
    "q() :- R(2, y), S(2, z)",
    "[q(count()) :- S(x, y)] > 2",
    "[q(count()) :- R(x, y)] >= 4",
    "[q(cntd(x)) :- S(x, y)] > 1",
    "[q(sum(y)) :- S(x, y)] >= 5",        // S.y is non-negative.
    "[q(max(y)) :- S(x, y)] > 2",
    "[q(min(y)) :- S(x, y)] < 1",
};

const char* kNonMonotoneQueries[] = {
    "q() :- R(x, y), not S(x, y)",
    "[q(count()) :- S(x, y)] = 2",
    "[q(count()) :- R(x, y)] < 2",
    "[q(max(y)) :- S(x, y)] = 3",
};

class DcSatOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DcSatOracleTest, MonotoneAlgorithmsMatchOracle) {
  for (bool with_ind : {false, true}) {
    BlockchainDatabase db = MakeRandomInstance(GetParam(), with_ind);
    DcSatEngine engine(&db);
    for (const char* text : kMonotoneQueries) {
      auto q = ParseDenialConstraint(text);
      ASSERT_TRUE(q.ok()) << text;
      const QueryAnalysis analysis = AnalyzeQuery(*q, db.catalog());
      ASSERT_TRUE(analysis.monotone) << text;
      const bool expected = OracleSatisfied(db, *q);

      for (bool precheck : {true, false}) {
        DcSatOptions naive;
        naive.algorithm = DcSatAlgorithm::kNaive;
        naive.use_precheck = precheck;
        auto result = engine.Check(*q, naive);
        ASSERT_TRUE(result.ok()) << text;
        EXPECT_EQ(result->satisfied, expected)
            << "Naive disagrees on " << text << " seed " << GetParam()
            << " ind=" << with_ind << " precheck=" << precheck;

        if (analysis.connected && !q->is_aggregate()) {
          for (bool covers : {true, false}) {
            DcSatOptions opt;
            opt.algorithm = DcSatAlgorithm::kOpt;
            opt.use_precheck = precheck;
            opt.use_covers = covers;
            auto opt_result = engine.Check(*q, opt);
            ASSERT_TRUE(opt_result.ok()) << text;
            EXPECT_EQ(opt_result->satisfied, expected)
                << "Opt disagrees on " << text << " seed " << GetParam()
                << " ind=" << with_ind << " precheck=" << precheck
                << " covers=" << covers;
          }
        }
      }
    }
  }
}

TEST_P(DcSatOracleTest, ExhaustiveMatchesOracleOnNonMonotone) {
  for (bool with_ind : {false, true}) {
    BlockchainDatabase db = MakeRandomInstance(GetParam() + 1000, with_ind);
    DcSatEngine engine(&db);
    for (const char* text : kNonMonotoneQueries) {
      auto q = ParseDenialConstraint(text);
      ASSERT_TRUE(q.ok()) << text;
      const bool expected = OracleSatisfied(db, *q);
      auto result = engine.Check(*q);
      ASSERT_TRUE(result.ok()) << text;
      EXPECT_EQ(result->stats.algorithm_used, DcSatAlgorithm::kExhaustive);
      EXPECT_EQ(result->satisfied, expected)
          << text << " seed " << GetParam() << " ind=" << with_ind;
    }
  }
}

TEST_P(DcSatOracleTest, WitnessesAreValid) {
  BlockchainDatabase db = MakeRandomInstance(GetParam() + 2000, true);
  DcSatEngine engine(&db);
  for (const char* text : kMonotoneQueries) {
    auto q = ParseDenialConstraint(text);
    ASSERT_TRUE(q.ok());
    auto result = engine.Check(*q);
    ASSERT_TRUE(result.ok());
    if (result->satisfied) continue;
    ASSERT_TRUE(result->witness.has_value()) << text;
    EXPECT_TRUE(IsPossibleWorld(db, *result->witness)) << text;
    WorldView world = db.BaseView();
    for (PendingId id : *result->witness) {
      world.Activate(static_cast<TupleOwner>(id));
    }
    auto compiled = CompiledQuery::Compile(*q, &db.database());
    ASSERT_TRUE(compiled.ok());
    EXPECT_TRUE(compiled->Evaluate(world)) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DcSatOracleTest,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace bcdb
