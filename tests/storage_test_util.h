#ifndef BCDB_TESTS_STORAGE_TEST_UTIL_H_
#define BCDB_TESTS_STORAGE_TEST_UTIL_H_

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/blockchain_db.h"
#include "relational/schema.h"

namespace bcdb {
namespace storage_test {

/// A self-deleting scratch directory under the system temp root.
class ScratchDir {
 public:
  ScratchDir() {
    std::string tmpl = ::testing::TempDir() + "bcdb_store_XXXXXX";
    path_ = ::mkdtemp(tmpl.data());
  }
  ~ScratchDir() {
    if (!path_.empty()) {
      const std::string cmd = "rm -rf '" + path_ + "'";
      [[maybe_unused]] const int rc = std::system(cmd.c_str());
    }
  }
  ScratchDir(const ScratchDir&) = delete;
  ScratchDir& operator=(const ScratchDir&) = delete;

  const std::string& path() const { return path_; }
  std::string Sub(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

// ---- Fault-injection file helpers -----------------------------------------

inline std::uint64_t FileSize(const std::string& path) {
  return static_cast<std::uint64_t>(std::filesystem::file_size(path));
}

/// XORs the byte at `offset` with 0x40 — a single-bit flip the checksums
/// must catch.
inline void FlipByte(const std::string& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  ASSERT_TRUE(f.good()) << path << " @" << offset;
  byte ^= 0x40;
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
  ASSERT_TRUE(f.good());
}

/// Chops the last `n` bytes off the file (simulating a torn final write).
inline void TruncateFileBy(const std::string& path, std::uint64_t n) {
  const std::uint64_t size = FileSize(path);
  std::filesystem::resize_file(path, size - std::min(size, n));
}

inline void AppendBytesToFile(const std::string& path,
                              const std::string& bytes) {
  std::ofstream f(path, std::ios::app | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(f.good());
}

/// Files in `dir` whose names end with `suffix`, sorted by name ascending
/// (seq-stamped names sort oldest-first).
inline std::vector<std::string> ListFilesWithSuffix(const std::string& dir,
                                                    const std::string& suffix) {
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

/// The two-relation test catalog shared by the storage suites (same shape
/// as the differential tests: R(a, b), S(x, y)).
inline Catalog MakeTestCatalog() {
  Catalog catalog;
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "R", {Attribute{"a", ValueType::kInt, false},
                            Attribute{"b", ValueType::kInt, false}}))
                  .ok());
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "S", {Attribute{"x", ValueType::kInt, false},
                            Attribute{"y", ValueType::kInt, true}}))
                  .ok());
  return catalog;
}

/// Asserts `got` is id-for-id equivalent to `want`: same relation contents
/// in the same TupleId order with the same owner lists, same pending slots
/// in the same states, same version/seq clock.
inline void ExpectEquivalent(const BlockchainDatabase& want,
                             const BlockchainDatabase& got) {
  ASSERT_EQ(want.database().num_relations(), got.database().num_relations());
  for (std::size_t r = 0; r < want.database().num_relations(); ++r) {
    const Relation& rw = want.database().relation(r);
    const Relation& rg = got.database().relation(r);
    ASSERT_EQ(rw.num_tuples(), rg.num_tuples()) << "relation " << r;
    for (TupleId id = 0; id < rw.num_tuples(); ++id) {
      EXPECT_EQ(rw.tuple(id), rg.tuple(id))
          << "relation " << r << " tuple " << id;
      EXPECT_EQ(rw.owners(id), rg.owners(id))
          << "relation " << r << " tuple " << id;
    }
  }
  ASSERT_EQ(want.num_pending(), got.num_pending());
  for (PendingId id = 0; id < want.num_pending(); ++id) {
    EXPECT_EQ(want.pending_state(id), got.pending_state(id)) << "slot " << id;
    EXPECT_EQ(want.PendingRelations(id), got.PendingRelations(id))
        << "slot " << id;
    EXPECT_EQ(want.pending(id).label(), got.pending(id).label())
        << "slot " << id;
    ASSERT_EQ(want.pending(id).size(), got.pending(id).size())
        << "slot " << id;
    for (std::size_t i = 0; i < want.pending(id).size(); ++i) {
      EXPECT_EQ(want.pending(id).items()[i].relation,
                got.pending(id).items()[i].relation);
      EXPECT_EQ(want.pending(id).items()[i].tuple,
                got.pending(id).items()[i].tuple);
    }
  }
  EXPECT_EQ(want.version(), got.version());
  EXPECT_EQ(want.mutations().end_seq(), got.mutations().end_seq());
  EXPECT_EQ(want.database().num_owners(), got.database().num_owners());
}

}  // namespace storage_test
}  // namespace bcdb

#endif  // BCDB_TESTS_STORAGE_TEST_UTIL_H_
