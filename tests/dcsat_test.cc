#include <gtest/gtest.h>

#include "core/dcsat.h"
#include "query/parser.h"
#include "running_example.h"

namespace bcdb {
namespace {

using testing_fixtures::MakeRunningExample;

class DcSatTest : public ::testing::Test {
 protected:
  DcSatTest() : db_(MakeRunningExample()), engine_(&db_) {}

  DcSatResult Check(const std::string& text, const DcSatOptions& options) {
    auto q = ParseDenialConstraint(text);
    EXPECT_TRUE(q.ok()) << q.status();
    auto result = engine_.Check(*q, options);
    EXPECT_TRUE(result.ok()) << result.status();
    return *result;
  }

  BlockchainDatabase db_;
  DcSatEngine engine_;
};

TEST_F(DcSatTest, AutoSelectsOptForConnectedConjunctive) {
  DcSatOptions options;
  auto result = Check("q() :- TxOut(t, s, 'U8Pk', a)", options);
  EXPECT_EQ(result.stats.algorithm_used, DcSatAlgorithm::kOpt);
}

TEST_F(DcSatTest, AutoSelectsNaiveForDisconnected) {
  DcSatOptions options;
  options.use_precheck = false;
  auto result =
      Check("q() :- TxOut(t1, s1, 'U8Pk', a1), TxOut(t2, s2, 'U5Pk', a2)",
            options);
  EXPECT_EQ(result.stats.algorithm_used, DcSatAlgorithm::kNaive);
  EXPECT_FALSE(result.satisfied);  // T4 and T1 coexist in one world.
}

TEST_F(DcSatTest, AutoSelectsNaiveForAggregate) {
  auto result =
      Check("[q(sum(a)) :- TxOut(t, s, 'U4Pk', a)] >= 1", DcSatOptions{});
  EXPECT_EQ(result.stats.algorithm_used, DcSatAlgorithm::kNaive);
}

TEST_F(DcSatTest, AutoSelectsExhaustiveForNegation) {
  // "Some transaction pays U7Pk without also paying U8Pk 1 at serial 2":
  // true in world R∪{T5} (tx 8 pays U7Pk, has no U8Pk output).
  auto result = Check(
      "q() :- TxOut(t, s, 'U7Pk', a), not TxOut(t, 2, 'U8Pk', 1)",
      DcSatOptions{});
  EXPECT_EQ(result.stats.algorithm_used, DcSatAlgorithm::kExhaustive);
  EXPECT_FALSE(result.satisfied);
}

TEST_F(DcSatTest, NegationCanBlockEverywhere) {
  // Transaction 7 (T4) always carries both the U7Pk and the U8Pk output,
  // so no world has one without the other.
  auto result = Check(
      "q() :- TxOut(7, s, 'U7Pk', a), not TxOut(7, 2, 'U8Pk', 1)",
      DcSatOptions{});
  EXPECT_EQ(result.stats.algorithm_used, DcSatAlgorithm::kExhaustive);
  EXPECT_TRUE(result.satisfied);
}

TEST_F(DcSatTest, OptionsAblationsAgree) {
  const char* queries[] = {
      "q() :- TxOut(t, s, 'U8Pk', a)",
      "q() :- TxOut(t, s, 'U9Pk', a)",
      "q() :- TxIn(2, 2, 'U2Pk', a1, n1, g1), TxIn(2, 2, 'U2Pk', a2, n2, g2), "
      "n1 != n2",
      "q() :- TxOut(t, s, 'U7Pk', a)",
  };
  for (const char* text : queries) {
    DcSatOptions baseline;
    baseline.algorithm = DcSatAlgorithm::kExhaustive;
    const bool expected = Check(text, baseline).satisfied;
    for (bool precheck : {true, false}) {
      for (bool covers : {true, false}) {
        for (bool pivot : {true, false}) {
          for (DcSatAlgorithm algorithm :
               {DcSatAlgorithm::kNaive, DcSatAlgorithm::kOpt}) {
            DcSatOptions options;
            options.algorithm = algorithm;
            options.use_precheck = precheck;
            options.use_covers = covers;
            options.use_pivot = pivot;
            EXPECT_EQ(Check(text, options).satisfied, expected)
                << text << " precheck=" << precheck << " covers=" << covers
                << " pivot=" << pivot << " algo=" << static_cast<int>(algorithm);
          }
        }
      }
    }
  }
}

TEST_F(DcSatTest, WitnessIsAlwaysAPossibleWorldSatisfyingQ) {
  auto q = ParseDenialConstraint("q() :- TxOut(t, s, 'U7Pk', a)");
  ASSERT_TRUE(q.ok());
  for (DcSatAlgorithm algorithm :
       {DcSatAlgorithm::kNaive, DcSatAlgorithm::kOpt,
        DcSatAlgorithm::kExhaustive}) {
    DcSatOptions options;
    options.algorithm = algorithm;
    auto result = engine_.Check(*q, options);
    ASSERT_TRUE(result.ok());
    ASSERT_FALSE(result->satisfied);
    ASSERT_TRUE(result->witness.has_value());
    // Verify the witness world satisfies the constraints and the query.
    WorldView world = db_.BaseView();
    for (PendingId id : *result->witness) {
      world.Activate(static_cast<TupleOwner>(id));
    }
    EXPECT_TRUE(db_.checker().CheckAll(world).ok());
    auto compiled = CompiledQuery::Compile(*q, &db_.database());
    ASSERT_TRUE(compiled.ok());
    EXPECT_TRUE(compiled->Evaluate(world));
  }
}

TEST_F(DcSatTest, CachesRefreshAfterMutation) {
  DcSatOptions options;
  options.use_precheck = false;
  auto before = Check("q() :- TxOut(t, s, 'U8Pk', a)", options);
  EXPECT_FALSE(before.satisfied);

  // Discard T4 (the only transaction paying U8Pk): now satisfied.
  ASSERT_TRUE(db_.DiscardPending(3).ok());
  auto after = Check("q() :- TxOut(t, s, 'U8Pk', a)", options);
  EXPECT_TRUE(after.satisfied);
  EXPECT_EQ(after.stats.num_valid_nodes, 4u);
}

TEST_F(DcSatTest, StatsArePopulated) {
  DcSatOptions options;
  options.algorithm = DcSatAlgorithm::kNaive;
  options.use_precheck = false;
  auto result = Check("q() :- TxOut(t, s, 'U9Pk', a)", options);
  EXPECT_TRUE(result.satisfied);
  EXPECT_EQ(result.stats.num_pending, 5u);
  EXPECT_EQ(result.stats.num_valid_nodes, 5u);
  EXPECT_EQ(result.stats.fd_conflict_pairs, 1u);
  EXPECT_EQ(result.stats.num_cliques, 2u);  // Example 6's two cliques.
  // Base world + two clique worlds evaluated.
  EXPECT_EQ(result.stats.num_worlds_evaluated, 3u);
  EXPECT_GE(result.stats.total_seconds, 0.0);
}

TEST_F(DcSatTest, ExhaustiveWorldLimit) {
  auto q = ParseDenialConstraint("q() :- TxOut(t, s, 'U9Pk', a)");
  ASSERT_TRUE(q.ok());
  DcSatOptions options;
  options.algorithm = DcSatAlgorithm::kExhaustive;
  options.exhaustive_world_limit = 2;
  EXPECT_EQ(engine_.Check(*q, options).status().code(),
            StatusCode::kOutOfRange);
}

TEST_F(DcSatTest, CompileErrorsPropagate) {
  auto q = ParseDenialConstraint("q() :- NoSuchRelation(x)");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(engine_.Check(*q).ok());
}

TEST_F(DcSatTest, CompiledQuerySurvivesCacheGrowthAndEviction) {
  // Regression: GetOrCompile used to return a raw pointer into the cache
  // vector, dangling as soon as a later compile reallocated or FIFO-evicted
  // it. Hold the first compiled query while pushing the cache through one
  // full capacity of growth plus evictions, then use it — under asan, the
  // old code faults here.
  auto held_q = ParseDenialConstraint("q() :- TxOut(t, s, 'U1Pk', a)");
  ASSERT_TRUE(held_q.ok());
  auto held = engine_.GetOrCompile(*held_q);
  ASSERT_TRUE(held.ok()) << held.status();
  const DcSatResult before = Check("q() :- TxOut(t, s, 'U1Pk', a)", {});

  for (std::size_t i = 0; i < DcSatEngine::kCompiledCacheCapacity + 8; ++i) {
    auto q = ParseDenialConstraint("q() :- TxOut(t, s, pk, " +
                                   std::to_string(i) + ")");
    ASSERT_TRUE(q.ok());
    ASSERT_TRUE(engine_.GetOrCompile(*q).ok());
  }

  engine_.PrepareSteadyState();
  auto result = engine_.CheckPrepared(*held_q, **held);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->satisfied, before.satisfied);
  EXPECT_EQ(result->decided, before.decided);
}

}  // namespace
}  // namespace bcdb
