// Positive control for the negative-compilation probes: the same shapes as
// guarded_by_violation.cc / lock_order_inversion.cc with the discipline
// respected. If THIS fails, the harness flags (include paths, macros) are
// broken, and the WILL_FAIL results of the sibling tests mean nothing.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  int Read() const {
    bcdb::MutexLock lock(mutex_);
    return value_;
  }

 private:
  mutable bcdb::Mutex mutex_{bcdb::LockRank::kValuePool};
  int value_ BCDB_GUARDED_BY(mutex_) = 0;
};

class TwoLocks {
 public:
  void RightOrder() {
    bcdb::MutexLock first(first_);
    bcdb::MutexLock second(second_);
  }

 private:
  bcdb::Mutex first_{bcdb::LockRank::kMonitor};
  bcdb::Mutex second_ BCDB_ACQUIRED_AFTER(first_){
      bcdb::LockRank::kValuePool};
};

}  // namespace

int main() {
  Counter counter;
  TwoLocks locks;
  locks.RightOrder();
  return counter.Read();
}
