// Negative-compilation probe: acquiring locks against a declared
// BCDB_ACQUIRED_AFTER order MUST fail under -Werror=thread-safety-beta
// (the acquired_before/after analysis lives behind the beta flag). This
// is the compile-time face of the runtime rank checker in util/mutex.cc.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class TwoLocks {
 public:
  void WrongOrder() {
    bcdb::MutexLock second(second_);
    bcdb::MutexLock first(first_);  // BAD: first_ must precede second_.
  }

 private:
  bcdb::Mutex first_{bcdb::LockRank::kMonitor};
  bcdb::Mutex second_ BCDB_ACQUIRED_AFTER(first_){
      bcdb::LockRank::kValuePool};
};

}  // namespace

int main() {
  TwoLocks locks;
  locks.WrongOrder();
  return 0;
}
