// Negative-compilation probe: reading a BCDB_GUARDED_BY member without the
// guarding lock MUST fail under -Werror=thread-safety. If this file ever
// compiles cleanly, the annotation gate is broken (macros expanded to
// nothing under clang, or the warning flag fell out of the build).
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  int Read() const {
    return value_;  // BAD: no lock held — the violation under test.
  }

 private:
  mutable bcdb::Mutex mutex_{bcdb::LockRank::kValuePool};
  int value_ BCDB_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  return counter.Read();
}
