// Model-based fuzzing of the Relation storage layer: a naive reference
// model (plain vectors of (tuple, owner-set)) runs the same random
// operation sequence — inserts with random owners, promotions, drops — and
// every few steps the visible-tuple sets and index lookups must agree.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "relational/database.h"
#include "util/rng.h"

namespace bcdb {
namespace {

class ReferenceModel {
 public:
  void Insert(const Tuple& tuple, TupleOwner owner) {
    owners_[Key(tuple)].insert(owner);
  }

  void PromoteOwner(TupleOwner owner) {
    for (auto& [key, owners] : owners_) {
      if (owners.erase(owner) > 0) owners.insert(kBaseOwner);
    }
  }

  void DropOwner(TupleOwner owner) {
    for (auto& [key, owners] : owners_) owners.erase(owner);
  }

  std::set<std::string> Visible(const WorldView& view) const {
    std::set<std::string> result;
    for (const auto& [key, owners] : owners_) {
      for (TupleOwner owner : owners) {
        if (view.IsActive(owner)) {
          result.insert(key);
          break;
        }
      }
    }
    return result;
  }

 private:
  static std::string Key(const Tuple& tuple) { return tuple.ToString(); }
  std::map<std::string, std::set<TupleOwner>> owners_;
};

Catalog MakeCatalog() {
  Catalog catalog;
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "R", {Attribute{"a", ValueType::kInt, false},
                            Attribute{"b", ValueType::kInt, false}}))
                  .ok());
  return catalog;
}

std::set<std::string> VisibleInRelation(const Relation& rel,
                                        const WorldView& view) {
  std::set<std::string> result;
  rel.ForEachVisible(view, [&](TupleId id) {
    result.insert(rel.tuple(id).ToString());
  });
  return result;
}

class RelationModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RelationModelTest, AgreesWithReferenceModel) {
  Xoshiro256 rng(GetParam());
  Database db(MakeCatalog());
  Relation& rel = db.relation(0);
  ReferenceModel model;

  const std::size_t num_owners = 4;
  for (std::size_t i = 0; i < num_owners; ++i) db.RegisterOwner();
  // A fixed index, created up front so inserts must maintain it.
  const std::size_t index = rel.GetOrBuildIndex({0});

  auto random_view = [&](Xoshiro256& r) {
    WorldView view = db.BaseView();
    for (std::size_t o = 0; o < num_owners; ++o) {
      if (r.NextBool(0.5)) view.Activate(static_cast<TupleOwner>(o));
    }
    return view;
  };

  for (int step = 0; step < 300; ++step) {
    const double dice = rng.NextDouble();
    if (dice < 0.75) {
      const Tuple tuple({Value::Int(rng.NextInRange(0, 5)),
                         Value::Int(rng.NextInRange(0, 3))});
      const TupleOwner owner =
          rng.NextBool(0.3)
              ? kBaseOwner
              : static_cast<TupleOwner>(rng.NextBelow(num_owners));
      rel.Insert(tuple, owner);
      model.Insert(tuple, owner);
    } else if (dice < 0.85) {
      const TupleOwner owner =
          static_cast<TupleOwner>(rng.NextBelow(num_owners));
      rel.PromoteOwner(owner);
      model.PromoteOwner(owner);
    } else if (dice < 0.95) {
      const TupleOwner owner =
          static_cast<TupleOwner>(rng.NextBelow(num_owners));
      rel.DropOwner(owner);
      model.DropOwner(owner);
    } else {
      // Checkpoint: compare several random views plus base and full.
      std::vector<WorldView> views = {db.BaseView(), db.FullView()};
      for (int i = 0; i < 3; ++i) views.push_back(random_view(rng));
      for (const WorldView& view : views) {
        EXPECT_EQ(VisibleInRelation(rel, view), model.Visible(view))
            << "step " << step;
        EXPECT_EQ(rel.CountVisible(view), model.Visible(view).size());
      }
      // Index lookups cover every stored tuple with a matching key.
      for (std::int64_t a = 0; a <= 5; ++a) {
        std::set<std::string> via_index;
        for (TupleId id : rel.IndexLookup(index, Tuple({Value::Int(a)}))) {
          if (rel.IsVisible(id, views[1])) {
            via_index.insert(rel.tuple(id).ToString());
          }
        }
        std::set<std::string> via_scan;
        rel.ForEachVisible(views[1], [&](TupleId id) {
          if (rel.tuple(id)[0] == Value::Int(a)) {
            via_scan.insert(rel.tuple(id).ToString());
          }
        });
        EXPECT_EQ(via_index, via_scan) << "a=" << a << " step " << step;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelationModelTest,
                         ::testing::Range<std::uint64_t>(0, 15));

}  // namespace
}  // namespace bcdb
