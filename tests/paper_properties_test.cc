// Randomized checks of the structural claims the algorithms rest on
// (Sections 4-6 of the paper), over generated instances — the properties
// themselves, not specific examples.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/dcsat.h"
#include "core/fd_graph.h"
#include "core/get_maximal.h"
#include "core/ind_graph.h"
#include "core/possible_worlds.h"
#include "query/analysis.h"
#include "query/compiled_query.h"
#include "query/parser.h"
#include "util/rng.h"

namespace bcdb {
namespace {

/// Random small blockchain database over R(a,b) with key a, S(x,y) with
/// IND S[x] ⊆ R[a] (same generator family as the DCSat oracle tests).
BlockchainDatabase MakeRandomInstance(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Catalog catalog;
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "R", {Attribute{"a", ValueType::kInt, false},
                            Attribute{"b", ValueType::kInt, false}}))
                  .ok());
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "S", {Attribute{"x", ValueType::kInt, false},
                            Attribute{"y", ValueType::kInt, true}}))
                  .ok());
  ConstraintSet constraints;
  constraints.AddFd(*FunctionalDependency::Key(catalog, "R", {"a"}));
  constraints.AddInd(
      *InclusionDependency::Create(catalog, "S", {"x"}, "R", {"a"}));
  auto db =
      BlockchainDatabase::Create(std::move(catalog), std::move(constraints));
  EXPECT_TRUE(db.ok());

  const std::size_t base_r = rng.NextBelow(3);
  for (std::size_t a = 0; a < base_r; ++a) {
    EXPECT_TRUE(db->InsertCurrent(
                      "R", Tuple({Value::Int(static_cast<std::int64_t>(a)),
                                  Value::Int(rng.NextInRange(0, 3))}))
                    .ok());
  }
  const std::size_t num_pending = 3 + rng.NextBelow(4);
  for (std::size_t t = 0; t < num_pending; ++t) {
    Transaction txn("P" + std::to_string(t));
    const std::size_t num_tuples = 1 + rng.NextBelow(3);
    for (std::size_t i = 0; i < num_tuples; ++i) {
      if (rng.NextBool(0.5)) {
        txn.Add("R", Tuple({Value::Int(rng.NextInRange(0, 4)),
                            Value::Int(rng.NextInRange(0, 3))}));
      } else {
        txn.Add("S", Tuple({Value::Int(rng.NextInRange(0, 4)),
                            Value::Int(rng.NextInRange(0, 3))}));
      }
    }
    EXPECT_TRUE(db->AddPending(txn).ok());
  }
  return std::move(*db);
}

class PaperPropertiesTest : public ::testing::TestWithParam<std::uint64_t> {};

// Section 4: every possible world satisfies I (the can-append relation
// preserves consistency by definition, so enumeration must too).
TEST_P(PaperPropertiesTest, EveryEnumeratedWorldSatisfiesConstraints) {
  BlockchainDatabase db = MakeRandomInstance(GetParam());
  auto worlds = EnumeratePossibleWorlds(db, 1u << 16);
  ASSERT_TRUE(worlds.ok());
  ASSERT_FALSE(worlds->empty());
  for (const WorldView& world : *worlds) {
    EXPECT_TRUE(db.checker().CheckAll(world).ok());
  }
}

// Section 4: Poss(D) is downward-reachable — removing the last-added
// transaction of a world yields a world. Equivalent check: every world's
// active set is recognized by the PTIME IsPossibleWorld (Prop. 1).
TEST_P(PaperPropertiesTest, EnumerationAndRecognitionAgree) {
  BlockchainDatabase db = MakeRandomInstance(GetParam() + 100);
  auto worlds = EnumeratePossibleWorlds(db, 1u << 16);
  ASSERT_TRUE(worlds.ok());
  std::set<std::vector<std::size_t>> world_sets;
  for (const WorldView& world : *worlds) {
    world_sets.insert(world.active_bits().ToVector());
  }
  const std::vector<PendingId> pending = db.PendingIds();
  ASSERT_LE(pending.size(), 16u);
  for (std::size_t mask = 0; mask < (1u << pending.size()); ++mask) {
    std::vector<PendingId> subset;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (mask & (1u << i)) subset.push_back(pending[i]);
    }
    EXPECT_EQ(IsPossibleWorld(db, subset), world_sets.count(subset) > 0)
        << "mask " << mask;
  }
}

// Section 6.1: every possible world's transaction set is a clique of
// G^fd_T over valid nodes.
TEST_P(PaperPropertiesTest, WorldsAreFdGraphCliques) {
  BlockchainDatabase db = MakeRandomInstance(GetParam() + 200);
  const FdGraph fd_graph(db);
  auto worlds = EnumeratePossibleWorlds(db, 1u << 16);
  ASSERT_TRUE(worlds.ok());
  for (const WorldView& world : *worlds) {
    const std::vector<std::size_t> members = world.active_bits().ToVector();
    for (std::size_t i = 0; i < members.size(); ++i) {
      EXPECT_TRUE(fd_graph.valid_nodes().Test(members[i]));
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        EXPECT_TRUE(fd_graph.graph().HasEdge(members[i], members[j]));
      }
    }
  }
}

// Section 6.1: getMaximal over a clique contains every possible world whose
// transactions lie inside that clique (the completeness half of
// NaiveDCSat's correctness).
TEST_P(PaperPropertiesTest, GetMaximalDominatesContainedWorlds) {
  BlockchainDatabase db = MakeRandomInstance(GetParam() + 300);
  const FdGraph fd_graph(db);
  auto worlds = EnumeratePossibleWorlds(db, 1u << 16);
  ASSERT_TRUE(worlds.ok());
  for (const WorldView& world : *worlds) {
    const std::vector<std::size_t> members = world.active_bits().ToVector();
    const WorldView maximal =
        GetMaximal(db, std::vector<PendingId>(members.begin(), members.end()));
    // The maximal world over exactly these members is the members
    // themselves (they are already a world), hence a superset check:
    for (std::size_t member : members) {
      EXPECT_TRUE(maximal.IsActive(static_cast<TupleOwner>(member)));
    }
    EXPECT_TRUE(IsPossibleWorld(db, maximal.active_bits().ToVector()));
  }
}

// Section 6.2 (Proposition 2): transactions in different Θ-components
// never co-serve a satisfying assignment — checked via the world-level
// consequence used by OptDCSat: restricting any world to one component
// preserves every per-component satisfying world of a connected query.
TEST_P(PaperPropertiesTest, ComponentRestrictionPreservesWorlds) {
  BlockchainDatabase db = MakeRandomInstance(GetParam() + 400);
  const FdGraph fd_graph(db);
  auto q = ParseDenialConstraint("q() :- R(x, y), S(x, z)");
  ASSERT_TRUE(q.ok());
  UnionFind uf(db.num_pending());
  MergeEqualityComponents(db, EqualitiesFromConstraints(db.constraints()),
                          fd_graph.valid_nodes(), uf);
  auto theta_q = EqualitiesFromQuery(*q, db.catalog());
  ASSERT_TRUE(theta_q.ok());
  MergeEqualityComponents(db, *theta_q, fd_graph.valid_nodes(), uf);

  auto worlds = EnumeratePossibleWorlds(db, 1u << 16);
  ASSERT_TRUE(worlds.ok());
  for (const auto& component :
       GroupComponents(fd_graph.valid_nodes(), uf)) {
    const std::set<std::size_t> in_component(component.begin(),
                                             component.end());
    for (const WorldView& world : *worlds) {
      std::vector<PendingId> restricted;
      world.active_bits().ForEach([&](std::size_t id) {
        if (in_component.count(id) > 0) restricted.push_back(id);
      });
      EXPECT_TRUE(IsPossibleWorld(db, restricted));
    }
  }
}

// Section 6: monotone queries really are monotone over the world lattice —
// if q holds in W it holds in every possible superset world.
TEST_P(PaperPropertiesTest, MonotoneQueriesMonotoneOverWorlds) {
  BlockchainDatabase db = MakeRandomInstance(GetParam() + 500);
  const char* queries[] = {
      "q() :- R(x, y), S(x, z)",
      "q() :- S(x, y), y > 1",
      "[q(count()) :- S(x, y)] > 1",
      "[q(sum(y)) :- S(x, y)] >= 3",
  };
  auto worlds = EnumeratePossibleWorlds(db, 1u << 16);
  ASSERT_TRUE(worlds.ok());
  for (const char* text : queries) {
    auto q = ParseDenialConstraint(text);
    ASSERT_TRUE(q.ok());
    ASSERT_TRUE(AnalyzeQuery(*q, db.catalog()).monotone) << text;
    auto compiled = CompiledQuery::Compile(*q, &db.database());
    ASSERT_TRUE(compiled.ok());
    for (const WorldView& small : *worlds) {
      if (!compiled->Evaluate(small)) continue;
      const auto small_set = small.active_bits().ToVector();
      for (const WorldView& large : *worlds) {
        const auto large_set = large.active_bits().ToVector();
        if (std::includes(large_set.begin(), large_set.end(),
                          small_set.begin(), small_set.end())) {
          EXPECT_TRUE(compiled->Evaluate(large)) << text;
        }
      }
    }
  }
}

// Section 6.3: the pre-check is sound — if q is false over R ∪ T, it is
// false over every possible world.
TEST_P(PaperPropertiesTest, PrecheckSoundness) {
  BlockchainDatabase db = MakeRandomInstance(GetParam() + 600);
  const char* queries[] = {"q() :- R(2, y)", "q() :- R(x, y), S(x, y)",
                           "q() :- S(x, 3)"};
  auto worlds = EnumeratePossibleWorlds(db, 1u << 16);
  ASSERT_TRUE(worlds.ok());
  for (const char* text : queries) {
    auto q = ParseDenialConstraint(text);
    ASSERT_TRUE(q.ok());
    auto compiled = CompiledQuery::Compile(*q, &db.database());
    ASSERT_TRUE(compiled.ok());
    if (compiled->Evaluate(db.PendingUnionView())) continue;
    for (const WorldView& world : *worlds) {
      EXPECT_FALSE(compiled->Evaluate(world)) << text;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaperPropertiesTest,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace bcdb
