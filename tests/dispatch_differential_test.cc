#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "analysis/analyzer.h"
#include "core/dcsat.h"
#include "query/parser.h"
#include "util/rng.h"

namespace bcdb {
namespace {

// Differential harness for the classified dispatch: for every instance and
// constraint, DcSatEngine::Check(q, report) must be bit-identical — decided,
// satisfied, witness — to the legacy runtime-gated Check(q), and
// verdict-identical to the pure general search (tractable fragments
// disabled). Classification only routes, it never re-decides.

BlockchainDatabase MakeInstance(std::uint64_t seed, bool keys, bool inds) {
  Xoshiro256 rng(seed);
  Catalog catalog;
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "R", {Attribute{"a", ValueType::kInt, false},
                            Attribute{"b", ValueType::kInt, false}}))
                  .ok());
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "S", {Attribute{"x", ValueType::kInt, false},
                            Attribute{"y", ValueType::kInt, true}}))
                  .ok());
  ConstraintSet constraints;
  if (keys) {
    constraints.AddFd(*FunctionalDependency::Key(catalog, "R", {"a"}));
    constraints.AddFd(
        *FunctionalDependency::Create(catalog, "S", {"x"}, {"y"}));
  }
  if (inds) {
    constraints.AddInd(
        *InclusionDependency::Create(catalog, "S", {"x"}, "R", {"a"}));
  }
  auto db =
      BlockchainDatabase::Create(std::move(catalog), std::move(constraints));
  EXPECT_TRUE(db.ok());

  const std::size_t base_r = rng.NextBelow(3);
  for (std::size_t a = 0; a < base_r; ++a) {
    EXPECT_TRUE(db->InsertCurrent(
                      "R", Tuple({Value::Int(static_cast<std::int64_t>(a)),
                                  Value::Int(rng.NextInRange(0, 3))}))
                    .ok());
  }
  const std::size_t num_pending = 3 + rng.NextBelow(4);
  for (std::size_t t = 0; t < num_pending; ++t) {
    Transaction txn("P" + std::to_string(t));
    const std::size_t num_tuples = 1 + rng.NextBelow(3);
    for (std::size_t i = 0; i < num_tuples; ++i) {
      if (rng.NextBool(0.5)) {
        txn.Add("R", Tuple({Value::Int(rng.NextInRange(0, 4)),
                            Value::Int(rng.NextInRange(0, 3))}));
      } else {
        txn.Add("S", Tuple({Value::Int(rng.NextInRange(0, 4)),
                            Value::Int(rng.NextInRange(0, 3))}));
      }
    }
    EXPECT_TRUE(db->AddPending(txn).ok());
  }
  return std::move(*db);
}

// Spans every tractability class in at least one constraint configuration:
// positive CQs (PTIME under either one-sided class, CoNP-mixed otherwise),
// monotone aggregates (IND fragment), non-monotone shapes (CoNP-mixed
// everywhere), and a statically refutable body.
const char* kQueries[] = {
    "q() :- R(x, y)",
    "q() :- R(0, y)",
    "q() :- R(x, 2), S(x, z)",
    "q() :- S(x, y), R(x, b), b > y",
    "q() :- S(x, y), S(z, y), x != z",
    "q() :- R(x, y), x < y",
    "[q(count()) :- S(x, y)] > 2",
    "[q(sum(y)) :- S(x, y)] >= 4",
    "[q(count()) :- R(x, y)] < 2",
    "q() :- R(x, y), not S(x, y)",
    "q() :- R(x, y), x > x",
};

struct Config {
  const char* name;
  bool keys;
  bool inds;
};

constexpr Config kConfigs[] = {
    {"fd-only", true, false},
    {"ind-only", false, true},
    {"mixed", true, true},
};

class DispatchDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DispatchDifferentialTest, ClassifiedMatchesLegacyAndGeneral) {
  for (const Config& config : kConfigs) {
    BlockchainDatabase db =
        MakeInstance(GetParam() * 7 + (config.keys ? 1 : 0) +
                         (config.inds ? 2 : 0),
                     config.keys, config.inds);
    DcSatEngine engine(&db);
    for (const char* text : kQueries) {
      SCOPED_TRACE(std::string(config.name) + " seed " +
                   std::to_string(GetParam()) + ": " + text);
      auto q = ParseDenialConstraint(text);
      ASSERT_TRUE(q.ok());
      AnalysisReport report = engine.Analyze(*q);
      ASSERT_TRUE(report.ok()) << report.ErrorSummary();

      auto classified = engine.Check(*q, report);
      ASSERT_TRUE(classified.ok());
      auto legacy = engine.Check(*q);
      ASSERT_TRUE(legacy.ok());
      DcSatOptions general_options;
      general_options.use_tractable_fragments = false;
      auto general = engine.Check(*q, general_options);
      ASSERT_TRUE(general.ok());

      // Bit-identity against the legacy runtime-gated path: same routing,
      // so the same verdict AND the same witness world. The one allowed
      // divergence is the trivially-unsat short-circuit, which skips even
      // the pre-check the legacy path used to reach the same answer.
      EXPECT_EQ(classified->decided, legacy->decided);
      EXPECT_EQ(classified->satisfied, legacy->satisfied);
      EXPECT_EQ(classified->witness, legacy->witness);
      if (report.tractability == TractabilityClass::kTriviallyUnsat) {
        EXPECT_EQ(classified->stats.algorithm_used, DcSatAlgorithm::kStatic);
        EXPECT_TRUE(classified->satisfied);
      } else {
        EXPECT_EQ(classified->stats.algorithm_used,
                  legacy->stats.algorithm_used);
      }

      // Verdict-identity against the pure general search (the oracle-grade
      // reference): the fragments and the classifier may only change how
      // the answer is computed, never the answer.
      EXPECT_EQ(classified->decided, general->decided);
      EXPECT_EQ(classified->satisfied, general->satisfied);
      EXPECT_EQ(classified->witness.has_value(),
                general->witness.has_value());

      // Classification sanity: PTIME classes must actually take the
      // tractable path, and the mixed class must never try it.
      if (report.tractability == TractabilityClass::kPtimeFdOnly ||
          report.tractability == TractabilityClass::kPtimeIndOnly) {
        EXPECT_EQ(classified->stats.algorithm_used,
                  DcSatAlgorithm::kTractable);
      }
      if (report.tractability == TractabilityClass::kCoNpMixed) {
        EXPECT_NE(classified->stats.algorithm_used,
                  DcSatAlgorithm::kTractable);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DispatchDifferentialTest,
                         ::testing::Range<std::uint64_t>(0, 30));

// The class assignments the differential loop relies on, pinned per
// configuration for one representative query of each shape.
TEST(DispatchClassificationTest, ClassesPerConfiguration) {
  struct Expectation {
    const char* query;
    TractabilityClass fd_only;
    TractabilityClass ind_only;
    TractabilityClass mixed;
  };
  const Expectation kExpectations[] = {
      {"q() :- R(x, y)", TractabilityClass::kPtimeFdOnly,
       TractabilityClass::kPtimeIndOnly, TractabilityClass::kCoNpMixed},
      {"[q(sum(y)) :- S(x, y)] >= 4", TractabilityClass::kCoNpMixed,
       TractabilityClass::kPtimeIndOnly, TractabilityClass::kCoNpMixed},
      {"q() :- R(x, y), not S(x, y)", TractabilityClass::kCoNpMixed,
       TractabilityClass::kCoNpMixed, TractabilityClass::kCoNpMixed},
      {"q() :- R(x, y), x > x", TractabilityClass::kTriviallyUnsat,
       TractabilityClass::kTriviallyUnsat, TractabilityClass::kTriviallyUnsat},
  };
  for (const Config& config : kConfigs) {
    BlockchainDatabase db = MakeInstance(1, config.keys, config.inds);
    DcSatEngine engine(&db);
    for (const Expectation& expectation : kExpectations) {
      SCOPED_TRACE(std::string(config.name) + ": " + expectation.query);
      auto q = ParseDenialConstraint(expectation.query);
      ASSERT_TRUE(q.ok());
      AnalysisReport report = engine.Analyze(*q);
      ASSERT_TRUE(report.ok());
      const TractabilityClass want =
          config.keys ? (config.inds ? expectation.mixed : expectation.fd_only)
                      : expectation.ind_only;
      EXPECT_EQ(report.tractability, want);
    }
  }
}

}  // namespace
}  // namespace bcdb
