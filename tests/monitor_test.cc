#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "core/monitor.h"
#include "query/parser.h"
#include "running_example.h"

namespace bcdb {
namespace {

using testing_fixtures::MakeRunningExample;
using Verdict = ConstraintMonitor::Verdict;

DenialConstraint Q(const std::string& text) {
  auto q = ParseDenialConstraint(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return *q;
}

TEST(ConstraintMonitorTest, AddValidatesAgainstSchema) {
  BlockchainDatabase db = MakeRunningExample();
  ConstraintMonitor monitor(&db);
  EXPECT_TRUE(monitor.Add("ok", Q("q() :- TxOut(t, s, 'U8Pk', a)")).ok());
  EXPECT_FALSE(monitor.Add("bad", Q("q() :- Nope(x)")).ok());
  EXPECT_EQ(monitor.size(), 1u);
}

TEST(ConstraintMonitorTest, FirstPollReportsAllVerdicts) {
  BlockchainDatabase db = MakeRunningExample();
  ConstraintMonitor monitor(&db);
  auto pending_only = monitor.Add("u8", Q("q() :- TxOut(t, s, 'U8Pk', a)"));
  auto on_chain = monitor.Add("u3", Q("q() :- TxOut(t, s, 'U3Pk', a)"));
  auto never = monitor.Add("u9", Q("q() :- TxOut(t, s, 'U9Pk', a)"));
  ASSERT_TRUE(pending_only.ok());
  ASSERT_TRUE(on_chain.ok());
  ASSERT_TRUE(never.ok());

  auto changes = monitor.Poll();
  ASSERT_TRUE(changes.ok());
  ASSERT_EQ(changes->size(), 3u);
  EXPECT_EQ(monitor.verdict(*pending_only), Verdict::kPossible);
  EXPECT_EQ(monitor.verdict(*on_chain), Verdict::kHappened);
  EXPECT_EQ(monitor.verdict(*never), Verdict::kImpossible);
  for (const auto& change : *changes) {
    EXPECT_EQ(change.before, Verdict::kUnknown);
  }
}

TEST(ConstraintMonitorTest, QuiescentPollReportsNothing) {
  BlockchainDatabase db = MakeRunningExample();
  ConstraintMonitor monitor(&db);
  ASSERT_TRUE(monitor.Add("u8", Q("q() :- TxOut(t, s, 'U8Pk', a)")).ok());
  ASSERT_TRUE(monitor.Poll().ok());
  auto changes = monitor.Poll();
  ASSERT_TRUE(changes.ok());
  EXPECT_TRUE(changes->empty());
}

TEST(ConstraintMonitorTest, TransitionsTrackDatabaseEvolution) {
  BlockchainDatabase db = MakeRunningExample();
  ConstraintMonitor monitor(&db);
  // "U8Pk is paid" requires T4 (hence T1, T2, T3).
  auto handle = monitor.Add("u8", Q("q() :- TxOut(t, s, 'U8Pk', a)"));
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(monitor.Poll().ok());
  EXPECT_EQ(monitor.verdict(*handle), Verdict::kPossible);

  // T5 confirms: T1 becomes permanently conflicted, so T2/T4 can never
  // append — the payout flips to impossible once T1 is evicted.
  ASSERT_TRUE(db.ApplyPending(4).ok());     // T5 into R.
  ASSERT_TRUE(db.DiscardPending(0).ok());   // Node evicts T1.
  auto changes = monitor.Poll();
  ASSERT_TRUE(changes.ok());
  ASSERT_EQ(changes->size(), 1u);
  EXPECT_EQ((*changes)[0].before, Verdict::kPossible);
  EXPECT_EQ((*changes)[0].after, Verdict::kImpossible);
}

TEST(ConstraintMonitorTest, PossibleBecomesHappened) {
  BlockchainDatabase db = MakeRunningExample();
  ConstraintMonitor monitor(&db);
  auto handle = monitor.Add("u5", Q("q() :- TxOut(t, s, 'U5Pk', a)"));
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(monitor.Poll().ok());
  EXPECT_EQ(monitor.verdict(*handle), Verdict::kPossible);

  ASSERT_TRUE(db.ApplyPending(0).ok());  // T1 (pays U5Pk) confirms.
  auto changes = monitor.Poll();
  ASSERT_TRUE(changes.ok());
  ASSERT_EQ(changes->size(), 1u);
  EXPECT_EQ((*changes)[0].after, Verdict::kHappened);
  EXPECT_EQ(monitor.label((*changes)[0].handle), "u5");
}

TEST(ConstraintMonitorTest, VerdictStrings) {
  EXPECT_STREQ(ConstraintMonitor::VerdictToString(Verdict::kHappened),
               "happened");
  EXPECT_STREQ(ConstraintMonitor::VerdictToString(Verdict::kPossible),
               "possible");
  EXPECT_STREQ(ConstraintMonitor::VerdictToString(Verdict::kImpossible),
               "impossible");
  EXPECT_STREQ(ConstraintMonitor::VerdictToString(Verdict::kUnknown),
               "unknown");
  EXPECT_STREQ(ConstraintMonitor::VerdictToString(Verdict::kUndecided),
               "undecided");
}

// A failing poll must not silently commit the verdicts it computed before
// the failure: a transition committed-but-not-returned is lost forever (the
// next poll sees the verdict already updated and reports no Change).
TEST(ConstraintMonitorTest, BaseRemovalDirtiesOnlyTouchedRelations) {
  BlockchainDatabase db = MakeRunningExample();
  ConstraintMonitor monitor(&db);
  auto watch_out = monitor.Add("u9", Q("q() :- TxOut(t, s, 'U9Pk', a)"));
  auto watch_in = monitor.Add("in", Q("q() :- TxIn(p, s, 'U1Pk', a, n, g)"));
  ASSERT_TRUE(watch_out.ok());
  ASSERT_TRUE(watch_in.ok());
  const Tuple row({Value::Int(99), Value::Int(1), Value::Str("U9Pk"),
                   Value::Int(1)});
  ASSERT_TRUE(db.InsertCurrent("TxOut", row).ok());
  ASSERT_TRUE(monitor.Poll().ok());
  EXPECT_EQ(monitor.verdict(*watch_out), Verdict::kHappened);

  // A reorg retracts the row: the TxOut watcher must go dirty and
  // re-verdict. The TxIn watcher also re-runs — its IND-closed footprint
  // spans TxOut (inputs reference outputs) — but keeps its verdict.
  ASSERT_TRUE(db.RemoveCurrent("TxOut", row).ok());
  auto changes = monitor.Poll();
  ASSERT_TRUE(changes.ok());
  ASSERT_EQ(changes->size(), 1u);
  EXPECT_EQ((*changes)[0].before, Verdict::kHappened);
  EXPECT_EQ((*changes)[0].after, Verdict::kImpossible);
  EXPECT_EQ(monitor.verdict(*watch_out), Verdict::kImpossible);

}

TEST(ConstraintMonitorTest, RemovalDirtyFilterSkipsUncoupledWatchers) {
  // TxIn/TxOut share one IND-coupling class, so the bitcoin schema cannot
  // show the filter's precision; two IND-free relations can. Only the
  // watcher of the retracted relation re-evaluates.
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "R", {Attribute{"a", ValueType::kInt, false}}))
                  .ok());
  ASSERT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "S", {Attribute{"x", ValueType::kInt, false}}))
                  .ok());
  auto db = BlockchainDatabase::Create(std::move(catalog), ConstraintSet());
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->InsertCurrent("R", Tuple({Value::Int(1)})).ok());
  ASSERT_TRUE(db->InsertCurrent("R", Tuple({Value::Int(2)})).ok());
  ASSERT_TRUE(db->InsertCurrent("S", Tuple({Value::Int(7)})).ok());

  ConstraintMonitor monitor(&*db);
  auto watch_r = monitor.Add("r", Q("q() :- R(x)"));
  auto watch_s = monitor.Add("s", Q("q() :- S(x)"));
  ASSERT_TRUE(watch_r.ok());
  ASSERT_TRUE(watch_s.ok());
  ASSERT_TRUE(monitor.Poll().ok());

  ASSERT_TRUE(db->RemoveCurrent("R", Tuple({Value::Int(2)})).ok());
  const auto evaluated_before = monitor.poll_stats().constraints_evaluated;
  const auto skipped_before = monitor.poll_stats().constraints_skipped;
  auto changes = monitor.Poll();
  ASSERT_TRUE(changes.ok());
  EXPECT_TRUE(changes->empty());  // R(1) still matches.
  EXPECT_EQ(monitor.poll_stats().constraints_evaluated - evaluated_before,
            1u);
  EXPECT_EQ(monitor.poll_stats().constraints_skipped - skipped_before, 1u);
}

TEST(ConstraintMonitorTest, RestoredTransactionReopensPossibility) {
  BlockchainDatabase db = MakeRunningExample();
  ConstraintMonitor monitor(&db);
  auto u5 = monitor.Add("u5", Q("q() :- TxOut(t, s, 'U5Pk', a)"));
  ASSERT_TRUE(u5.ok());
  ASSERT_TRUE(db.ApplyPending(0).ok());  // T1 pays U5Pk on-chain.
  ASSERT_TRUE(monitor.Poll().ok());
  EXPECT_EQ(monitor.verdict(*u5), Verdict::kHappened);

  // The reorg returns T1 to the mempool: kPendingRestored carries T1's
  // registration-time footprint, so the watcher goes dirty and the payout
  // is merely possible again.
  ASSERT_TRUE(db.UnapplyPending(0).ok());
  auto changes = monitor.Poll();
  ASSERT_TRUE(changes.ok());
  ASSERT_EQ(changes->size(), 1u);
  EXPECT_EQ((*changes)[0].before, Verdict::kHappened);
  EXPECT_EQ((*changes)[0].after, Verdict::kPossible);
  EXPECT_EQ(monitor.verdict(*u5), Verdict::kPossible);
}

TEST(ConstraintMonitorTest, FailedPollDoesNotSwallowTransitions) {
  BlockchainDatabase db = MakeRunningExample();
  ConstraintMonitor monitor(&db);
  // Handle order matters: the transitioning entry must precede the failing
  // one so its verdict is computed first.
  auto moving = monitor.Add("u5", Q("q() :- TxOut(t, s, 'U5Pk', a)"));
  auto aggregate =
      monitor.Add("count", Q("[q(count()) :- TxOut(t, s, p, a)] = 99"));
  ASSERT_TRUE(moving.ok());
  ASSERT_TRUE(aggregate.ok());
  ASSERT_TRUE(monitor.Poll().ok());
  ASSERT_EQ(monitor.verdict(*moving), Verdict::kPossible);

  ASSERT_TRUE(db.ApplyPending(0).ok());  // T1 (pays U5Pk) confirms.
  // kOpt is unsound for the aggregate entry, so its evaluation errors —
  // after the u5 entry's new verdict was already computed.
  DcSatOptions opt_only;
  opt_only.algorithm = DcSatAlgorithm::kOpt;
  EXPECT_FALSE(monitor.Poll(opt_only).ok());
  // Nothing committed: u5 still reports the old verdict...
  EXPECT_EQ(monitor.verdict(*moving), Verdict::kPossible);

  // ...and the next successful poll reports its transition.
  auto changes = monitor.Poll();
  ASSERT_TRUE(changes.ok());
  bool reported = false;
  for (const auto& change : *changes) {
    if (change.handle == *moving) {
      EXPECT_EQ(change.before, Verdict::kPossible);
      EXPECT_EQ(change.after, Verdict::kHappened);
      reported = true;
    }
  }
  EXPECT_TRUE(reported);
  EXPECT_EQ(monitor.verdict(*moving), Verdict::kHappened);
}

// A failed poll also must not count its entries as evaluated — the stats
// would otherwise claim work that never committed.
TEST(ConstraintMonitorTest, FailedPollDoesNotCountEvaluations) {
  BlockchainDatabase db = MakeRunningExample();
  ConstraintMonitor monitor(&db);
  ASSERT_TRUE(
      monitor.Add("count", Q("[q(count()) :- TxOut(t, s, p, a)] = 99")).ok());
  DcSatOptions opt_only;
  opt_only.algorithm = DcSatAlgorithm::kOpt;
  EXPECT_FALSE(monitor.Poll(opt_only).ok());
  EXPECT_EQ(monitor.poll_stats().constraints_evaluated, 0u);
  ASSERT_TRUE(monitor.Poll().ok());
  EXPECT_EQ(monitor.poll_stats().constraints_evaluated, 1u);
}

// The worker pool is sized once to the requested width and reused: the
// number of *dirty* constraints fluctuates every poll in steady state, and
// resizing the pool to min(width, dirty) would tear down and respawn
// threads on every fluctuation.
TEST(ConstraintMonitorTest, PoolWidthStableAcrossDirtyCounts) {
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "R", {Attribute{"a", ValueType::kInt, false},
                            Attribute{"b", ValueType::kInt, false}}))
                  .ok());
  ASSERT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "S", {Attribute{"x", ValueType::kInt, false},
                            Attribute{"y", ValueType::kInt, false}}))
                  .ok());
  ConstraintSet constraints;
  constraints.AddFd(*FunctionalDependency::Key(catalog, "R", {"a"}));
  auto db =
      BlockchainDatabase::Create(std::move(catalog), std::move(constraints));
  ASSERT_TRUE(db.ok());
  for (std::int64_t i = 0; i < 3; ++i) {
    Transaction r_txn;
    r_txn.Add("R", Tuple({Value::Int(i), Value::Int(0)}));
    ASSERT_TRUE(db->AddPending(r_txn).ok());
  }

  // Per-member fan-out is what sizes the pool; template batching would
  // collapse the six entries into two class tasks, so it is disabled here.
  MonitorOptions no_batching;
  no_batching.enable_template_batching = false;
  ConstraintMonitor monitor(&*db, no_batching);
  for (int c = 0; c < 4; ++c) {
    ASSERT_TRUE(monitor
                    .Add("r" + std::to_string(c),
                         Q("q() :- R(x, " + std::to_string(c) + ")"))
                    .ok());
  }
  for (int c = 0; c < 2; ++c) {
    ASSERT_TRUE(monitor
                    .Add("s" + std::to_string(c),
                         Q("q() :- S(" + std::to_string(c) + ", y)"))
                    .ok());
  }

  DcSatOptions four_threads;
  four_threads.num_threads = 4;
  ASSERT_TRUE(monitor.Poll(four_threads).ok());  // 6 dirty entries.
  EXPECT_EQ(monitor.poll_stats().threads_used, 4u);

  // Mutate S only: just the two S entries go dirty (no IND couples S to
  // R), yet the pool keeps its requested width.
  Transaction s_txn;
  s_txn.Add("S", Tuple({Value::Int(0), Value::Int(7)}));
  ASSERT_TRUE(db->AddPending(s_txn).ok());
  ASSERT_TRUE(monitor.Poll(four_threads).ok());
  EXPECT_EQ(monitor.poll_stats().threads_used, 4u);
  EXPECT_EQ(monitor.poll_stats().constraints_skipped, 4u);
}

// Regression: poll_stats()/verdict()/label() used to hand out references
// into state the next Poll mutates in place — a data race tsan flagged the
// moment a dashboard thread read counters mid-poll. All three are now
// by-value snapshots taken under the monitor lock; this test recreates the
// racing reader so the tsan job pins the fix.
TEST(ConstraintMonitorTest, StatsReadersRaceWithPoll) {
  BlockchainDatabase db = MakeRunningExample();
  ConstraintMonitor monitor(&db);
  auto handle = monitor.Add("u8", Q("q() :- TxOut(t, s, 'U8Pk', a)"));
  ASSERT_TRUE(handle.ok());

  std::atomic<bool> done{false};
  std::thread reader([&] {
    std::size_t last_polls = 0;
    while (!done.load(std::memory_order_relaxed)) {
      const auto stats = monitor.poll_stats();
      // Snapshots must be internally consistent and monotone even when
      // taken mid-poll.
      EXPECT_GE(stats.polls, last_polls);
      last_polls = stats.polls;
      (void)monitor.verdict(*handle);
      (void)monitor.label(*handle);
      (void)monitor.size();
    }
  });

  bool applied = false;
  for (int i = 0; i < 100; ++i) {
    if (i == 50) applied = db.ApplyPending(4).ok();  // T5 confirms mid-run.
    ASSERT_TRUE(monitor.Poll().ok());
  }
  done.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_TRUE(applied);
  EXPECT_EQ(monitor.poll_stats().polls, 100u);
}

}  // namespace
}  // namespace bcdb
