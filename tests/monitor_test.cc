#include <gtest/gtest.h>

#include "core/monitor.h"
#include "query/parser.h"
#include "running_example.h"

namespace bcdb {
namespace {

using testing_fixtures::MakeRunningExample;
using Verdict = ConstraintMonitor::Verdict;

DenialConstraint Q(const std::string& text) {
  auto q = ParseDenialConstraint(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return *q;
}

TEST(ConstraintMonitorTest, AddValidatesAgainstSchema) {
  BlockchainDatabase db = MakeRunningExample();
  ConstraintMonitor monitor(&db);
  EXPECT_TRUE(monitor.Add("ok", Q("q() :- TxOut(t, s, 'U8Pk', a)")).ok());
  EXPECT_FALSE(monitor.Add("bad", Q("q() :- Nope(x)")).ok());
  EXPECT_EQ(monitor.size(), 1u);
}

TEST(ConstraintMonitorTest, FirstPollReportsAllVerdicts) {
  BlockchainDatabase db = MakeRunningExample();
  ConstraintMonitor monitor(&db);
  auto pending_only = monitor.Add("u8", Q("q() :- TxOut(t, s, 'U8Pk', a)"));
  auto on_chain = monitor.Add("u3", Q("q() :- TxOut(t, s, 'U3Pk', a)"));
  auto never = monitor.Add("u9", Q("q() :- TxOut(t, s, 'U9Pk', a)"));
  ASSERT_TRUE(pending_only.ok());
  ASSERT_TRUE(on_chain.ok());
  ASSERT_TRUE(never.ok());

  auto changes = monitor.Poll();
  ASSERT_TRUE(changes.ok());
  ASSERT_EQ(changes->size(), 3u);
  EXPECT_EQ(monitor.verdict(*pending_only), Verdict::kPossible);
  EXPECT_EQ(monitor.verdict(*on_chain), Verdict::kHappened);
  EXPECT_EQ(monitor.verdict(*never), Verdict::kImpossible);
  for (const auto& change : *changes) {
    EXPECT_EQ(change.before, Verdict::kUnknown);
  }
}

TEST(ConstraintMonitorTest, QuiescentPollReportsNothing) {
  BlockchainDatabase db = MakeRunningExample();
  ConstraintMonitor monitor(&db);
  ASSERT_TRUE(monitor.Add("u8", Q("q() :- TxOut(t, s, 'U8Pk', a)")).ok());
  ASSERT_TRUE(monitor.Poll().ok());
  auto changes = monitor.Poll();
  ASSERT_TRUE(changes.ok());
  EXPECT_TRUE(changes->empty());
}

TEST(ConstraintMonitorTest, TransitionsTrackDatabaseEvolution) {
  BlockchainDatabase db = MakeRunningExample();
  ConstraintMonitor monitor(&db);
  // "U8Pk is paid" requires T4 (hence T1, T2, T3).
  auto handle = monitor.Add("u8", Q("q() :- TxOut(t, s, 'U8Pk', a)"));
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(monitor.Poll().ok());
  EXPECT_EQ(monitor.verdict(*handle), Verdict::kPossible);

  // T5 confirms: T1 becomes permanently conflicted, so T2/T4 can never
  // append — the payout flips to impossible once T1 is evicted.
  ASSERT_TRUE(db.ApplyPending(4).ok());     // T5 into R.
  ASSERT_TRUE(db.DiscardPending(0).ok());   // Node evicts T1.
  auto changes = monitor.Poll();
  ASSERT_TRUE(changes.ok());
  ASSERT_EQ(changes->size(), 1u);
  EXPECT_EQ((*changes)[0].before, Verdict::kPossible);
  EXPECT_EQ((*changes)[0].after, Verdict::kImpossible);
}

TEST(ConstraintMonitorTest, PossibleBecomesHappened) {
  BlockchainDatabase db = MakeRunningExample();
  ConstraintMonitor monitor(&db);
  auto handle = monitor.Add("u5", Q("q() :- TxOut(t, s, 'U5Pk', a)"));
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(monitor.Poll().ok());
  EXPECT_EQ(monitor.verdict(*handle), Verdict::kPossible);

  ASSERT_TRUE(db.ApplyPending(0).ok());  // T1 (pays U5Pk) confirms.
  auto changes = monitor.Poll();
  ASSERT_TRUE(changes.ok());
  ASSERT_EQ(changes->size(), 1u);
  EXPECT_EQ((*changes)[0].after, Verdict::kHappened);
  EXPECT_EQ(monitor.label((*changes)[0].handle), "u5");
}

TEST(ConstraintMonitorTest, VerdictStrings) {
  EXPECT_STREQ(ConstraintMonitor::VerdictToString(Verdict::kHappened),
               "happened");
  EXPECT_STREQ(ConstraintMonitor::VerdictToString(Verdict::kPossible),
               "possible");
  EXPECT_STREQ(ConstraintMonitor::VerdictToString(Verdict::kImpossible),
               "impossible");
  EXPECT_STREQ(ConstraintMonitor::VerdictToString(Verdict::kUnknown),
               "unknown");
}

}  // namespace
}  // namespace bcdb
