// Fault-injection matrix for the durable store: a randomized churn
// workload is persisted, the process "crashes" (store closed, files
// corrupted per-variant), the database is recovered, and the remaining
// operations are re-applied. The recovered run must end bit-identical to a
// never-crashed baseline — same relation contents id-for-id, same pending
// slots, and the same DCSat verdicts / monitor verdicts folded into a
// digest. 30 seeds sweep kill points (1/3 vs 2/3 through the workload)
// crossed with five corruption variants:
//
//   seed % 5 == 0  clean restart (no corruption)
//   seed % 5 == 1  torn final WAL record (truncated tail)
//   seed % 5 == 2  bit flip mid-WAL (checksum-detected interior corruption)
//   seed % 5 == 3  corrupted newest checkpoint (fallback + WAL roll-forward)
//   seed % 5 == 4  orphaned .tmp segment (crash mid-checkpoint-write)
//
// The workload spans the full mutation lifecycle — base inserts AND
// removals, pending add/apply/discard AND restore (UnapplyPending) — and
// every seed emits one mid-workload "reorg burst" (an unapply followed by
// base removals, back to back, as a chain switch would produce). Seeds
// with seed % 3 == 0 move their kill point INSIDE that burst, so recovery
// must roll forward from a WAL that ends halfway through a reorg.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/dcsat.h"
#include "core/monitor.h"
#include "query/parser.h"
#include "storage/durable_store.h"
#include "storage_test_util.h"
#include "util/hash.h"
#include "util/rng.h"

namespace bcdb {
namespace {

using storage::DurableStore;
using storage::DurableStoreOptions;
using storage_test::ExpectEquivalent;
using storage_test::FileSize;
using storage_test::FlipByte;
using storage_test::ListFilesWithSuffix;
using storage_test::MakeTestCatalog;
using storage_test::ScratchDir;
using storage_test::TruncateFileBy;

constexpr std::size_t kNumSeeds = 30;
constexpr std::size_t kOpsPerSeed = 24;

class Digest {
 public:
  void Mix(std::uint64_t x) {
    state_ = HashMix64(state_ ^ HashMix64(x + 0x9e3779b97f4a7c15ULL));
  }
  void Mix(bool b) { Mix(static_cast<std::uint64_t>(b ? 1 : 2)); }
  std::uint64_t value() const { return state_; }

 private:
  std::uint64_t state_ = 0x5bf03635aca31a6fULL;
};

ConstraintSet MakeConstraints(bool with_ind) {
  Catalog catalog = MakeTestCatalog();
  ConstraintSet constraints;
  auto key = FunctionalDependency::Key(catalog, "R", {"a"});
  EXPECT_TRUE(key.ok());
  constraints.AddFd(std::move(*key));
  if (with_ind) {
    auto ind = InclusionDependency::Create(catalog, "S", {"x"}, "R", {"a"});
    EXPECT_TRUE(ind.ok());
    constraints.AddInd(std::move(*ind));
  }
  return constraints;
}

/// One recorded mutation. The workload is generated once per seed by
/// running it against the baseline; each recorded op published exactly one
/// mutation event, so op index == mutation seq, and replaying ops [E, N)
/// onto any state recovered at end_seq E deterministically reproduces the
/// baseline's final state.
struct Op {
  enum Kind { kInsert, kRemove, kAdd, kApply, kDiscard, kUnapply } kind;
  std::string relation;   // kInsert, kRemove
  Tuple tuple;            // kInsert, kRemove
  Transaction txn{""};    // kAdd
  PendingId pending_id =  // kAdd (assigned id, verified), kApply, kDiscard,
      0;                  // kUnapply
};

/// Op-index range [begin, end) of the reorg burst within the workload;
/// empty when the seed's state offered nothing to reorganize.
struct ReorgWindow {
  std::size_t begin = 0;
  std::size_t end = 0;
};

Transaction RandomTxn(Xoshiro256& rng, std::size_t ordinal) {
  Transaction txn("P" + std::to_string(ordinal));
  const std::size_t num_tuples = 1 + rng.NextBelow(2);
  for (std::size_t i = 0; i < num_tuples; ++i) {
    if (rng.NextBool(0.5)) {
      txn.Add("R", Tuple({Value::Int(rng.NextInRange(0, 5)),
                          Value::Int(rng.NextInRange(0, 3))}));
    } else {
      txn.Add("S", Tuple({Value::Int(rng.NextInRange(0, 5)),
                          Value::Int(rng.NextInRange(0, 3))}));
    }
  }
  return txn;
}

/// Generates and applies the workload against `db`, recording every op
/// that actually published a mutation event (no-op inserts of duplicate
/// tuples are retried, not recorded).
std::vector<Op> GenerateOps(Xoshiro256& rng, BlockchainDatabase* db,
                            ReorgWindow* reorg) {
  std::vector<Op> ops;
  std::vector<PendingId> live;
  std::vector<PendingId> applied;
  std::vector<std::pair<std::string, Tuple>> base;
  std::size_t ordinal = 0;
  // Records `op` iff it published exactly one mutation event.
  auto record = [&](Op op, std::uint64_t seq_before) {
    if (db->mutations().end_seq() == seq_before) return false;  // No event.
    EXPECT_EQ(db->mutations().end_seq(), seq_before + 1);
    ops.push_back(std::move(op));
    return true;
  };
  while (ops.size() < kOpsPerSeed) {
    // Halfway through, a reorg burst: one chain-switch worth of restore +
    // base-retraction events, back to back.
    if (ops.size() == kOpsPerSeed / 2 && reorg->end == 0) {
      reorg->begin = ops.size();
      if (!applied.empty()) {
        Op op;
        op.kind = Op::kUnapply;
        op.pending_id = applied.back();
        const std::uint64_t seq_before = db->mutations().end_seq();
        if (db->UnapplyPending(op.pending_id).ok() &&
            record(std::move(op), seq_before)) {
          live.push_back(applied.back());
          applied.pop_back();
        }
      }
      for (std::size_t burst = 0; burst < 2 && !base.empty(); ++burst) {
        Op op;
        op.kind = Op::kRemove;
        op.relation = base.back().first;
        op.tuple = base.back().second;
        const std::uint64_t seq_before = db->mutations().end_seq();
        if (db->RemoveCurrent(op.relation, op.tuple).ok()) {
          record(std::move(op), seq_before);
        }
        base.pop_back();
      }
      reorg->end = ops.size();
      continue;
    }
    const std::uint64_t seq_before = db->mutations().end_seq();
    Op op;
    const std::size_t pick = rng.NextBelow(6);
    if (pick == 0) {
      op.kind = Op::kInsert;
      op.relation = rng.NextBool(0.5) ? "R" : "S";
      op.tuple = Tuple({Value::Int(rng.NextInRange(0, 20)),
                        Value::Int(rng.NextInRange(0, 3))});
      if (!db->InsertCurrent(op.relation, op.tuple).ok()) continue;
      if (record(std::move(op), seq_before)) {
        base.emplace_back(ops.back().relation, ops.back().tuple);
      }
      continue;
    }
    if (pick == 4) {  // Reorg-style base retraction.
      if (base.empty()) continue;
      const std::size_t at = rng.NextBelow(base.size());
      op.kind = Op::kRemove;
      op.relation = base[at].first;
      op.tuple = base[at].second;
      // A stale entry (ownership demoted by a prior unapply) just drops.
      if (db->RemoveCurrent(op.relation, op.tuple).ok()) {
        record(std::move(op), seq_before);
      }
      base.erase(base.begin() + at);
      continue;
    }
    if (pick == 5) {  // Reorg-style restore of an applied transaction.
      if (applied.empty()) continue;
      const std::size_t at = rng.NextBelow(applied.size());
      op.kind = Op::kUnapply;
      op.pending_id = applied[at];
      if (!db->UnapplyPending(op.pending_id).ok()) continue;
      if (record(std::move(op), seq_before)) {
        live.push_back(applied[at]);
        applied.erase(applied.begin() + at);
      }
      continue;
    }
    if (pick == 1 || live.empty()) {
      op.kind = Op::kAdd;
      op.txn = RandomTxn(rng, ordinal++);
      auto id = db->AddPending(op.txn);
      if (!id.ok()) continue;
      op.pending_id = *id;
      live.push_back(*id);
    } else {
      const std::size_t at = rng.NextBelow(live.size());
      op.pending_id = live[at];
      if (pick == 2 && db->ApplyPending(op.pending_id).ok()) {
        op.kind = Op::kApply;
        applied.push_back(op.pending_id);
      } else if (db->DiscardPending(op.pending_id).ok()) {
        op.kind = Op::kDiscard;
      } else {
        continue;
      }
      live.erase(live.begin() + at);
    }
    record(std::move(op), seq_before);
  }
  return ops;
}

/// Replays one recorded op; every replay must succeed and assign the same
/// ids it did on the baseline.
void ReplayOp(const Op& op, BlockchainDatabase* db) {
  switch (op.kind) {
    case Op::kInsert:
      ASSERT_TRUE(db->InsertCurrent(op.relation, op.tuple).ok());
      break;
    case Op::kAdd: {
      auto id = db->AddPending(op.txn);
      ASSERT_TRUE(id.ok());
      ASSERT_EQ(*id, op.pending_id);
      break;
    }
    case Op::kApply:
      ASSERT_TRUE(db->ApplyPending(op.pending_id).ok());
      break;
    case Op::kDiscard:
      ASSERT_TRUE(db->DiscardPending(op.pending_id).ok());
      break;
    case Op::kRemove:
      ASSERT_TRUE(db->RemoveCurrent(op.relation, op.tuple).ok());
      break;
    case Op::kUnapply:
      ASSERT_TRUE(db->UnapplyPending(op.pending_id).ok());
      break;
  }
}

const char* kEngineQueries[] = {
    "q() :- R(x, y)",
    "q() :- R(0, y)",
    "q() :- R(x, y), S(x, z)",
    "q() :- R(x, y), S(x, z), y < z",
};

const char* kMonitorQueries[] = {
    "q() :- R(x, y)",
    "q() :- R(x, 2)",
    "q() :- R(x, y), S(x, z)",
};

/// Folds every constraint-level observable of `db`'s final state into the
/// digest: DCSat verdicts + witnesses over the engine queries, and monitor
/// verdicts after one poll.
void DigestVerdicts(BlockchainDatabase* db, Digest* digest) {
  DcSatEngine engine(db);
  for (const char* text : kEngineQueries) {
    auto q = ParseDenialConstraint(text);
    ASSERT_TRUE(q.ok()) << text;
    auto result = engine.Check(*q);
    ASSERT_TRUE(result.ok()) << text;
    digest->Mix(result->decided);
    digest->Mix(result->satisfied);
    digest->Mix(result->witness.has_value());
    if (result->witness) {
      digest->Mix(static_cast<std::uint64_t>(result->witness->size()));
      for (PendingId id : *result->witness) {
        digest->Mix(static_cast<std::uint64_t>(id));
      }
    }
  }
  ConstraintMonitor monitor(db);
  std::vector<MonitorHandle> handles;
  for (const char* text : kMonitorQueries) {
    auto handle = monitor.Add(text, text);
    ASSERT_TRUE(handle.ok()) << text;
    handles.push_back(*handle);
  }
  ASSERT_TRUE(monitor.Poll().ok());
  for (MonitorHandle handle : handles) {
    digest->Mix(static_cast<std::uint64_t>(monitor.verdict(handle)));
  }
}

void CorruptPerVariant(const std::string& dir, std::uint64_t variant) {
  switch (variant) {
    case 0:  // Clean restart.
      break;
    case 1: {  // Torn final WAL record.
      const std::vector<std::string> wals = ListFilesWithSuffix(dir, ".log");
      if (!wals.empty() && FileSize(wals.back()) > 0) {
        TruncateFileBy(wals.back(), 3);
      }
      break;
    }
    case 2: {  // Bit flip mid-WAL.
      const std::vector<std::string> wals = ListFilesWithSuffix(dir, ".log");
      if (!wals.empty() && FileSize(wals.back()) > 0) {
        FlipByte(wals.back(), FileSize(wals.back()) / 2);
      }
      break;
    }
    case 3: {  // Corrupted newest checkpoint: force the fallback path.
      const std::vector<std::string> segs = ListFilesWithSuffix(dir, ".seg");
      if (!segs.empty()) {
        FlipByte(segs.back(), FileSize(segs.back()) / 2);
      }
      break;
    }
    case 4:  // Orphaned .tmp from a crash mid-checkpoint-write.
      storage_test::AppendBytesToFile(
          dir + "/checkpoint-ffffffffffffffff.seg.tmp", "half-written junk");
      break;
    default:
      FAIL() << "unknown variant " << variant;
  }
}

TEST(CrashRecoveryTest, ThirtySeedFaultMatrixMatchesNeverCrashedBaseline) {
  for (std::uint64_t seed = 0; seed < kNumSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const bool with_ind = (seed % 2) == 1;
    const std::uint64_t variant = seed % 5;
    Xoshiro256 rng(seed);

    // Baseline: the full workload with no persistence and no crash.
    auto baseline =
        BlockchainDatabase::Create(MakeTestCatalog(), MakeConstraints(with_ind));
    ASSERT_TRUE(baseline.ok());
    ReorgWindow reorg;
    const std::vector<Op> ops = GenerateOps(rng, &*baseline, &reorg);
    ASSERT_EQ(ops.size(), kOpsPerSeed);
    Digest baseline_digest;
    ASSERT_NO_FATAL_FAILURE(DigestVerdicts(&*baseline, &baseline_digest));

    // Crash run: persist ops [0, kill) with two interior checkpoints, then
    // "crash" (close + corrupt).
    ScratchDir scratch;
    const std::string dir = scratch.Sub("db");
    std::size_t kill =
        (seed % 2 == 0) ? kOpsPerSeed / 3 : (2 * kOpsPerSeed) / 3;
    // A third of the seeds crash INSIDE the reorg burst: the WAL ends with
    // a restore already persisted but its sibling retractions lost.
    if (seed % 3 == 0 && reorg.end > reorg.begin + 1) {
      kill = reorg.begin + 1;
    }
    {
      auto store = DurableStore::Open(dir, MakeTestCatalog());
      ASSERT_TRUE(store.ok()) << store.status();
      auto db = (*store)->Recover(MakeConstraints(with_ind));
      ASSERT_TRUE(db.ok()) << db.status();
      db->AttachDurabilitySink(store->get());
      for (std::size_t i = 0; i < kill; ++i) {
        ASSERT_NO_FATAL_FAILURE(ReplayOp(ops[i], &*db));
        if (i + 1 == kill / 3 || i + 1 == (2 * kill) / 3) {
          ASSERT_TRUE((*store)->Checkpoint(*db).ok());
        }
      }
      ASSERT_TRUE((*store)->Sync().ok());
      ASSERT_TRUE((*store)->status().ok());
    }
    ASSERT_NO_FATAL_FAILURE(CorruptPerVariant(dir, variant));

    // Recover, then re-apply everything the recovered image is missing.
    auto store = DurableStore::Open(dir, MakeTestCatalog());
    ASSERT_TRUE(store.ok()) << store.status();
    auto recovered = (*store)->Recover(MakeConstraints(with_ind));
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    const std::uint64_t resume_seq = recovered->mutations().end_seq();
    ASSERT_LE(resume_seq, kill);
    if (variant == 0) {
      // Clean restart loses nothing and must not report degradation.
      EXPECT_EQ(resume_seq, kill);
      EXPECT_FALSE((*store)->stats().degraded_recovery);
    }
    recovered->AttachDurabilitySink(store->get());
    for (std::size_t i = resume_seq; i < kOpsPerSeed; ++i) {
      ASSERT_NO_FATAL_FAILURE(ReplayOp(ops[i], &*recovered));
    }
    ASSERT_TRUE((*store)->status().ok());

    // Structural identity and verdict identity with the baseline.
    ASSERT_NO_FATAL_FAILURE(ExpectEquivalent(*baseline, *recovered));
    Digest recovered_digest;
    ASSERT_NO_FATAL_FAILURE(DigestVerdicts(&*recovered, &recovered_digest));
    EXPECT_EQ(recovered_digest.value(), baseline_digest.value())
        << "constraint verdicts diverged after crash recovery";
  }
}

}  // namespace
}  // namespace bcdb
