#include <gtest/gtest.h>

#include "bitcoin/miner.h"
#include "bitcoin/node.h"

namespace bcdb {
namespace bitcoin {
namespace {

BitcoinTransaction Payment(const OutPoint& src, const std::string& from,
                           Satoshi in_amount, const std::string& to,
                           Satoshi amount, Satoshi fee) {
  std::vector<TxOutput> outputs{TxOutput{to, amount}};
  const Satoshi change = in_amount - amount - fee;
  if (change > 0) outputs.push_back(TxOutput{from, change});
  return BitcoinTransaction(
      {TxInput{src, from, in_amount, SignatureFor(from)}}, outputs);
}

class MinerTest : public ::testing::Test {
 protected:
  MinerTest() {
    // Two funded users.
    cb1_ = std::make_unique<BitcoinTransaction>(
        BitcoinTransaction::Coinbase("AlicePk", kBlockReward, 1));
    EXPECT_TRUE(chain_.MineAndAppend({*cb1_}).ok());
    cb2_ = std::make_unique<BitcoinTransaction>(
        BitcoinTransaction::Coinbase("BobPk", kBlockReward, 2));
    EXPECT_TRUE(chain_.MineAndAppend({*cb2_}).ok());
  }

  OutPoint AliceUtxo() const { return OutPoint{cb1_->txid(), 1}; }
  OutPoint BobUtxo() const { return OutPoint{cb2_->txid(), 1}; }

  Blockchain chain_;
  Mempool mempool_;
  Miner miner_;
  std::unique_ptr<BitcoinTransaction> cb1_, cb2_;
};

TEST_F(MinerTest, IncludesValidTransactionsAndCoinbase) {
  ASSERT_TRUE(mempool_
                  .Add(chain_, Payment(AliceUtxo(), "AlicePk", kBlockReward,
                                       "CarolPk", kCoin, 1000))
                  .ok());
  MinerPolicy policy;
  Block block = miner_.BuildBlock(chain_, mempool_, policy);
  ASSERT_EQ(block.transactions().size(), 2u);
  EXPECT_TRUE(block.transactions()[0].is_coinbase());
  // Coinbase claims subsidy + fees.
  EXPECT_EQ(block.transactions()[0].OutputTotal(), policy.block_reward + 1000);
  EXPECT_TRUE(chain_.AppendBlock(block).ok());
}

TEST_F(MinerTest, PicksHigherFeeConflict) {
  BitcoinTransaction cheap = Payment(AliceUtxo(), "AlicePk", kBlockReward,
                                     "CarolPk", kCoin, 1000);
  BitcoinTransaction pricey = Payment(AliceUtxo(), "AlicePk", kBlockReward,
                                      "DanPk", kCoin, 50'000);
  ASSERT_TRUE(mempool_.Add(chain_, cheap).ok());
  ASSERT_TRUE(mempool_.Add(chain_, pricey).ok());
  Block block = miner_.BuildBlock(chain_, mempool_, MinerPolicy{});
  ASSERT_EQ(block.transactions().size(), 2u);
  EXPECT_EQ(block.transactions()[1].txid(), pricey.txid());
}

TEST_F(MinerTest, RespectsDependencies) {
  BitcoinTransaction parent = Payment(AliceUtxo(), "AlicePk", kBlockReward,
                                      "CarolPk", kCoin, 1000);
  BitcoinTransaction child = Payment(OutPoint{parent.txid(), 1}, "CarolPk",
                                     kCoin, "DanPk", kCoin / 2, 2000);
  ASSERT_TRUE(mempool_.Add(chain_, parent).ok());
  ASSERT_TRUE(mempool_.Add(chain_, child).ok());
  Block block = miner_.BuildBlock(chain_, mempool_, MinerPolicy{});
  // Both make it, parent before child (block validity), plus the coinbase.
  ASSERT_EQ(block.transactions().size(), 3u);
  EXPECT_TRUE(chain_.AppendBlock(block).ok());
}

TEST_F(MinerTest, MaxTransactionsHonored) {
  ASSERT_TRUE(mempool_
                  .Add(chain_, Payment(AliceUtxo(), "AlicePk", kBlockReward,
                                       "CarolPk", kCoin, 1000))
                  .ok());
  ASSERT_TRUE(mempool_
                  .Add(chain_, Payment(BobUtxo(), "BobPk", kBlockReward,
                                       "DanPk", kCoin, 9000))
                  .ok());
  MinerPolicy policy;
  policy.max_transactions = 1;
  Block block = miner_.BuildBlock(chain_, mempool_, policy);
  ASSERT_EQ(block.transactions().size(), 2u);  // Coinbase + best fee.
  EXPECT_EQ(block.transactions()[1].Fee(), 9000);
}

TEST_F(MinerTest, MinFeeFilters) {
  ASSERT_TRUE(mempool_
                  .Add(chain_, Payment(AliceUtxo(), "AlicePk", kBlockReward,
                                       "CarolPk", kCoin, 100))
                  .ok());
  MinerPolicy policy;
  policy.min_fee = 1000;
  Block block = miner_.BuildBlock(chain_, mempool_, policy);
  EXPECT_EQ(block.transactions().size(), 1u);  // Coinbase only.
}

TEST_F(MinerTest, NodeMineBlockEvictsAndConfirms) {
  SimulatedNode node;
  MinerPolicy policy;
  ASSERT_TRUE(node.MineBlock(policy).ok());  // Fund the miner.
  const BitcoinTransaction& cb = node.chain().tip().transactions()[0];
  ASSERT_TRUE(node.SubmitTransaction(Payment(OutPoint{cb.txid(), 1}, "MinerPk",
                                             kBlockReward, "ZoePk", kCoin,
                                             1000))
                  .ok());
  EXPECT_EQ(node.mempool().size(), 1u);
  auto confirmed = node.MineBlock(policy);
  ASSERT_TRUE(confirmed.ok());
  EXPECT_EQ(*confirmed, 1u);
  EXPECT_EQ(node.mempool().size(), 0u);
  EXPECT_EQ(node.chain().height(), 2u);
}

}  // namespace
}  // namespace bitcoin
}  // namespace bcdb
