#include <gtest/gtest.h>

#include "query/analysis.h"
#include "query/parser.h"

namespace bcdb {
namespace {

Catalog MakeCatalog() {
  Catalog catalog;
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "R", {Attribute{"a", ValueType::kInt, false},
                            Attribute{"b", ValueType::kInt, false},
                            Attribute{"c", ValueType::kInt, true}}))
                  .ok());
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "S", {Attribute{"x", ValueType::kInt, false},
                            Attribute{"y", ValueType::kInt, false}}))
                  .ok());
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "T", {Attribute{"u", ValueType::kInt, false},
                            Attribute{"v", ValueType::kInt, false}}))
                  .ok());
  return catalog;
}

QueryAnalysis Analyze(const std::string& text, const Catalog& catalog) {
  auto q = ParseDenialConstraint(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return AnalyzeQuery(*q, catalog);
}

TEST(AnalysisTest, PositiveConjunctiveIsMonotone) {
  Catalog catalog = MakeCatalog();
  EXPECT_TRUE(Analyze("q() :- R(x, y, z), S(y, w)", catalog).monotone);
}

TEST(AnalysisTest, NegationBreaksMonotonicity) {
  Catalog catalog = MakeCatalog();
  EXPECT_FALSE(Analyze("q() :- R(x, y, z), not S(x, y)", catalog).monotone);
}

TEST(AnalysisTest, AggregateMonotonicityByFunctionAndOp) {
  Catalog catalog = MakeCatalog();
  EXPECT_TRUE(Analyze("[q(count()) :- R(x, y, z)] > 5", catalog).monotone);
  EXPECT_TRUE(Analyze("[q(count()) :- R(x, y, z)] >= 5", catalog).monotone);
  EXPECT_FALSE(Analyze("[q(count()) :- R(x, y, z)] < 5", catalog).monotone);
  EXPECT_FALSE(Analyze("[q(count()) :- R(x, y, z)] = 5", catalog).monotone);
  EXPECT_TRUE(Analyze("[q(cntd(x)) :- R(x, y, z)] > 5", catalog).monotone);
  EXPECT_TRUE(Analyze("[q(max(x)) :- R(x, y, z)] > 5", catalog).monotone);
  EXPECT_FALSE(Analyze("[q(max(x)) :- R(x, y, z)] < 5", catalog).monotone);
  EXPECT_TRUE(Analyze("[q(min(x)) :- R(x, y, z)] < 5", catalog).monotone);
  EXPECT_FALSE(Analyze("[q(min(x)) :- R(x, y, z)] > 5", catalog).monotone);
}

TEST(AnalysisTest, SumMonotonicityNeedsNonNegativeHint) {
  Catalog catalog = MakeCatalog();
  // c carries the non_negative hint, a does not.
  EXPECT_TRUE(Analyze("[q(sum(z)) :- R(x, y, z)] > 5", catalog).monotone);
  EXPECT_FALSE(Analyze("[q(sum(x)) :- R(x, y, z)] > 5", catalog).monotone);
}

TEST(AnalysisTest, ConnectivityBySharedVariables) {
  Catalog catalog = MakeCatalog();
  EXPECT_TRUE(Analyze("q() :- S(x, y), T(y, z)", catalog).connected);
  EXPECT_FALSE(Analyze("q() :- S(x, y), T(u, v)", catalog).connected);
  // Paper's example: comparisons other than '=' do not connect.
  EXPECT_FALSE(Analyze("q() :- S(x, y), T(w, v), y < v", catalog).connected);
  // '=' merges terms.
  EXPECT_TRUE(Analyze("q() :- S(x, y), T(w, v), y = v", catalog).connected);
}

TEST(AnalysisTest, ConnectivityThroughSharedConstant) {
  Catalog catalog = MakeCatalog();
  EXPECT_TRUE(Analyze("q() :- S(x, 7), T(u, 7)", catalog).connected);
  EXPECT_FALSE(Analyze("q() :- S(x, 7), T(u, 8)", catalog).connected);
}

TEST(AnalysisTest, SingleAtomConnected) {
  Catalog catalog = MakeCatalog();
  EXPECT_TRUE(Analyze("q() :- R(x, y, z)", catalog).connected);
}

TEST(AnalysisTest, AggregatesAreNotConnected) {
  Catalog catalog = MakeCatalog();
  // The paper restricts the connected optimization to conjunctive queries.
  EXPECT_FALSE(Analyze("[q(count()) :- S(x, y)] > 5", catalog).connected);
}

TEST(AnalysisTest, EqualitiesFromConstraints) {
  Catalog catalog = MakeCatalog();
  ConstraintSet constraints;
  auto ind = InclusionDependency::Create(catalog, "S", {"x"}, "R", {"a"});
  ASSERT_TRUE(ind.ok());
  constraints.AddInd(std::move(*ind));
  auto equalities = EqualitiesFromConstraints(constraints);
  ASSERT_EQ(equalities.size(), 1u);
  EXPECT_EQ(equalities[0].lhs_relation_id, 1u);  // S
  EXPECT_EQ(equalities[0].rhs_relation_id, 0u);  // R
  EXPECT_EQ(equalities[0].lhs_positions, (std::vector<std::size_t>{0}));
  EXPECT_EQ(equalities[0].rhs_positions, (std::vector<std::size_t>{0}));
}

TEST(AnalysisTest, EqualitiesFromQuerySharedVariables) {
  Catalog catalog = MakeCatalog();
  // Paper Example 7 shape: q() ← R(w, x, u), S(x, w), T(y, x) gives
  // R[1,2]=S[2,1], R[2]=T[2], S[1]=T[2].
  auto q = ParseDenialConstraint("q() :- R(w, x, u), S(x, w), T(y, x)");
  ASSERT_TRUE(q.ok());
  auto equalities = EqualitiesFromQuery(*q, catalog);
  ASSERT_TRUE(equalities.ok());
  ASSERT_EQ(equalities->size(), 3u);
  // R vs S: positions (0,1) ↔ (1,0).
  EXPECT_EQ((*equalities)[0].lhs_positions, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ((*equalities)[0].rhs_positions, (std::vector<std::size_t>{1, 0}));
  // R vs T: x at R pos 1 ↔ T pos 1.
  EXPECT_EQ((*equalities)[1].lhs_positions, (std::vector<std::size_t>{1}));
  EXPECT_EQ((*equalities)[1].rhs_positions, (std::vector<std::size_t>{1}));
  // S vs T: x at S pos 0 ↔ T pos 1.
  EXPECT_EQ((*equalities)[2].lhs_positions, (std::vector<std::size_t>{0}));
  EXPECT_EQ((*equalities)[2].rhs_positions, (std::vector<std::size_t>{1}));
}

TEST(AnalysisTest, EqualitiesFromQueryConstantsAndEqComparisons) {
  Catalog catalog = MakeCatalog();
  auto q = ParseDenialConstraint("q() :- S(x, 7), T(u, 7), x = u");
  ASSERT_TRUE(q.ok());
  auto equalities = EqualitiesFromQuery(*q, catalog);
  ASSERT_TRUE(equalities.ok());
  ASSERT_EQ(equalities->size(), 1u);
  // Both positions pair up: x=u at position 0, constant 7 at position 1.
  EXPECT_EQ((*equalities)[0].lhs_positions, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ((*equalities)[0].rhs_positions, (std::vector<std::size_t>{0, 1}));
}

TEST(AnalysisTest, NoEqualitiesBetweenUnrelatedAtoms) {
  Catalog catalog = MakeCatalog();
  auto q = ParseDenialConstraint("q() :- S(x, y), T(u, v)");
  ASSERT_TRUE(q.ok());
  auto equalities = EqualitiesFromQuery(*q, catalog);
  ASSERT_TRUE(equalities.ok());
  EXPECT_TRUE(equalities->empty());
}

}  // namespace
}  // namespace bcdb
