#ifndef BCDB_TESTS_RUNNING_EXAMPLE_H_
#define BCDB_TESTS_RUNNING_EXAMPLE_H_

#include <string>

#include "bitcoin/to_relational.h"
#include "core/blockchain_db.h"

namespace bcdb {
namespace testing_fixtures {

/// Builds the paper's running example (Figure 2): the simplified Bitcoin
/// schema of Example 1, the current state R, and the five pending
/// transactions T1..T5. Pending ids are 0..4 for T1..T5.
///
/// Structure (amounts in bitcoins; stored as reals):
///   R:  TxOut (1,1,U1Pk,1) (2,1,U1Pk,1) (2,2,U2Pk,4)
///             (3,1,U3Pk,1) (3,2,U4Pk,0.5) (3,3,U1Pk,0.5)
///       TxIn  (1,1,U1Pk,1,3,U1Sig) (2,1,U1Pk,1,3,U1Sig)
///   T1: spends (2,2) -> U5Pk 1, U2Pk 3 (tx 4)
///   T2: spends (4,2) -> U4Pk 3          (tx 5; depends on T1)
///   T3: spends (3,3) -> U4Pk 0.5        (tx 6)
///   T4: spends (6,1) and (5,1) -> U7Pk 2.5, U8Pk 1 (tx 7; depends on T2,T3)
///   T5: spends (2,2) -> U7Pk 4          (tx 8; conflicts with T1)
inline BlockchainDatabase MakeRunningExample() {
  Catalog catalog = bitcoin::MakeBitcoinCatalog();
  auto constraints = bitcoin::MakeBitcoinConstraints(catalog);
  auto db = BlockchainDatabase::Create(std::move(catalog),
                                       std::move(*constraints));

  auto out = [](std::int64_t tx, std::int64_t ser, const std::string& pk,
                double amount) {
    return Tuple({Value::Int(tx), Value::Int(ser), Value::Str(pk),
                  Value::Real(amount)});
  };
  auto in = [](std::int64_t prev_tx, std::int64_t prev_ser,
               const std::string& pk, double amount, std::int64_t new_tx,
               const std::string& sig) {
    return Tuple({Value::Int(prev_tx), Value::Int(prev_ser), Value::Str(pk),
                  Value::Real(amount), Value::Int(new_tx), Value::Str(sig)});
  };

  // Current state R.
  (void)db->InsertCurrent("TxOut", out(1, 1, "U1Pk", 1));
  (void)db->InsertCurrent("TxOut", out(2, 1, "U1Pk", 1));
  (void)db->InsertCurrent("TxOut", out(2, 2, "U2Pk", 4));
  (void)db->InsertCurrent("TxOut", out(3, 1, "U3Pk", 1));
  (void)db->InsertCurrent("TxOut", out(3, 2, "U4Pk", 0.5));
  (void)db->InsertCurrent("TxOut", out(3, 3, "U1Pk", 0.5));
  (void)db->InsertCurrent("TxIn", in(1, 1, "U1Pk", 1, 3, "U1Sig"));
  (void)db->InsertCurrent("TxIn", in(2, 1, "U1Pk", 1, 3, "U1Sig"));

  Transaction t1("T1");
  t1.Add("TxIn", in(2, 2, "U2Pk", 4, 4, "U2Sig"));
  t1.Add("TxOut", out(4, 1, "U5Pk", 1));
  t1.Add("TxOut", out(4, 2, "U2Pk", 3));

  Transaction t2("T2");
  t2.Add("TxIn", in(4, 2, "U2Pk", 3, 5, "U2Sig"));
  t2.Add("TxOut", out(5, 1, "U4Pk", 3));

  Transaction t3("T3");
  t3.Add("TxIn", in(3, 3, "U1Pk", 0.5, 6, "U1Sig"));
  t3.Add("TxOut", out(6, 1, "U4Pk", 0.5));

  Transaction t4("T4");
  t4.Add("TxIn", in(6, 1, "U4Pk", 0.5, 7, "U4Sig"));
  t4.Add("TxIn", in(5, 1, "U4Pk", 3, 7, "U4Sig"));
  t4.Add("TxOut", out(7, 1, "U7Pk", 2.5));
  t4.Add("TxOut", out(7, 2, "U8Pk", 1));

  Transaction t5("T5");
  t5.Add("TxIn", in(2, 2, "U2Pk", 4, 8, "U2Sig"));
  t5.Add("TxOut", out(8, 1, "U7Pk", 4));

  (void)db->AddPending(t1);
  (void)db->AddPending(t2);
  (void)db->AddPending(t3);
  (void)db->AddPending(t4);
  (void)db->AddPending(t5);
  return std::move(*db);
}

}  // namespace testing_fixtures
}  // namespace bcdb

#endif  // BCDB_TESTS_RUNNING_EXAMPLE_H_
