#include <gtest/gtest.h>

#include "constraints/checker.h"
#include "constraints/constraint.h"
#include "relational/database.h"

namespace bcdb {
namespace {

// Schema: Emp(id, dept, office), Dept(name, building)
// FD: Emp dept -> office; Key: Emp id; IND: Emp[dept] ⊆ Dept[name].
Catalog MakeCatalog() {
  Catalog catalog;
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "Emp", {Attribute{"id", ValueType::kInt, false},
                              Attribute{"dept", ValueType::kString, false},
                              Attribute{"office", ValueType::kInt, false}}))
                  .ok());
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "Dept", {Attribute{"name", ValueType::kString, false},
                               Attribute{"building", ValueType::kInt, false}}))
                  .ok());
  return catalog;
}

ConstraintSet MakeConstraints(const Catalog& catalog) {
  ConstraintSet constraints;
  auto key = FunctionalDependency::Key(catalog, "Emp", {"id"});
  EXPECT_TRUE(key.ok());
  constraints.AddFd(std::move(*key));
  auto fd = FunctionalDependency::Create(catalog, "Emp", {"dept"}, {"office"});
  EXPECT_TRUE(fd.ok());
  constraints.AddFd(std::move(*fd));
  auto ind =
      InclusionDependency::Create(catalog, "Emp", {"dept"}, "Dept", {"name"});
  EXPECT_TRUE(ind.ok());
  constraints.AddInd(std::move(*ind));
  return constraints;
}

Tuple Emp(std::int64_t id, const std::string& dept, std::int64_t office) {
  return Tuple({Value::Int(id), Value::Str(dept), Value::Int(office)});
}
Tuple Dept(const std::string& name, std::int64_t building) {
  return Tuple({Value::Str(name), Value::Int(building)});
}

TEST(ConstraintTest, FdCreationResolvesAttributes) {
  Catalog catalog = MakeCatalog();
  auto fd = FunctionalDependency::Create(catalog, "Emp", {"dept"}, {"office"});
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(fd->lhs(), (std::vector<std::size_t>{1}));
  EXPECT_EQ(fd->rhs(), (std::vector<std::size_t>{2}));
  EXPECT_FALSE(fd->is_key());
}

TEST(ConstraintTest, KeyIsFdOverAllAttributes) {
  Catalog catalog = MakeCatalog();
  auto key = FunctionalDependency::Key(catalog, "Emp", {"id"});
  ASSERT_TRUE(key.ok());
  EXPECT_TRUE(key->is_key());
  EXPECT_EQ(key->rhs().size(), 3u);
}

TEST(ConstraintTest, FdRejectsUnknownAttribute) {
  Catalog catalog = MakeCatalog();
  EXPECT_FALSE(
      FunctionalDependency::Create(catalog, "Emp", {"nope"}, {"office"}).ok());
  EXPECT_FALSE(
      FunctionalDependency::Create(catalog, "Nope", {"id"}, {"id"}).ok());
  EXPECT_FALSE(FunctionalDependency::Create(catalog, "Emp", {}, {"id"}).ok());
}

TEST(ConstraintTest, IndRejectsLengthMismatch) {
  Catalog catalog = MakeCatalog();
  EXPECT_FALSE(InclusionDependency::Create(catalog, "Emp", {"dept", "id"},
                                           "Dept", {"name"})
                   .ok());
}

TEST(ConstraintTest, ConstraintSetGrouping) {
  Catalog catalog = MakeCatalog();
  ConstraintSet constraints = MakeConstraints(catalog);
  EXPECT_EQ(constraints.FdsFor(0).size(), 2u);
  EXPECT_TRUE(constraints.FdsFor(1).empty());
  EXPECT_EQ(constraints.IndsWithLhs(0).size(), 1u);
  EXPECT_FALSE(constraints.empty());
}

class CheckerTest : public ::testing::Test {
 protected:
  CheckerTest()
      : catalog_(MakeCatalog()),
        constraints_(MakeConstraints(catalog_)),
        db_(std::move(catalog_)),
        checker_(&db_, &constraints_) {}

  Catalog catalog_;
  ConstraintSet constraints_;
  Database db_;
  ConstraintChecker checker_;
};

TEST_F(CheckerTest, EmptyDatabaseSatisfies) {
  EXPECT_TRUE(checker_.CheckAll(db_.BaseView()).ok());
}

TEST_F(CheckerTest, DetectsKeyViolation) {
  ASSERT_TRUE(db_.Insert("Dept", Dept("eng", 1)).ok());
  ASSERT_TRUE(db_.Insert("Emp", Emp(1, "eng", 10)).ok());
  ASSERT_TRUE(db_.Insert("Emp", Emp(1, "eng", 11)).ok());  // Same id.
  const Status status = checker_.CheckAll(db_.BaseView());
  EXPECT_EQ(status.code(), StatusCode::kConstraintViolation);
}

TEST_F(CheckerTest, DetectsFdViolation) {
  ASSERT_TRUE(db_.Insert("Dept", Dept("eng", 1)).ok());
  ASSERT_TRUE(db_.Insert("Emp", Emp(1, "eng", 10)).ok());
  ASSERT_TRUE(db_.Insert("Emp", Emp(2, "eng", 11)).ok());  // dept -> office.
  EXPECT_FALSE(checker_.Satisfies(db_.BaseView()));
}

TEST_F(CheckerTest, DetectsIndViolation) {
  ASSERT_TRUE(db_.Insert("Emp", Emp(1, "ghost", 10)).ok());
  EXPECT_FALSE(checker_.Satisfies(db_.BaseView()));
  ASSERT_TRUE(db_.Insert("Dept", Dept("ghost", 2)).ok());
  EXPECT_TRUE(checker_.Satisfies(db_.BaseView()));
}

TEST_F(CheckerTest, ViolationOnlyInActivatedWorld) {
  ASSERT_TRUE(db_.Insert("Dept", Dept("eng", 1)).ok());
  ASSERT_TRUE(db_.Insert("Emp", Emp(1, "eng", 10)).ok());
  const TupleOwner t0 = db_.RegisterOwner();
  ASSERT_TRUE(db_.Insert("Emp", Emp(1, "eng", 99), t0).ok());  // Key clash.
  EXPECT_TRUE(checker_.Satisfies(db_.BaseView()));
  WorldView world = db_.BaseView();
  world.Activate(t0);
  EXPECT_FALSE(checker_.Satisfies(world));
}

TEST_F(CheckerTest, CanAppendOwnerChecksFds) {
  ASSERT_TRUE(db_.Insert("Dept", Dept("eng", 1)).ok());
  ASSERT_TRUE(db_.Insert("Emp", Emp(1, "eng", 10)).ok());
  const TupleOwner good = db_.RegisterOwner();
  ASSERT_TRUE(db_.Insert("Emp", Emp(2, "eng", 10), good).ok());
  const TupleOwner bad = db_.RegisterOwner();
  ASSERT_TRUE(db_.Insert("Emp", Emp(3, "eng", 42), bad).ok());  // FD clash.
  EXPECT_TRUE(checker_.CanAppendOwner(db_.BaseView(), good));
  EXPECT_FALSE(checker_.CanAppendOwner(db_.BaseView(), bad));
}

TEST_F(CheckerTest, CanAppendOwnerChecksInds) {
  const TupleOwner orphan = db_.RegisterOwner();
  ASSERT_TRUE(db_.Insert("Emp", Emp(1, "new", 10), orphan).ok());
  EXPECT_FALSE(checker_.CanAppendOwner(db_.BaseView(), orphan));

  // A transaction can bring its own IND witness.
  const TupleOwner self_contained = db_.RegisterOwner();
  ASSERT_TRUE(db_.Insert("Emp", Emp(2, "ops", 20), self_contained).ok());
  ASSERT_TRUE(db_.Insert("Dept", Dept("ops", 3), self_contained).ok());
  EXPECT_TRUE(checker_.CanAppendOwner(db_.BaseView(), self_contained));
}

TEST_F(CheckerTest, CanAppendDependsOnPriorActivation) {
  const TupleOwner parent = db_.RegisterOwner();
  ASSERT_TRUE(db_.Insert("Dept", Dept("lab", 5), parent).ok());
  const TupleOwner child = db_.RegisterOwner();
  ASSERT_TRUE(db_.Insert("Emp", Emp(1, "lab", 50), child).ok());

  EXPECT_FALSE(checker_.CanAppendOwner(db_.BaseView(), child));
  WorldView with_parent = db_.BaseView();
  with_parent.Activate(parent);
  EXPECT_TRUE(checker_.CanAppendOwner(with_parent, child));
}

TEST_F(CheckerTest, FdConsistentPair) {
  const TupleOwner a = db_.RegisterOwner();
  const TupleOwner b = db_.RegisterOwner();
  const TupleOwner c = db_.RegisterOwner();
  ASSERT_TRUE(db_.Insert("Emp", Emp(1, "eng", 10), a).ok());
  ASSERT_TRUE(db_.Insert("Emp", Emp(2, "eng", 10), b).ok());
  // Clashes with a on the key (id 1) but not with b (different dept).
  ASSERT_TRUE(db_.Insert("Emp", Emp(1, "ops", 99), c).ok());
  // d clashes with a and b on the FD dept -> office.
  const TupleOwner d = db_.RegisterOwner();
  ASSERT_TRUE(db_.Insert("Emp", Emp(3, "eng", 42), d).ok());
  EXPECT_TRUE(checker_.FdConsistentPair(a, b));
  EXPECT_FALSE(checker_.FdConsistentPair(a, c));
  EXPECT_TRUE(checker_.FdConsistentPair(b, c));
  EXPECT_FALSE(checker_.FdConsistentPair(a, d));
  EXPECT_FALSE(checker_.FdConsistentPair(b, d));
  EXPECT_TRUE(checker_.FdConsistentPair(c, d));
}

TEST_F(CheckerTest, FdConsistentWithBase) {
  ASSERT_TRUE(db_.Insert("Dept", Dept("eng", 1)).ok());
  ASSERT_TRUE(db_.Insert("Emp", Emp(1, "eng", 10)).ok());
  const TupleOwner clash = db_.RegisterOwner();
  ASSERT_TRUE(db_.Insert("Emp", Emp(1, "eng", 11), clash).ok());
  const TupleOwner fine = db_.RegisterOwner();
  ASSERT_TRUE(db_.Insert("Emp", Emp(7, "eng", 10), fine).ok());
  // Internally inconsistent transaction.
  const TupleOwner internal = db_.RegisterOwner();
  ASSERT_TRUE(db_.Insert("Emp", Emp(8, "eng", 10), internal).ok());
  ASSERT_TRUE(db_.Insert("Emp", Emp(8, "eng", 12), internal).ok());

  EXPECT_FALSE(checker_.FdConsistentWithBase(clash));
  EXPECT_TRUE(checker_.FdConsistentWithBase(fine));
  EXPECT_FALSE(checker_.FdConsistentWithBase(internal));
}

TEST(CheckerPermutationTest, IndWithUnsortedPositionLists) {
  // IND whose attribute lists are not in schema order on either side:
  // Emp[office, dept] ⊆ Loc[room, unit] where Loc stores (unit, room).
  // The checker must permute the projections consistently.
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "Emp", {Attribute{"id", ValueType::kInt, false},
                              Attribute{"dept", ValueType::kString, false},
                              Attribute{"office", ValueType::kInt, false}}))
                  .ok());
  ASSERT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "Loc", {Attribute{"unit", ValueType::kString, false},
                              Attribute{"room", ValueType::kInt, false}}))
                  .ok());
  ConstraintSet constraints;
  auto ind = InclusionDependency::Create(catalog, "Emp", {"office", "dept"},
                                         "Loc", {"room", "unit"});
  ASSERT_TRUE(ind.ok());
  constraints.AddInd(std::move(*ind));

  Database db(std::move(catalog));
  ConstraintChecker checker(&db, &constraints);

  // Loc(unit='eng', room=10) witnesses Emp(office=10, dept='eng').
  ASSERT_TRUE(db.Insert("Loc", Tuple({Value::Str("eng"), Value::Int(10)})).ok());
  ASSERT_TRUE(db.Insert("Emp", Tuple({Value::Int(1), Value::Str("eng"),
                                      Value::Int(10)}))
                  .ok());
  EXPECT_TRUE(checker.Satisfies(db.BaseView()));

  // A swapped witness (room/unit transposed into the wrong columns) must
  // NOT satisfy the dependency.
  ASSERT_TRUE(db.Insert("Emp", Tuple({Value::Int(2), Value::Str("ops"),
                                      Value::Int(20)}))
                  .ok());
  ASSERT_TRUE(db.Insert("Loc", Tuple({Value::Str("20"), Value::Int(0)})).ok());
  EXPECT_FALSE(checker.Satisfies(db.BaseView()));
  ASSERT_TRUE(db.Insert("Loc", Tuple({Value::Str("ops"), Value::Int(20)})).ok());
  EXPECT_TRUE(checker.Satisfies(db.BaseView()));

  // Incremental path uses the same permuted plan.
  const TupleOwner pending = db.RegisterOwner();
  ASSERT_TRUE(db.Insert("Emp", Tuple({Value::Int(3), Value::Str("hr"),
                                      Value::Int(30)}),
                        pending)
                  .ok());
  EXPECT_FALSE(checker.CanAppendOwner(db.BaseView(), pending));
  const TupleOwner with_witness = db.RegisterOwner();
  ASSERT_TRUE(db.Insert("Emp", Tuple({Value::Int(4), Value::Str("qa"),
                                      Value::Int(40)}),
                        with_witness)
                  .ok());
  ASSERT_TRUE(db.Insert("Loc", Tuple({Value::Str("qa"), Value::Int(40)}),
                        with_witness)
                  .ok());
  EXPECT_TRUE(checker.CanAppendOwner(db.BaseView(), with_witness));
}

TEST_F(CheckerTest, DuplicateTupleIsNotAViolation) {
  ASSERT_TRUE(db_.Insert("Dept", Dept("eng", 1)).ok());
  ASSERT_TRUE(db_.Insert("Emp", Emp(1, "eng", 10)).ok());
  const TupleOwner dup = db_.RegisterOwner();
  // Identical tuple re-inserted by a pending transaction: set semantics.
  ASSERT_TRUE(db_.Insert("Emp", Emp(1, "eng", 10), dup).ok());
  EXPECT_TRUE(checker_.CanAppendOwner(db_.BaseView(), dup));
  EXPECT_TRUE(checker_.FdConsistentWithBase(dup));
}

}  // namespace
}  // namespace bcdb
