#include <gtest/gtest.h>

#include "bitcoin/to_relational.h"
#include "core/dcsat.h"
#include "network/simulator.h"
#include "query/parser.h"

namespace bcdb {
namespace net {
namespace {

using bitcoin::BitcoinTransaction;
using bitcoin::kBlockReward;
using bitcoin::kCoin;
using bitcoin::MinerPolicy;
using bitcoin::OutPoint;
using bitcoin::Satoshi;
using bitcoin::SignatureFor;
using bitcoin::TxInput;
using bitcoin::TxOutput;

NetworkParams SmallNet(std::size_t nodes = 4) {
  NetworkParams params;
  params.num_nodes = nodes;
  params.extra_edges = 2;
  params.seed = 5;
  return params;
}

BitcoinTransaction Payment(const OutPoint& src, const std::string& from,
                           Satoshi in_amount, const std::string& to,
                           Satoshi amount, Satoshi fee = 1000) {
  std::vector<TxOutput> outputs{TxOutput{to, amount}};
  const Satoshi change = in_amount - amount - fee;
  if (change > 0) outputs.push_back(TxOutput{from, change});
  return BitcoinTransaction(
      {TxInput{src, from, in_amount, SignatureFor(from)}}, outputs);
}

/// Funds node 0's miner and syncs everyone; returns the coinbase.
BitcoinTransaction FundNetwork(NetworkSimulator& net) {
  MinerPolicy policy;
  policy.miner_pubkey = "FunderPk";
  auto block = net.MineAt(0, policy);
  EXPECT_TRUE(block.ok());
  net.Run();
  return block->transactions()[0];
}

TEST(NetworkTest, TopologyIsConnectedAndSymmetric) {
  NetworkSimulator net(SmallNet(6));
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    EXPECT_FALSE(net.peers(v).empty());
    for (NodeId peer : net.peers(v)) {
      const auto& back = net.peers(peer);
      EXPECT_NE(std::find(back.begin(), back.end(), v), back.end());
    }
  }
}

TEST(NetworkTest, BlockPropagatesToAllNodes) {
  NetworkSimulator net(SmallNet());
  MinerPolicy policy;
  ASSERT_TRUE(net.MineAt(0, policy).ok());
  EXPECT_FALSE(net.ChainsConsistent());  // Not yet delivered.
  net.Run();
  EXPECT_TRUE(net.ChainsConsistent());
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    EXPECT_EQ(net.node(v).chain().height(), 1u);
  }
}

TEST(NetworkTest, TransactionGossipReachesEveryMempool) {
  NetworkSimulator net(SmallNet());
  const BitcoinTransaction coinbase = FundNetwork(net);
  const BitcoinTransaction pay =
      Payment(OutPoint{coinbase.txid(), 1}, "FunderPk", kBlockReward, "BobPk",
              kCoin);
  ASSERT_TRUE(net.BroadcastTransaction(1, pay).ok());
  net.Run();
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    EXPECT_TRUE(net.node(v).mempool().Contains(pay.txid())) << "node " << v;
  }
  EXPECT_DOUBLE_EQ(net.MempoolJaccard(0, net.num_nodes() - 1), 1.0);
}

TEST(NetworkTest, MempoolsDivergeBeforeConvergence) {
  NetworkSimulator net(SmallNet());
  const BitcoinTransaction coinbase = FundNetwork(net);
  const BitcoinTransaction pay =
      Payment(OutPoint{coinbase.txid(), 1}, "FunderPk", kBlockReward, "BobPk",
              kCoin);
  ASSERT_TRUE(net.BroadcastTransaction(0, pay).ok());
  // Before any gossip is delivered, only the origin holds the transaction.
  bool diverged = false;
  for (NodeId v = 1; v < net.num_nodes(); ++v) {
    if (net.MempoolJaccard(0, v) < 1.0) diverged = true;
  }
  EXPECT_TRUE(diverged);
  net.Run();
  for (NodeId v = 1; v < net.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(net.MempoolJaccard(0, v), 1.0);
  }
}

TEST(NetworkTest, DependentTransactionsSurviveGossipRaces) {
  NetworkParams params = SmallNet(6);
  params.extra_edges = 0;  // Plain ring: gossip takes several hops.
  NetworkSimulator net(params);
  const BitcoinTransaction coinbase = FundNetwork(net);
  const BitcoinTransaction parent =
      Payment(OutPoint{coinbase.txid(), 1}, "FunderPk", kBlockReward, "BobPk",
              kCoin);
  const BitcoinTransaction child =
      Payment(OutPoint{parent.txid(), 1}, "BobPk", kCoin, "CarolPk",
              kCoin / 2);
  // Let the parent reach only part of the ring, then broadcast the child
  // from a node that has it. The child's gossip races ahead of the
  // parent's on the far side of the ring, so some nodes hear the child
  // first and must orphan-buffer it until the parent arrives.
  ASSERT_TRUE(net.BroadcastTransaction(0, parent).ok());
  net.RunUntil(net.now() + params.max_latency);
  NodeId relay = net.num_nodes();
  for (NodeId v = 1; v < net.num_nodes(); ++v) {
    if (net.node(v).mempool().Contains(parent.txid())) relay = v;
  }
  ASSERT_NE(relay, net.num_nodes()) << "parent reached no neighbour yet";
  ASSERT_TRUE(net.BroadcastTransaction(relay, child).ok());
  net.Run();
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    EXPECT_TRUE(net.node(v).mempool().Contains(parent.txid())) << v;
    EXPECT_TRUE(net.node(v).mempool().Contains(child.txid())) << v;
  }
}

TEST(NetworkTest, ChildBroadcastBeforeParentIsHeldAtOrigin) {
  NetworkSimulator net(SmallNet());
  const BitcoinTransaction coinbase = FundNetwork(net);
  const BitcoinTransaction parent =
      Payment(OutPoint{coinbase.txid(), 1}, "FunderPk", kBlockReward, "BobPk",
              kCoin);
  const BitcoinTransaction child =
      Payment(OutPoint{parent.txid(), 1}, "BobPk", kCoin, "CarolPk",
              kCoin / 2);
  // The origin itself rejects a child whose parent it has never seen.
  EXPECT_EQ(net.BroadcastTransaction(0, child).code(), StatusCode::kNotFound);
}

TEST(NetworkTest, ConflictingTransactionsCoexistAcrossNodes) {
  NetworkSimulator net(SmallNet());
  const BitcoinTransaction coinbase = FundNetwork(net);
  const BitcoinTransaction pay_bob =
      Payment(OutPoint{coinbase.txid(), 1}, "FunderPk", kBlockReward, "BobPk",
              kCoin);
  const BitcoinTransaction pay_carol =
      Payment(OutPoint{coinbase.txid(), 1}, "FunderPk", kBlockReward,
              "CarolPk", kCoin);
  ASSERT_TRUE(net.BroadcastTransaction(0, pay_bob).ok());
  ASSERT_TRUE(net.BroadcastTransaction(2, pay_carol).ok());
  net.Run();
  // Every node's mempool holds the signed double spend — the paper's
  // reality: either transaction may still confirm.
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    EXPECT_EQ(net.node(v).mempool().ConflictPairs().size(), 1u) << v;
  }
}

TEST(NetworkTest, MiningResolvesConflictsNetworkWide) {
  NetworkSimulator net(SmallNet());
  const BitcoinTransaction coinbase = FundNetwork(net);
  const BitcoinTransaction pay_bob =
      Payment(OutPoint{coinbase.txid(), 1}, "FunderPk", kBlockReward, "BobPk",
              kCoin, 1000);
  const BitcoinTransaction pay_carol =
      Payment(OutPoint{coinbase.txid(), 1}, "FunderPk", kBlockReward,
              "CarolPk", kCoin, 9000);
  ASSERT_TRUE(net.BroadcastTransaction(0, pay_bob).ok());
  ASSERT_TRUE(net.BroadcastTransaction(0, pay_carol).ok());
  net.Run();
  // Node 2 mines: the fee-greedy miner picks pay_carol; the block evicts
  // both sides of the conflict from every mempool.
  ASSERT_TRUE(net.MineAt(2, MinerPolicy{}).ok());
  net.Run();
  EXPECT_TRUE(net.ChainsConsistent());
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    EXPECT_EQ(net.node(v).mempool().size(), 0u) << v;
    EXPECT_TRUE(net.node(v).chain().ContainsTransaction(pay_carol.txid()));
    EXPECT_FALSE(net.node(v).chain().ContainsTransaction(pay_bob.txid()));
  }
}

TEST(NetworkTest, RunUntilDeliversOnlyDueEvents) {
  NetworkParams params = SmallNet();
  params.min_latency = 1.0;
  params.max_latency = 1.0;
  NetworkSimulator net(params);
  MinerPolicy policy;
  ASSERT_TRUE(net.MineAt(0, policy).ok());
  net.RunUntil(0.5);  // First hop needs 1.0s.
  EXPECT_FALSE(net.ChainsConsistent());
  EXPECT_DOUBLE_EQ(net.now(), 0.5);
  net.Run();
  EXPECT_TRUE(net.ChainsConsistent());
}

TEST(NetworkTest, DeterministicForSeed) {
  auto run = [] {
    NetworkSimulator net(SmallNet());
    const BitcoinTransaction coinbase = FundNetwork(net);
    (void)net.BroadcastTransaction(
        1, Payment(OutPoint{coinbase.txid(), 1}, "FunderPk", kBlockReward,
                   "BobPk", kCoin));
    net.Run();
    return net.events_processed();
  };
  EXPECT_EQ(run(), run());
}

TEST(NetworkTest, NodesDisagreeOnDenialConstraintsMidGossip) {
  // The paper's footnote 6 made concrete: the same denial constraint gives
  // different verdicts at different nodes until T converges.
  NetworkSimulator net(SmallNet());
  const BitcoinTransaction coinbase = FundNetwork(net);
  const BitcoinTransaction pay =
      Payment(OutPoint{coinbase.txid(), 1}, "FunderPk", kBlockReward, "BobPk",
              kCoin);
  ASSERT_TRUE(net.BroadcastTransaction(0, pay).ok());

  auto verdict_at = [&](NodeId v) {
    auto db = bitcoin::BuildBlockchainDatabase(net.node(v));
    EXPECT_TRUE(db.ok());
    DcSatEngine engine(&*db);
    auto q = ParseDenialConstraint("q() :- TxOut(t, s, 'BobPk', a)");
    EXPECT_TRUE(q.ok());
    auto result = engine.Check(*q);
    EXPECT_TRUE(result.ok());
    return result->satisfied;
  };
  // At the origin the payout is possible; a node that has not heard of the
  // transaction still believes it impossible.
  EXPECT_FALSE(verdict_at(0));
  bool someone_disagrees = false;
  for (NodeId v = 1; v < net.num_nodes(); ++v) {
    if (verdict_at(v)) someone_disagrees = true;
  }
  EXPECT_TRUE(someone_disagrees);

  net.Run();
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    EXPECT_FALSE(verdict_at(v)) << v;
  }
}

}  // namespace
}  // namespace net
}  // namespace bcdb
