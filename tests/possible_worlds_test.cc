#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/possible_worlds.h"
#include "running_example.h"

namespace bcdb {
namespace {

using testing_fixtures::MakeRunningExample;

std::set<std::vector<std::size_t>> WorldSets(
    const std::vector<WorldView>& worlds) {
  std::set<std::vector<std::size_t>> sets;
  for (const WorldView& world : worlds) {
    sets.insert(world.active_bits().ToVector());
  }
  return sets;
}

TEST(PossibleWorldsTest, RunningExampleMatchesExample3) {
  BlockchainDatabase db = MakeRunningExample();
  ASSERT_TRUE(db.ValidateCurrentState().ok());

  auto worlds = EnumeratePossibleWorlds(db, 1000);
  ASSERT_TRUE(worlds.ok());

  // Example 3: Poss(D) = {R, R∪T1, R∪T3, R∪T1∪T3, R∪T1∪T2, R∪T1∪T2∪T3,
  // R∪T1∪T2∪T3∪T4, R∪T5, R∪T3∪T5} — pending ids are T1..T5 = 0..4.
  const std::set<std::vector<std::size_t>> expected = {
      {},        {0},       {2},          {0, 2}, {0, 1},
      {0, 1, 2}, {0, 1, 2, 3}, {4},       {2, 4},
  };
  EXPECT_EQ(WorldSets(*worlds), expected);
}

TEST(PossibleWorldsTest, IsPossibleWorldAgreesWithEnumeration) {
  BlockchainDatabase db = MakeRunningExample();
  auto worlds = EnumeratePossibleWorlds(db, 1000);
  ASSERT_TRUE(worlds.ok());
  const auto possible = WorldSets(*worlds);

  // Check every subset of {T1..T5}.
  for (std::size_t mask = 0; mask < 32; ++mask) {
    std::vector<PendingId> subset;
    for (std::size_t i = 0; i < 5; ++i) {
      if (mask & (std::size_t{1} << i)) subset.push_back(i);
    }
    const bool expected = possible.count(subset) > 0;
    EXPECT_EQ(IsPossibleWorld(db, subset), expected)
        << "subset mask " << mask;
  }
}

TEST(PossibleWorldsTest, OrderInsensitive) {
  BlockchainDatabase db = MakeRunningExample();
  // {T1, T2} is reachable only by appending T1 before T2; the greedy check
  // must find that ordering regardless of input order.
  EXPECT_TRUE(IsPossibleWorld(db, {1, 0}));
  EXPECT_TRUE(IsPossibleWorld(db, {3, 2, 1, 0}));
}

TEST(PossibleWorldsTest, RejectsConflictsAndMissingParents) {
  BlockchainDatabase db = MakeRunningExample();
  EXPECT_FALSE(IsPossibleWorld(db, {0, 4}));     // T1 + T5 double spend.
  EXPECT_FALSE(IsPossibleWorld(db, {1}));        // T2 without T1.
  EXPECT_FALSE(IsPossibleWorld(db, {0, 1, 3}));  // T4 without T3.
  EXPECT_FALSE(IsPossibleWorld(db, {0, 1, 2, 3, 4}));
}

TEST(PossibleWorldsTest, UnknownPendingIdRejected) {
  BlockchainDatabase db = MakeRunningExample();
  EXPECT_FALSE(IsPossibleWorld(db, {42}));
}

TEST(PossibleWorldsTest, EnumerationLimitEnforced) {
  BlockchainDatabase db = MakeRunningExample();
  auto worlds = EnumeratePossibleWorlds(db, 3);
  EXPECT_EQ(worlds.status().code(), StatusCode::kOutOfRange);
}

TEST(PossibleWorldsTest, EmptyPendingHasOneWorld) {
  Catalog catalog = bitcoin::MakeBitcoinCatalog();
  auto constraints = bitcoin::MakeBitcoinConstraints(catalog);
  ASSERT_TRUE(constraints.ok());
  auto db = BlockchainDatabase::Create(std::move(catalog),
                                       std::move(*constraints));
  ASSERT_TRUE(db.ok());
  auto worlds = EnumeratePossibleWorlds(*db, 10);
  ASSERT_TRUE(worlds.ok());
  EXPECT_EQ(worlds->size(), 1u);
  EXPECT_TRUE(IsPossibleWorld(*db, {}));
}

TEST(PossibleWorldsTest, ApplyPendingPromotesToCurrentState) {
  BlockchainDatabase db = MakeRunningExample();
  ASSERT_TRUE(db.ApplyPending(0).ok());  // T1 accepted into the chain.
  EXPECT_FALSE(db.IsPending(0));
  EXPECT_TRUE(db.ValidateCurrentState().ok());
  // T2 now appendable directly; T5 permanently conflicted.
  EXPECT_TRUE(IsPossibleWorld(db, {1}));
  EXPECT_FALSE(IsPossibleWorld(db, {4}));
  EXPECT_EQ(db.ApplyPending(4).code(), StatusCode::kConstraintViolation);
}

TEST(PossibleWorldsTest, ApplyPendingRejectsDependant) {
  BlockchainDatabase db = MakeRunningExample();
  // T2 depends on T1, which is not yet in R.
  EXPECT_EQ(db.ApplyPending(1).code(), StatusCode::kConstraintViolation);
}

TEST(PossibleWorldsTest, DiscardPendingRemovesFromWorlds) {
  BlockchainDatabase db = MakeRunningExample();
  ASSERT_TRUE(db.DiscardPending(0).ok());  // Drop T1.
  EXPECT_FALSE(db.IsPending(0));
  auto worlds = EnumeratePossibleWorlds(db, 1000);
  ASSERT_TRUE(worlds.ok());
  // Without T1: {}, {T3}, {T5}, {T3,T5} remain.
  EXPECT_EQ(worlds->size(), 4u);
}

}  // namespace
}  // namespace bcdb
