#include <gtest/gtest.h>

#include "bitcoin/chain.h"
#include "bitcoin/mempool.h"
#include "bitcoin/script.h"
#include "bitcoin/to_relational.h"
#include "core/dcsat.h"
#include "query/parser.h"

namespace bcdb {
namespace bitcoin {
namespace {

TEST(ScriptTest, BareKeyIsPayToPubkey) {
  const Script script = Script::Parse("U1Pk");
  EXPECT_EQ(script.kind(), Script::Kind::kPayToPubkey);
  EXPECT_TRUE(script.SatisfiedBy("U1Sig"));
  EXPECT_FALSE(script.SatisfiedBy("U2Sig"));
  EXPECT_FALSE(script.SatisfiedBy(""));
  EXPECT_EQ(Script::WitnessFor("U1Pk"), "U1Sig");
}

TEST(ScriptTest, HashLockRequiresPreimage) {
  const std::string encoded = Script::HashLock("open sesame");
  const Script script = Script::Parse(encoded);
  EXPECT_EQ(script.kind(), Script::Kind::kHashLock);
  EXPECT_TRUE(script.SatisfiedBy("open sesame"));
  EXPECT_FALSE(script.SatisfiedBy("open barley"));
  EXPECT_FALSE(script.SatisfiedBy(encoded));  // The digest is not a preimage.
  EXPECT_EQ(Script::WitnessFor(encoded, "open sesame"), "open sesame");
}

TEST(ScriptTest, MultiSigKofN) {
  auto encoded = Script::MultiSig(2, {"APk", "BPk", "CPk"});
  ASSERT_TRUE(encoded.ok());
  const Script script = Script::Parse(*encoded);
  EXPECT_EQ(script.kind(), Script::Kind::kMultiSig);
  EXPECT_EQ(script.required_signatures(), 2u);
  ASSERT_EQ(script.keys().size(), 3u);

  EXPECT_TRUE(script.SatisfiedBy("ASig,BSig"));
  EXPECT_TRUE(script.SatisfiedBy("CSig,ASig"));       // Order irrelevant.
  EXPECT_TRUE(script.SatisfiedBy("ASig,BSig,CSig"));  // Extra sigs fine.
  EXPECT_FALSE(script.SatisfiedBy("ASig"));           // Too few.
  EXPECT_FALSE(script.SatisfiedBy("ASig,ASig"));      // Duplicates count once.
  EXPECT_FALSE(script.SatisfiedBy("ASig,XSig"));      // Unknown signer.

  // Default witness signs with the first k keys.
  EXPECT_TRUE(script.SatisfiedBy(Script::WitnessFor(*encoded)));
  auto witness = Script::MultiSigWitness(*encoded, {0, 2});
  ASSERT_TRUE(witness.ok());
  EXPECT_TRUE(script.SatisfiedBy(*witness));
  EXPECT_FALSE(Script::MultiSigWitness(*encoded, {5}).ok());
}

TEST(ScriptTest, MultiSigBuilderValidates) {
  EXPECT_FALSE(Script::MultiSig(0, {"APk"}).ok());
  EXPECT_FALSE(Script::MultiSig(3, {"APk", "BPk"}).ok());
  EXPECT_FALSE(Script::MultiSig(1, {"A,Pk"}).ok());
  EXPECT_FALSE(Script::MultiSig(1, {"A:Pk"}).ok());
}

TEST(ScriptTest, MalformedMultiSigNeverSatisfiable) {
  const Script script = Script::Parse("msig:zero:APk");
  EXPECT_EQ(script.kind(), Script::Kind::kPayToPubkey);
  // No one can sign for the raw string (SignatureFor("msig:zero:APk")
  // would be required, and honest signers never produce it for spending).
  EXPECT_FALSE(script.SatisfiedBy("ASig"));
}

class ScriptChainTest : public ::testing::Test {
 protected:
  /// Mines `encoded_script` a kBlockReward output and returns its outpoint.
  OutPoint Fund(const std::string& encoded_script) {
    BitcoinTransaction coinbase = BitcoinTransaction::Coinbase(
        encoded_script, kBlockReward, chain_.height() + 1);
    EXPECT_TRUE(chain_.MineAndAppend({coinbase}).ok());
    return OutPoint{coinbase.txid(), 1};
  }

  BitcoinTransaction Spend(const OutPoint& source,
                           const std::string& encoded_script,
                           const std::string& witness,
                           const std::string& to) {
    return BitcoinTransaction(
        {TxInput{source, encoded_script, kBlockReward, witness}},
        {TxOutput{to, kBlockReward - 1000}});
  }

  Blockchain chain_;
};

TEST_F(ScriptChainTest, HashLockSpendOnChain) {
  const std::string lock = Script::HashLock("secret42");
  const OutPoint source = Fund(lock);
  // Wrong preimage rejected, right preimage accepted.
  EXPECT_FALSE(
      chain_.MineAndAppend({Spend(source, lock, "wrong", "WinnerPk")}).ok());
  EXPECT_TRUE(
      chain_.MineAndAppend({Spend(source, lock, "secret42", "WinnerPk")})
          .ok());
}

TEST_F(ScriptChainTest, MultiSigSpendOnChain) {
  auto lock = Script::MultiSig(2, {"EscrowAPk", "EscrowBPk", "EscrowCPk"});
  ASSERT_TRUE(lock.ok());
  const OutPoint source = Fund(*lock);
  EXPECT_FALSE(
      chain_.MineAndAppend({Spend(source, *lock, "EscrowASig", "OutPk")})
          .ok());
  auto witness = Script::MultiSigWitness(*lock, {1, 2});
  ASSERT_TRUE(witness.ok());
  EXPECT_TRUE(
      chain_.MineAndAppend({Spend(source, *lock, *witness, "OutPk")}).ok());
}

TEST_F(ScriptChainTest, MempoolEnforcesScripts) {
  const std::string lock = Script::HashLock("hunter2");
  const OutPoint source = Fund(lock);
  Mempool mempool;
  EXPECT_FALSE(mempool.Add(chain_, Spend(source, lock, "guess", "XPk")).ok());
  EXPECT_TRUE(
      mempool.Add(chain_, Spend(source, lock, "hunter2", "XPk")).ok());
}

TEST_F(ScriptChainTest, ScriptOutputsFlowThroughDcSat) {
  // A hash-locked output spent by a pending transaction: the relational
  // image stores the script in the pk column and the preimage in sig, and
  // DCSat reasons about the spend like any other.
  const std::string lock = Script::HashLock("preimage!");
  const OutPoint source = Fund(lock);
  SimulatedNode node(chain_);
  ASSERT_TRUE(node.SubmitTransaction(
                      Spend(source, lock, "preimage!", "ClaimerPk"))
                  .ok());

  auto db = BuildBlockchainDatabase(node);
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE(db->ValidateCurrentState().ok());
  DcSatEngine engine(&*db);
  auto q = ParseDenialConstraint("q() :- TxOut(t, s, 'ClaimerPk', a)");
  ASSERT_TRUE(q.ok());
  auto result = engine.Check(*q);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->satisfied);  // The claim can happen.

  // Two competing preimage claims conflict exactly like double spends.
  ASSERT_TRUE(node.SubmitTransaction(
                      Spend(source, lock, "preimage!", "RivalPk"))
                  .ok());
  auto db2 = BuildBlockchainDatabase(node);
  ASSERT_TRUE(db2.ok());
  DcSatEngine engine2(&*db2);
  auto both = ParseDenialConstraint(
      "q() :- TxOut(t1, s1, 'ClaimerPk', a1), TxOut(t2, s2, 'RivalPk', a2)");
  ASSERT_TRUE(both.ok());
  auto verdict = engine2.Check(*both);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict->satisfied);  // Never both.
}

}  // namespace
}  // namespace bitcoin
}  // namespace bcdb
