#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/dcsat.h"
#include "core/fd_graph.h"
#include "core/get_maximal.h"
#include "core/ind_graph.h"
#include "query/parser.h"
#include "running_example.h"

namespace bcdb {
namespace {

using testing_fixtures::MakeRunningExample;

// Pending ids: T1..T5 = 0..4.

TEST(RunningExampleTest, CurrentStateSatisfiesConstraints) {
  BlockchainDatabase db = MakeRunningExample();
  EXPECT_TRUE(db.ValidateCurrentState().ok());
  EXPECT_EQ(db.num_pending(), 5u);
}

TEST(RunningExampleTest, FdGraphMatchesFigure3) {
  BlockchainDatabase db = MakeRunningExample();
  FdGraph fd_graph(db);
  EXPECT_EQ(fd_graph.valid_nodes().Count(), 5u);
  // G^fd_T is complete except T1–T5 (both spend output (2,2)).
  EXPECT_EQ(fd_graph.num_conflict_pairs(), 1u);
  EXPECT_FALSE(fd_graph.graph().HasEdge(0, 4));
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i + 1; j < 5; ++j) {
      if (i == 0 && j == 4) continue;
      EXPECT_TRUE(fd_graph.graph().HasEdge(i, j)) << i << "," << j;
    }
  }
}

TEST(RunningExampleTest, IndComponentsMatchFigure3) {
  BlockchainDatabase db = MakeRunningExample();
  FdGraph fd_graph(db);
  UnionFind uf(db.num_pending());
  MergeEqualityComponents(db, EqualitiesFromConstraints(db.constraints()),
                          fd_graph.valid_nodes(), uf);
  auto components = GroupComponents(fd_graph.valid_nodes(), uf);
  std::set<std::set<std::size_t>> sets;
  for (auto& c : components) {
    sets.insert(std::set<std::size_t>(c.begin(), c.end()));
  }
  // Figure 3 (G^ind_T): {T1, T2, T3, T4} and {T5}.
  const std::set<std::set<std::size_t>> expected = {{0, 1, 2, 3}, {4}};
  EXPECT_EQ(sets, expected);
}

TEST(RunningExampleTest, GetMaximalExample6) {
  BlockchainDatabase db = MakeRunningExample();
  // Clique {T2,T3,T4,T5}: maximal world is R ∪ {T3, T5} (T2 misses its
  // parent T1, hence T4 misses T2's output).
  {
    GetMaximalStats stats;
    WorldView world = GetMaximal(db, {1, 2, 3, 4}, &stats);
    EXPECT_EQ(world.active_bits().ToVector(),
              (std::vector<std::size_t>{2, 4}));
    EXPECT_EQ(stats.appended, 2u);
  }
  // Clique {T1,T2,T3,T4}: everything fits.
  {
    WorldView world = GetMaximal(db, {0, 1, 2, 3});
    EXPECT_EQ(world.active_bits().ToVector(),
              (std::vector<std::size_t>{0, 1, 2, 3}));
  }
}

TEST(RunningExampleTest, Example6NaiveDCSatRejectsQs) {
  BlockchainDatabase db = MakeRunningExample();
  DcSatEngine engine(&db);
  auto qs = ParseDenialConstraint("qs() :- TxOut(t, s, 'U8Pk', a)");
  ASSERT_TRUE(qs.ok());
  DcSatOptions options;
  options.algorithm = DcSatAlgorithm::kNaive;
  auto result = engine.Check(*qs, options);
  ASSERT_TRUE(result.ok()) << result.status();
  // U8Pk receives money in the world R∪{T1..T4}: constraint NOT satisfied.
  EXPECT_FALSE(result->satisfied);
  ASSERT_TRUE(result->witness.has_value());
  // The violating world contains T4 (tx 7 pays U8Pk) and its dependencies.
  EXPECT_EQ(*result->witness, (std::vector<PendingId>{0, 1, 2, 3}));
}

TEST(RunningExampleTest, Example8OptDCSatRejectsQs) {
  BlockchainDatabase db = MakeRunningExample();
  DcSatEngine engine(&db);
  auto qs = ParseDenialConstraint("qs() :- TxOut(t, s, 'U8Pk', a)");
  ASSERT_TRUE(qs.ok());
  DcSatOptions options;
  options.algorithm = DcSatAlgorithm::kOpt;
  options.use_precheck = false;  // Exercise the component machinery.
  auto result = engine.Check(*qs, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->satisfied);
  // Two components; only {T1..T4} covers the constant 'U8Pk'.
  EXPECT_EQ(result->stats.num_components, 2u);
  EXPECT_EQ(result->stats.num_components_covered, 1u);
}

TEST(RunningExampleTest, SatisfiedConstraintViaPrecheck) {
  BlockchainDatabase db = MakeRunningExample();
  DcSatEngine engine(&db);
  auto q = ParseDenialConstraint("q() :- TxOut(t, s, 'U9Pk', a)");
  ASSERT_TRUE(q.ok());
  auto result = engine.Check(*q);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->satisfied);
  EXPECT_TRUE(result->stats.precheck_decided);
}

TEST(RunningExampleTest, DoubleSpendDenialConstraint) {
  BlockchainDatabase db = MakeRunningExample();
  DcSatEngine engine(&db);
  // "U2Pk's output (2,2) is spent by two different transactions" can never
  // happen (key constraint on TxIn), so the denial constraint is satisfied.
  auto q = ParseDenialConstraint(
      "q() :- TxIn(2, 2, 'U2Pk', a1, n1, g1), TxIn(2, 2, 'U2Pk', a2, n2, g2), "
      "n1 != n2");
  ASSERT_TRUE(q.ok());
  auto result = engine.Check(*q);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->satisfied);
  // The pre-check cannot decide this one: over R ∪ T both spends coexist.
  EXPECT_FALSE(result->stats.precheck_decided);
}

TEST(RunningExampleTest, U7PkPaidInSomeWorldEitherWay) {
  BlockchainDatabase db = MakeRunningExample();
  DcSatEngine engine(&db);
  // U7Pk can be paid by T4 (tx 7) or by T5 (tx 8).
  auto q = ParseDenialConstraint("q() :- TxOut(t, s, 'U7Pk', a)");
  ASSERT_TRUE(q.ok());
  for (DcSatAlgorithm algorithm :
       {DcSatAlgorithm::kNaive, DcSatAlgorithm::kOpt,
        DcSatAlgorithm::kExhaustive}) {
    DcSatOptions options;
    options.algorithm = algorithm;
    auto result = engine.Check(*q, options);
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result->satisfied)
        << DcSatAlgorithmToString(algorithm);
  }
}

TEST(RunningExampleTest, AggregateOverPossibleWorlds) {
  BlockchainDatabase db = MakeRunningExample();
  DcSatEngine engine(&db);
  // Can U4Pk accumulate >= 4 bitcoins of outputs? R gives 0.5; T2 adds 3,
  // T3 adds 0.5 — max total 4. (Monotone: sum with >=.)
  auto reachable =
      ParseDenialConstraint("[q(sum(a)) :- TxOut(t, s, 'U4Pk', a)] >= 4");
  ASSERT_TRUE(reachable.ok());
  auto result = engine.Check(*reachable);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->satisfied);
  EXPECT_EQ(result->stats.algorithm_used, DcSatAlgorithm::kNaive);

  auto unreachable =
      ParseDenialConstraint("[q(sum(a)) :- TxOut(t, s, 'U4Pk', a)] >= 5");
  ASSERT_TRUE(unreachable.ok());
  result = engine.Check(*unreachable);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->satisfied);
}

TEST(RunningExampleTest, NonMonotoneFallsBackToExhaustive) {
  BlockchainDatabase db = MakeRunningExample();
  DcSatEngine engine(&db);
  // "= 2": non-monotone. U4Pk receives exactly two outputs in world
  // {T2(w/ T1), T3}-style combinations.
  auto q = ParseDenialConstraint(
      "[q(count()) :- TxOut(t, s, 'U4Pk', a)] = 3");
  ASSERT_TRUE(q.ok());
  auto result = engine.Check(*q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.algorithm_used, DcSatAlgorithm::kExhaustive);
  // R has (3,2,U4Pk,0.5); T2 and T3 add one each: world {T1,T2,T3} has 3.
  EXPECT_FALSE(result->satisfied);
}

TEST(RunningExampleTest, ExplicitAlgorithmValidation) {
  BlockchainDatabase db = MakeRunningExample();
  DcSatEngine engine(&db);
  // Non-monotone constraint: kNaive must refuse.
  auto non_monotone =
      ParseDenialConstraint("[q(count()) :- TxOut(t, s, 'U4Pk', a)] = 3");
  ASSERT_TRUE(non_monotone.ok());
  DcSatOptions naive;
  naive.algorithm = DcSatAlgorithm::kNaive;
  EXPECT_EQ(engine.Check(*non_monotone, naive).status().code(),
            StatusCode::kInvalidArgument);

  // Aggregates are never "connected": kOpt must refuse.
  auto aggregate =
      ParseDenialConstraint("[q(sum(a)) :- TxOut(t, s, 'U4Pk', a)] >= 4");
  ASSERT_TRUE(aggregate.ok());
  DcSatOptions opt;
  opt.algorithm = DcSatAlgorithm::kOpt;
  EXPECT_EQ(engine.Check(*aggregate, opt).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace bcdb
