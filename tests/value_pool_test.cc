#include "relational/value_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "relational/tuple.h"
#include "relational/value.h"
#include "util/hash.h"

namespace bcdb {
namespace {

/// Random values from a deliberately collision-rich space: small domains so
/// the same value recurs often (exercising the intern fast path) plus the
/// awkward corners (NaN, infinities, integral reals, int64 extremes).
class ValueGen {
 public:
  explicit ValueGen(std::uint64_t seed) : rng_(seed) {}

  Value Next() {
    switch (rng_() % 10) {
      case 0:
        return Value::Null();
      case 1:
      case 2:
        return Value::Int(static_cast<std::int64_t>(rng_() % 50));
      case 3:
        return Value::Int(Pick<std::int64_t>(
            {std::numeric_limits<std::int64_t>::min(),
             std::numeric_limits<std::int64_t>::max(), -1, 0, 1}));
      case 4:
        return Value::Real(static_cast<double>(rng_() % 50));  // Integral.
      case 5:
        return Value::Real(static_cast<double>(rng_() % 50) + 0.5);
      case 6:
        return Value::Real(Pick({std::numeric_limits<double>::quiet_NaN(),
                                 -std::numeric_limits<double>::quiet_NaN(),
                                 std::numeric_limits<double>::infinity(),
                                 -std::numeric_limits<double>::infinity(),
                                 1e300, -0.0, 9.3e18}));
      case 7:
      case 8:
        return Value::Str(std::string(1, static_cast<char>('a' + rng_() % 8)));
      default:
        return Value::Str("key-" + std::to_string(rng_() % 30));
    }
  }

 private:
  template <typename T>
  T Pick(std::initializer_list<T> options) {
    return *(options.begin() + rng_() % options.size());
  }

  std::mt19937_64 rng_;
};

/// Reference semantics computed directly over Values, bypassing the pool.
int ReferenceCompare(const std::vector<Value>& a, const std::vector<Value>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

TEST(ValuePoolTest, InternResolveRoundTripsCompareEqual) {
  ValuePool& pool = ValuePool::Global();
  ValueGen gen(20260806);
  for (int i = 0; i < 10000; ++i) {
    const Value v = gen.Next();
    const ValueId id = pool.Intern(v);
    const Value& resolved = pool.value(id);
    EXPECT_EQ(v.Compare(resolved), 0)
        << v.ToString() << " resolved as " << resolved.ToString();
    // Resolving is idempotent: the canonical form interns to the same id.
    EXPECT_EQ(pool.Intern(resolved), id);
    // The stored hash matches the canonical value's own hash.
    EXPECT_EQ(pool.hash(id), resolved.Hash());
  }
}

TEST(ValuePoolTest, IdEqualityMatchesDeepEquality) {
  ValuePool& pool = ValuePool::Global();
  ValueGen gen(42);
  std::vector<Value> values;
  std::vector<ValueId> ids;
  for (int i = 0; i < 300; ++i) {
    values.push_back(gen.Next());
    ids.push_back(pool.Intern(values.back()));
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    for (std::size_t j = 0; j < values.size(); ++j) {
      EXPECT_EQ(ids[i] == ids[j], values[i].Compare(values[j]) == 0)
          << values[i].ToString() << " vs " << values[j].ToString();
    }
  }
}

TEST(ValuePoolTest, CanonicalizesIntegralRealsAndNans) {
  ValuePool& pool = ValuePool::Global();
  EXPECT_EQ(pool.Intern(Value::Real(7.0)), pool.Intern(Value::Int(7)));
  EXPECT_EQ(pool.Intern(Value::Real(-0.0)), pool.Intern(Value::Int(0)));
  EXPECT_NE(pool.Intern(Value::Real(7.5)), pool.Intern(Value::Int(7)));
  const ValueId nan_id =
      pool.Intern(Value::Real(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_EQ(pool.Intern(Value::Real(-std::numeric_limits<double>::quiet_NaN())),
            nan_id);
  // Out-of-int64-range integral reals must NOT collapse to an int.
  const ValueId huge = pool.Intern(Value::Real(1e300));
  EXPECT_EQ(pool.value(huge).type(), ValueType::kReal);
  EXPECT_EQ(pool.Intern(Value::Null()), kNullValueId);
}

TEST(ValuePoolTest, StableReferencesAcrossGrowth) {
  ValuePool& pool = ValuePool::Global();
  const ValueId id = pool.Intern(Value::Str("stable-probe"));
  const Value* before = &pool.value(id);
  // Force several chunk allocations.
  for (int i = 0; i < 5000; ++i) {
    pool.Intern(Value::Str("growth-filler-" + std::to_string(i)));
  }
  EXPECT_EQ(before, &pool.value(id));
}

TEST(ValuePoolTest, TupleOpsAgreeWithNaiveReferenceRandomized) {
  std::mt19937_64 rng(777);
  ValueGen gen(777);
  for (int iter = 0; iter < 10000; ++iter) {
    const std::size_t arity_a = rng() % 7;  // Crosses the inline boundary (4).
    const std::size_t arity_b = (rng() % 4 == 0) ? arity_a : rng() % 7;
    std::vector<Value> raw_a, raw_b;
    for (std::size_t i = 0; i < arity_a; ++i) raw_a.push_back(gen.Next());
    for (std::size_t i = 0; i < arity_b; ++i) raw_b.push_back(gen.Next());
    if (arity_a == arity_b && rng() % 3 == 0) raw_b = raw_a;  // Force equals.

    const Tuple a(raw_a);
    const Tuple b(raw_b);
    ASSERT_EQ(a.arity(), arity_a);

    // Compare / equality match the naive elementwise reference.
    const int ref = ReferenceCompare(raw_a, raw_b);
    EXPECT_EQ(a.Compare(b) < 0, ref < 0);
    EXPECT_EQ(a.Compare(b) > 0, ref > 0);
    EXPECT_EQ(a == b, ref == 0);
    // Hash is a function of value equality.
    if (ref == 0) EXPECT_EQ(a.Hash(), b.Hash());

    // Projection agrees with projecting the raw values.
    if (arity_a > 0) {
      std::vector<std::size_t> positions;
      for (std::size_t i = 0; i < 1 + rng() % arity_a; ++i) {
        positions.push_back(rng() % arity_a);
      }
      const Tuple projected = a.Project(positions);
      ASSERT_EQ(projected.arity(), positions.size());
      for (std::size_t i = 0; i < positions.size(); ++i) {
        EXPECT_EQ(projected[i].Compare(raw_a[positions[i]]), 0);
      }
      // The projection view is id-identical to the projected tuple and
      // hashes the same, so either works as the same hash-map key.
      const ProjectionKey key = a.ProjectKey(positions);
      EXPECT_EQ(key.Hash(), projected.Hash());
      EXPECT_TRUE(TupleEq{}(projected, key));
      EXPECT_EQ(Tuple::FromIds(key), projected);
    }

    // Accessors round-trip every element.
    for (std::size_t i = 0; i < arity_a; ++i) {
      EXPECT_EQ(a[i].Compare(raw_a[i]), 0);
      EXPECT_EQ(a.id_at(i), ValuePool::Global().Intern(raw_a[i]));
    }
    const std::vector<Value> materialized = a.values();
    ASSERT_EQ(materialized.size(), arity_a);
    for (std::size_t i = 0; i < arity_a; ++i) {
      EXPECT_EQ(materialized[i].Compare(raw_a[i]), 0);
    }
  }
}

TEST(ValuePoolTest, ConcurrentResolveWhileInterning) {
  // Readers resolve established ids while a writer grows the pool across
  // chunk boundaries — the differential monitors do exactly this shape
  // (resolve on worker threads, intern on the ingest thread).
  ValuePool& pool = ValuePool::Global();
  std::vector<ValueId> ids;
  for (int i = 0; i < 256; ++i) {
    ids.push_back(pool.Intern(Value::Int(1000000 + i)));
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      std::size_t checksum = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        for (ValueId id : ids) checksum ^= pool.hash(id);
      }
      (void)checksum;
    });
  }
  for (int i = 0; i < 20000; ++i) {
    pool.Intern(Value::Str("concurrent-" + std::to_string(i)));
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(pool.value(ids[i]).AsInt(), 1000000 + i);
  }
}

}  // namespace
}  // namespace bcdb
