#include <gtest/gtest.h>

#include "query/compiled_query.h"
#include "query/parser.h"
#include "relational/database.h"

namespace bcdb {
namespace {

/// Edge(src, dst, w) and Label(node, tag) over small graphs.
Catalog MakeCatalog() {
  Catalog catalog;
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "Edge", {Attribute{"src", ValueType::kInt, false},
                               Attribute{"dst", ValueType::kInt, false},
                               Attribute{"w", ValueType::kInt, true}}))
                  .ok());
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "Label", {Attribute{"node", ValueType::kInt, false},
                                Attribute{"tag", ValueType::kString, false}}))
                  .ok());
  return catalog;
}

class EvalTest : public ::testing::Test {
 protected:
  EvalTest() : db_(MakeCatalog()) {}

  void Edge(std::int64_t s, std::int64_t d, std::int64_t w,
            TupleOwner owner = kBaseOwner) {
    ASSERT_TRUE(
        db_.Insert("Edge", Tuple({Value::Int(s), Value::Int(d), Value::Int(w)}),
                   owner)
            .ok());
  }
  void Label(std::int64_t n, const std::string& tag,
             TupleOwner owner = kBaseOwner) {
    ASSERT_TRUE(
        db_.Insert("Label", Tuple({Value::Int(n), Value::Str(tag)}), owner)
            .ok());
  }

  bool Eval(const std::string& text) {
    return EvalOn(text, db_.BaseView());
  }

  bool EvalOn(const std::string& text, const WorldView& view) {
    auto parsed = ParseDenialConstraint(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    auto compiled = CompiledQuery::Compile(*parsed, &db_);
    EXPECT_TRUE(compiled.ok()) << compiled.status();
    return compiled->Evaluate(view);
  }

  Database db_;
};

TEST_F(EvalTest, SingleAtomMatch) {
  Edge(1, 2, 10);
  EXPECT_TRUE(Eval("q() :- Edge(x, y, w)"));
  EXPECT_TRUE(Eval("q() :- Edge(1, y, w)"));
  EXPECT_FALSE(Eval("q() :- Edge(3, y, w)"));
}

TEST_F(EvalTest, EmptyRelationIsFalse) {
  EXPECT_FALSE(Eval("q() :- Edge(x, y, w)"));
}

TEST_F(EvalTest, JoinThroughSharedVariable) {
  Edge(1, 2, 10);
  Edge(2, 3, 10);
  EXPECT_TRUE(Eval("q() :- Edge(x, y, u), Edge(y, z, v)"));
  EXPECT_FALSE(Eval("q() :- Edge(x, y, u), Edge(y, z, v), Edge(z, t, s)"));
  Edge(3, 4, 10);
  EXPECT_TRUE(Eval("q() :- Edge(x, y, u), Edge(y, z, v), Edge(z, t, s)"));
}

TEST_F(EvalTest, RepeatedVariableWithinAtom) {
  Edge(1, 2, 10);
  EXPECT_FALSE(Eval("q() :- Edge(x, x, w)"));  // Self loop required.
  Edge(5, 5, 1);
  EXPECT_TRUE(Eval("q() :- Edge(x, x, w)"));
}

TEST_F(EvalTest, Comparisons) {
  Edge(1, 2, 10);
  Edge(3, 4, 50);
  EXPECT_TRUE(Eval("q() :- Edge(x, y, w), w > 20"));
  EXPECT_FALSE(Eval("q() :- Edge(x, y, w), w > 100"));
  EXPECT_TRUE(Eval("q() :- Edge(x, y, w), Edge(u, v, t), w < t"));
  EXPECT_TRUE(Eval("q() :- Edge(x, y, w), x != y"));
  EXPECT_TRUE(Eval("q() :- Edge(x, y, w), w = 50"));
  EXPECT_FALSE(Eval("q() :- Edge(x, y, w), w = 51"));
}

TEST_F(EvalTest, ConstantComparisonFolding) {
  Edge(1, 2, 10);
  EXPECT_FALSE(Eval("q() :- Edge(x, y, w), 1 > 2"));
  EXPECT_TRUE(Eval("q() :- Edge(x, y, w), 1 < 2"));
}

TEST_F(EvalTest, NegatedAtom) {
  Edge(1, 2, 10);
  Label(1, "good");
  EXPECT_TRUE(Eval("q() :- Edge(x, y, w), not Label(y, 'good')"));
  EXPECT_FALSE(Eval("q() :- Edge(x, y, w), not Label(x, 'good')"));
  Label(2, "good");
  EXPECT_FALSE(Eval("q() :- Edge(x, y, w), not Label(y, 'good')"));
}

TEST_F(EvalTest, UnsafeQueriesRejected) {
  auto q1 = ParseDenialConstraint("q() :- Edge(x, y, w), z > 3");
  ASSERT_TRUE(q1.ok());
  EXPECT_FALSE(CompiledQuery::Compile(*q1, &db_).ok());

  auto q2 = ParseDenialConstraint("q() :- Edge(x, y, w), not Label(z, 'a')");
  ASSERT_TRUE(q2.ok());
  EXPECT_FALSE(CompiledQuery::Compile(*q2, &db_).ok());
}

TEST_F(EvalTest, CompileErrors) {
  auto bad_rel = ParseDenialConstraint("q() :- Nope(x)");
  ASSERT_TRUE(bad_rel.ok());
  EXPECT_FALSE(CompiledQuery::Compile(*bad_rel, &db_).ok());

  auto bad_arity = ParseDenialConstraint("q() :- Edge(x, y)");
  ASSERT_TRUE(bad_arity.ok());
  EXPECT_FALSE(CompiledQuery::Compile(*bad_arity, &db_).ok());

  auto bad_type = ParseDenialConstraint("q() :- Edge('s', y, w)");
  ASSERT_TRUE(bad_type.ok());
  EXPECT_FALSE(CompiledQuery::Compile(*bad_type, &db_).ok());
}

TEST_F(EvalTest, VisibilityRespectsWorld) {
  const TupleOwner t0 = db_.RegisterOwner();
  Edge(1, 2, 10);
  Edge(2, 3, 10, t0);

  EXPECT_FALSE(EvalOn("q() :- Edge(x, y, u), Edge(y, z, v)", db_.BaseView()));
  WorldView world = db_.BaseView();
  world.Activate(t0);
  EXPECT_TRUE(EvalOn("q() :- Edge(x, y, u), Edge(y, z, v)", world));
  EXPECT_TRUE(EvalOn("q() :- Edge(x, y, u), Edge(y, z, v)", db_.FullView()));
}

TEST_F(EvalTest, NegationSeesActivatedTuples) {
  const TupleOwner t0 = db_.RegisterOwner();
  Edge(1, 2, 10);
  Label(2, "good", t0);
  EXPECT_TRUE(Eval("q() :- Edge(x, y, w), not Label(y, 'good')"));
  WorldView world = db_.BaseView();
  world.Activate(t0);
  EXPECT_FALSE(EvalOn("q() :- Edge(x, y, w), not Label(y, 'good')", world));
}

// --- Aggregates ---

TEST_F(EvalTest, CountAggregate) {
  Edge(1, 2, 10);
  Edge(1, 3, 20);
  Edge(2, 3, 30);
  EXPECT_TRUE(Eval("[q(count()) :- Edge(1, y, w)] = 2"));
  EXPECT_TRUE(Eval("[q(count()) :- Edge(x, y, w)] > 2"));
  EXPECT_FALSE(Eval("[q(count()) :- Edge(x, y, w)] > 3"));
  EXPECT_TRUE(Eval("[q(count()) :- Edge(x, y, w)] >= 3"));
  EXPECT_TRUE(Eval("[q(count()) :- Edge(x, y, w)] < 4"));
}

TEST_F(EvalTest, EmptyBagIsFalse) {
  // Paper Section 5: α over the empty bag compares to false regardless of θ.
  EXPECT_FALSE(Eval("[q(count()) :- Edge(x, y, w)] = 0"));
  EXPECT_FALSE(Eval("[q(count()) :- Edge(x, y, w)] < 5"));
  EXPECT_FALSE(Eval("[q(sum(w)) :- Edge(x, y, w)] < 5"));
}

TEST_F(EvalTest, SumAggregate) {
  Edge(1, 2, 10);
  Edge(1, 3, 20);
  EXPECT_TRUE(Eval("[q(sum(w)) :- Edge(1, y, w)] = 30"));
  EXPECT_TRUE(Eval("[q(sum(w)) :- Edge(1, y, w)] > 29"));
  EXPECT_FALSE(Eval("[q(sum(w)) :- Edge(1, y, w)] > 30"));
}

TEST_F(EvalTest, SumIsBagSemantics) {
  // Two assignments project to the same w; both count.
  Edge(1, 2, 10);
  Edge(1, 3, 10);
  EXPECT_TRUE(Eval("[q(sum(w)) :- Edge(1, y, w)] = 20"));
}

TEST_F(EvalTest, CountDistinctAggregate) {
  Edge(1, 2, 10);
  Edge(1, 3, 10);
  Edge(2, 3, 99);
  EXPECT_TRUE(Eval("[q(cntd(w)) :- Edge(x, y, w)] = 2"));
  EXPECT_TRUE(Eval("[q(cntd(x, y)) :- Edge(x, y, w)] = 3"));
}

TEST_F(EvalTest, MaxMinAggregates) {
  Edge(1, 2, 10);
  Edge(1, 3, 25);
  EXPECT_TRUE(Eval("[q(max(w)) :- Edge(x, y, w)] = 25"));
  EXPECT_TRUE(Eval("[q(max(w)) :- Edge(x, y, w)] > 20"));
  EXPECT_FALSE(Eval("[q(max(w)) :- Edge(x, y, w)] > 25"));
  EXPECT_TRUE(Eval("[q(min(w)) :- Edge(x, y, w)] = 10"));
  EXPECT_TRUE(Eval("[q(min(w)) :- Edge(x, y, w)] < 11"));
}

TEST_F(EvalTest, SumRequiresSingleVariable) {
  auto q = ParseDenialConstraint("[q(sum(x, y)) :- Edge(x, y, w)] > 1");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(CompiledQuery::Compile(*q, &db_).ok());
}

TEST_F(EvalTest, AggregateOverJoin) {
  Edge(1, 2, 10);
  Edge(2, 3, 20);
  Edge(2, 4, 30);
  // Two 2-paths from 1: weights of second hop 20 and 30.
  EXPECT_TRUE(Eval("[q(sum(v)) :- Edge(1, y, w), Edge(y, z, v)] = 50"));
}

TEST_F(EvalTest, ExplainPlanDescribesAccessPaths) {
  Edge(1, 2, 10);
  auto q = ParseDenialConstraint("q() :- Edge(1, y, w), Edge(y, z, v), y < z");
  ASSERT_TRUE(q.ok());
  auto compiled = CompiledQuery::Compile(*q, &db_);
  ASSERT_TRUE(compiled.ok());
  const std::string plan = compiled->ExplainPlan();
  // The constant-anchored atom goes first via an index; the join follows.
  EXPECT_NE(plan.find("1. Edge via index("), std::string::npos) << plan;
  EXPECT_NE(plan.find("2. Edge via index("), std::string::npos) << plan;
  EXPECT_NE(plan.find("comparison"), std::string::npos) << plan;

  auto scan = ParseDenialConstraint("q() :- Edge(x, y, w)");
  ASSERT_TRUE(scan.ok());
  auto compiled_scan = CompiledQuery::Compile(*scan, &db_);
  ASSERT_TRUE(compiled_scan.ok());
  EXPECT_NE(compiled_scan->ExplainPlan().find("full scan"), std::string::npos);

  auto agg = ParseDenialConstraint("[q(sum(w)) :- Edge(1, y, w)] > 5");
  ASSERT_TRUE(agg.ok());
  auto compiled_agg = CompiledQuery::Compile(*agg, &db_);
  ASSERT_TRUE(compiled_agg.ok());
  EXPECT_NE(compiled_agg->ExplainPlan().find("sum >"), std::string::npos);
}

// --- CoversConstants ---

TEST_F(EvalTest, CoversConstants) {
  Edge(1, 2, 10);
  auto q = ParseDenialConstraint("q() :- Edge(1, y, w), Edge(y, 9, v)");
  ASSERT_TRUE(q.ok());
  auto compiled = CompiledQuery::Compile(*q, &db_);
  ASSERT_TRUE(compiled.ok());
  // Constant 9 as dst never appears.
  EXPECT_FALSE(compiled->CoversConstants(db_.BaseView()));
  Edge(7, 9, 1);
  // Index was built at compile time and is maintained on insert.
  EXPECT_TRUE(compiled->CoversConstants(db_.BaseView()));
}

TEST_F(EvalTest, CoversConstantsRespectsView) {
  const TupleOwner t0 = db_.RegisterOwner();
  Edge(1, 2, 10, t0);
  auto q = ParseDenialConstraint("q() :- Edge(1, y, w)");
  ASSERT_TRUE(q.ok());
  auto compiled = CompiledQuery::Compile(*q, &db_);
  ASSERT_TRUE(compiled.ok());
  EXPECT_FALSE(compiled->CoversConstants(db_.BaseView()));
  EXPECT_TRUE(compiled->CoversConstants(db_.FullView()));
}

}  // namespace
}  // namespace bcdb
