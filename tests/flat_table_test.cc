// Differential and unit tests for the flat open-addressing tables.
//
// The core guarantee is behavioural equivalence with std::unordered_map /
// std::unordered_set over the API subset the engine uses — the randomized
// suites drive both containers through identical op streams (insert, erase,
// probe, clear, reserve, copy, move) and compare contents after every
// mutation batch. Erase uses backward-shift deletion, the most delicate part
// of the design, so the streams are churn-heavy on purpose.

#include "util/flat_table.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "relational/tuple.h"
#include "relational/value.h"

namespace bcdb {
namespace {

TEST(FlatHashMapTest, BasicInsertFindErase) {
  FlatHashMap<std::uint32_t, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_FALSE(map.contains(7u));

  auto [it, inserted] = map.try_emplace(7u, 42);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(it->first, 7u);
  EXPECT_EQ(it->second, 42);
  EXPECT_EQ(map.size(), 1u);

  auto [it2, inserted2] = map.try_emplace(7u, 99);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(it2->second, 42);  // try_emplace: existing value untouched.

  map[7u] = 43;
  EXPECT_EQ(map.find(7u)->second, 43);
  map[8u];  // Default-constructs.
  EXPECT_EQ(map.find(8u)->second, 0);

  EXPECT_EQ(map.erase(7u), 1u);
  EXPECT_EQ(map.erase(7u), 0u);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_FALSE(map.contains(7u));
  EXPECT_TRUE(map.contains(8u));
}

TEST(FlatHashMapTest, DenseSequentialIdsGrow) {
  // Dense ids are the worst case for power-of-two tables without a mixer;
  // this exercises growth + the HashMix64 spread at once.
  FlatHashMap<std::uint32_t, std::uint32_t> map;
  constexpr std::uint32_t kN = 100000;
  for (std::uint32_t i = 0; i < kN; ++i) map.try_emplace(i, i * 2);
  EXPECT_EQ(map.size(), kN);
  for (std::uint32_t i = 0; i < kN; ++i) {
    auto it = map.find(i);
    ASSERT_NE(it, map.end());
    EXPECT_EQ(it->second, i * 2);
  }
  EXPECT_FALSE(map.contains(kN));
}

TEST(FlatHashMapTest, ReservePreventsRehash) {
  FlatHashMap<std::uint32_t, int> map;
  map.reserve(1000);
  const std::size_t cap = map.capacity();
  EXPECT_GE(cap - cap / 8, 1000u);  // 7/8 load factor honoured.
  for (std::uint32_t i = 0; i < 1000; ++i) map.try_emplace(i, 0);
  EXPECT_EQ(map.capacity(), cap);
}

TEST(FlatHashMapTest, ClearThenReuse) {
  FlatHashMap<std::uint32_t, std::string> map;
  for (std::uint32_t i = 0; i < 100; ++i) map.try_emplace(i, "v");
  map.clear();
  EXPECT_TRUE(map.empty());
  for (std::uint32_t i = 50; i < 150; ++i) map.try_emplace(i, "w");
  EXPECT_EQ(map.size(), 100u);
  EXPECT_EQ(map.find(50u)->second, "w");
  EXPECT_FALSE(map.contains(0u));
}

TEST(FlatHashMapTest, CopyAndMoveSemantics) {
  FlatHashMap<std::uint32_t, std::string> map;
  for (std::uint32_t i = 0; i < 500; ++i) map.try_emplace(i, std::to_string(i));

  FlatHashMap<std::uint32_t, std::string> copy(map);
  EXPECT_EQ(copy.size(), 500u);
  EXPECT_EQ(copy.find(123u)->second, "123");
  copy.erase(123u);
  EXPECT_TRUE(map.contains(123u));  // Deep copy.

  FlatHashMap<std::uint32_t, std::string> moved(std::move(map));
  EXPECT_EQ(moved.size(), 500u);
  EXPECT_EQ(moved.find(321u)->second, "321");

  copy = moved;  // Copy-assign over a non-empty table.
  EXPECT_EQ(copy.size(), 500u);
  EXPECT_TRUE(copy.contains(123u));

  FlatHashMap<std::uint32_t, std::string> target;
  target.try_emplace(9999u, "x");
  target = std::move(moved);  // Move-assign destroys old contents.
  EXPECT_EQ(target.size(), 500u);
  EXPECT_FALSE(target.contains(9999u));
}

TEST(FlatHashMapTest, MoveOnlyValues) {
  FlatHashMap<std::uint32_t, std::unique_ptr<int>> map;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    map.try_emplace(i, std::make_unique<int>(static_cast<int>(i)));
  }
  EXPECT_EQ(*map.find(77u)->second, 77);
  // Erase-heavy churn forces backward-shift moves of the unique_ptr slots.
  for (std::uint32_t i = 0; i < 1000; i += 2) map.erase(i);
  EXPECT_EQ(map.size(), 500u);
  for (std::uint32_t i = 1; i < 1000; i += 2) {
    ASSERT_TRUE(map.contains(i)) << i;
    EXPECT_EQ(*map.find(i)->second, static_cast<int>(i));
  }
  FlatHashMap<std::uint32_t, std::unique_ptr<int>> moved(std::move(map));
  EXPECT_EQ(*moved.find(1u)->second, 1);
}

TEST(FlatHashSetTest, BasicOps) {
  FlatHashSet<std::uint64_t> set;
  EXPECT_TRUE(set.insert(5u).second);
  EXPECT_FALSE(set.insert(5u).second);
  EXPECT_TRUE(set.contains(5u));
  EXPECT_EQ(set.count(5u), 1u);
  EXPECT_EQ(set.erase(5u), 1u);
  EXPECT_EQ(set.count(5u), 0u);
}

TEST(FlatHashMapTest, IterationVisitsEachElementOnce) {
  FlatHashMap<std::uint32_t, std::uint32_t> map;
  for (std::uint32_t i = 0; i < 1234; ++i) map.try_emplace(i, i);
  std::vector<bool> seen(1234, false);
  std::size_t n = 0;
  for (const auto& [k, v] : map) {
    EXPECT_EQ(k, v);
    ASSERT_LT(k, 1234u);
    EXPECT_FALSE(seen[k]);
    seen[k] = true;
    ++n;
  }
  EXPECT_EQ(n, 1234u);
}

// ---------------------------------------------------------------------------
// Randomized differential suites vs the std containers.

TEST(FlatTableDifferentialTest, MapMatchesUnorderedMapUnderChurn) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ULL);
    FlatHashMap<std::uint64_t, std::uint64_t> flat;
    std::unordered_map<std::uint64_t, std::uint64_t, IdHash, std::equal_to<>>
        ref;
    // Small key domain → constant collisions, erases, and re-inserts.
    std::uniform_int_distribution<std::uint64_t> key_dist(0, 1 << 12);
    for (int op = 0; op < 12000; ++op) {
      const std::uint64_t key = key_dist(rng);
      switch (rng() % 8) {
        case 0:
        case 1:
        case 2: {  // insert
          const std::uint64_t value = rng();
          const bool fi = flat.try_emplace(key, value).second;
          const bool ri = ref.try_emplace(key, value).second;
          ASSERT_EQ(fi, ri) << "seed " << seed << " op " << op;
          break;
        }
        case 3: {  // overwrite via operator[]
          const std::uint64_t value = rng();
          flat[key] = value;
          ref[key] = value;
          break;
        }
        case 4:
        case 5: {  // erase by key
          ASSERT_EQ(flat.erase(key), ref.erase(key))
              << "seed " << seed << " op " << op;
          break;
        }
        case 6: {  // erase by iterator when present
          auto fit = flat.find(key);
          auto rit = ref.find(key);
          ASSERT_EQ(fit == flat.end(), rit == ref.end());
          if (fit != flat.end()) {
            flat.erase(fit);
            ref.erase(rit);
          }
          break;
        }
        default: {  // probe
          auto fit = flat.find(key);
          auto rit = ref.find(key);
          ASSERT_EQ(fit == flat.end(), rit == ref.end())
              << "seed " << seed << " op " << op << " key " << key;
          if (fit != flat.end()) ASSERT_EQ(fit->second, rit->second);
          break;
        }
      }
      ASSERT_EQ(flat.size(), ref.size());
      if (op % 3000 == 2999) {
        // Full-content audit both directions.
        for (const auto& [k, v] : ref) {
          auto fit = flat.find(k);
          ASSERT_NE(fit, flat.end()) << "missing key " << k;
          ASSERT_EQ(fit->second, v);
        }
        std::size_t count = 0;
        for (const auto& [k, v] : flat) {
          auto rit = ref.find(k);
          ASSERT_NE(rit, ref.end()) << "phantom key " << k;
          ASSERT_EQ(rit->second, v);
          ++count;
        }
        ASSERT_EQ(count, ref.size());
      }
    }
  }
}

TEST(FlatTableDifferentialTest, SetMatchesUnorderedSetUnderChurn) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    std::mt19937_64 rng(seed * 0xda942042e4dd58b5ULL);
    FlatHashSet<std::uint32_t> flat;
    std::unordered_set<std::uint32_t, IdHash, std::equal_to<>> ref;
    std::uniform_int_distribution<std::uint32_t> key_dist(0, 1 << 11);
    for (int op = 0; op < 12000; ++op) {
      const std::uint32_t key = key_dist(rng);
      switch (rng() % 4) {
        case 0:
        case 1: {
          ASSERT_EQ(flat.insert(key).second, ref.insert(key).second);
          break;
        }
        case 2: {
          ASSERT_EQ(flat.erase(key), ref.erase(key));
          break;
        }
        default: {
          ASSERT_EQ(flat.contains(key), ref.count(key) != 0);
          break;
        }
      }
      ASSERT_EQ(flat.size(), ref.size());
    }
    for (std::uint32_t k : ref) ASSERT_TRUE(flat.contains(k));
  }
}

Tuple RandomTuple(std::mt19937_64& rng, std::size_t arity,
                  std::int64_t domain) {
  std::vector<Value> values;
  values.reserve(arity);
  for (std::size_t i = 0; i < arity; ++i) {
    values.push_back(Value::Int(static_cast<std::int64_t>(rng() % domain)));
  }
  return Tuple(values);
}

TEST(FlatTableDifferentialTest, TupleKeysWithHeterogeneousProbes) {
  // Mirrors the engine's index-bucket pattern: Tuple keys, ProjectionKey
  // probes (zero-allocation heterogeneous lookup), vector payloads.
  const std::vector<std::size_t> kAll = {0, 1};
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    std::mt19937_64 rng(seed * 0x2545f4914f6cdd1dULL);
    FlatHashMap<Tuple, std::vector<int>, TupleHash, TupleEq> flat;
    std::unordered_map<Tuple, std::vector<int>, TupleHash, TupleEq> ref;
    for (int op = 0; op < 10000; ++op) {
      Tuple t = RandomTuple(rng, 2, 64);
      switch (rng() % 4) {
        case 0:
        case 1: {
          const int payload = static_cast<int>(rng() % 1000);
          flat[t].push_back(payload);
          ref[t].push_back(payload);
          break;
        }
        case 2: {
          ASSERT_EQ(flat.erase(t), ref.erase(t));
          break;
        }
        default: {
          // Probe with a ProjectionKey built from the tuple — must not
          // require materializing a Tuple key.
          const ProjectionKey key = t.ProjectKey(kAll);
          auto fit = flat.find(key);
          auto rit = ref.find(key);
          ASSERT_EQ(fit == flat.end(), rit == ref.end())
              << "seed " << seed << " op " << op;
          if (fit != flat.end()) {
            ASSERT_EQ(fit->first, rit->first);
            ASSERT_EQ(fit->second, rit->second);
          }
          ASSERT_EQ(flat.contains(key), ref.contains(key));
          break;
        }
      }
      ASSERT_EQ(flat.size(), ref.size());
    }
    for (const auto& [k, v] : ref) {
      auto fit = flat.find(k);
      ASSERT_NE(fit, flat.end());
      ASSERT_EQ(fit->second, v);
    }
  }
}

TEST(FlatTableDifferentialTest, TupleSetDistinctChurn) {
  // The compiled-query distinct-set pattern: insert-if-absent with
  // periodic clear, Tuple keys of mixed arity.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ULL + 17);
    FlatHashSet<Tuple, TupleHash, TupleEq> flat;
    std::unordered_set<Tuple, TupleHash, TupleEq> ref;
    for (int op = 0; op < 10000; ++op) {
      if (op % 2500 == 2499) {
        flat.clear();
        ref.clear();
        continue;
      }
      Tuple t = RandomTuple(rng, 1 + rng() % 3, 40);
      ASSERT_EQ(flat.insert(t).second, ref.insert(t).second)
          << "seed " << seed << " op " << op;
      ASSERT_EQ(flat.size(), ref.size());
    }
    for (const Tuple& t : ref) ASSERT_TRUE(flat.contains(t));
  }
}

// ---------------------------------------------------------------------------
// Concurrent read-only probes of a quiescent table (tsan coverage): the
// lookup path must not mutate shared state.

TEST(FlatTableConcurrencyTest, ParallelReadOnlyProbes) {
  FlatHashMap<std::uint32_t, std::uint32_t> map;
  constexpr std::uint32_t kN = 50000;
  for (std::uint32_t i = 0; i < kN; ++i) map.try_emplace(i, i ^ 0xabcdu);

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::uint64_t> hits(kThreads, 0);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, &hits, t, kN] {
      std::mt19937 rng(static_cast<unsigned>(t) + 1);
      std::uint64_t local = 0;
      for (int i = 0; i < 200000; ++i) {
        const std::uint32_t key = rng() % (2 * kN);
        auto it = map.find(key);
        if (it != map.end()) {
          ASSERT_EQ(it->second, key ^ 0xabcdu);
          ++local;
        } else {
          ASSERT_GE(key, kN);
        }
      }
      hits[t] = local;
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_GT(hits[t], 0u);
}

}  // namespace
}  // namespace bcdb
