#include <gtest/gtest.h>

#include "core/contradiction.h"
#include "core/possible_worlds.h"
#include "running_example.h"

namespace bcdb {
namespace {

using testing_fixtures::MakeRunningExample;

/// Shared verification: the plan conflicts with its target in every world
/// and is itself appendable to the current state.
void VerifyPlan(BlockchainDatabase& db, PendingId target,
                const ContradictionPlan& plan) {
  auto planned = db.AddPending(plan.transaction);
  ASSERT_TRUE(planned.ok()) << planned.status();
  EXPECT_FALSE(db.checker().FdConsistentPair(
      static_cast<TupleOwner>(target), static_cast<TupleOwner>(*planned)))
      << plan.reason;
  EXPECT_TRUE(IsPossibleWorld(db, {*planned}));
  EXPECT_FALSE(IsPossibleWorld(db, {target, *planned}));
  ASSERT_TRUE(db.DiscardPending(*planned).ok());
}

TEST(ContradictionTest, PlansExistForEveryRunningExampleTransaction) {
  BlockchainDatabase db = MakeRunningExample();
  // Snapshot: planning adds (and discards) scratch transactions, which
  // occupy later pending-id slots.
  const std::vector<PendingId> targets = db.PendingIds();
  for (PendingId target : targets) {
    auto plan = PlanContradiction(db, target);
    ASSERT_TRUE(plan.ok()) << "target T" << (target + 1) << ": "
                           << plan.status();
    EXPECT_FALSE(plan->reason.empty());
    VerifyPlan(db, target, *plan);
  }
}

TEST(ContradictionTest, PlanLeavesDatabaseUnchanged) {
  BlockchainDatabase db = MakeRunningExample();
  const std::size_t pending_before = db.PendingIds().size();
  auto plan = PlanContradiction(db, 0);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(db.PendingIds().size(), pending_before);
}

TEST(ContradictionTest, PlanIsAFaithfulDoubleSpendForSimpleSpends) {
  BlockchainDatabase db = MakeRunningExample();
  // T1 spends output (2, 2); a contradiction must collide on the TxIn key
  // (prevTxId, prevSer) or on one of T1's TxOut keys.
  auto plan = PlanContradiction(db, 0);
  ASSERT_TRUE(plan.ok());
  bool collides = false;
  for (const Transaction::Item& item : plan->transaction.items()) {
    if (item.relation == "TxIn" && item.tuple[0] == Value::Int(2) &&
        item.tuple[1] == Value::Int(2)) {
      collides = true;  // Double spend of (2,2).
    }
    if (item.relation == "TxOut" && item.tuple[0] == Value::Int(4)) {
      collides = true;  // Key collision with T1's outputs.
    }
  }
  EXPECT_TRUE(collides);
}

TEST(ContradictionTest, RepairsInclusionDependencies) {
  BlockchainDatabase db = MakeRunningExample();
  // Whatever the plan for T1 perturbs, the result must be appendable on its
  // own — i.e. all IND witnesses present (base or carried along).
  auto plan = PlanContradiction(db, 0);
  ASSERT_TRUE(plan.ok());
  auto planned = db.AddPending(plan->transaction);
  ASSERT_TRUE(planned.ok());
  EXPECT_TRUE(
      db.checker().CanAppendOwner(db.BaseView(),
                                  static_cast<TupleOwner>(*planned)));
  ASSERT_TRUE(db.DiscardPending(*planned).ok());
}

TEST(ContradictionTest, RejectsNonPendingTarget) {
  BlockchainDatabase db = MakeRunningExample();
  EXPECT_EQ(PlanContradiction(db, 99).status().code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(db.DiscardPending(2).ok());
  EXPECT_FALSE(PlanContradiction(db, 2).ok());
}

TEST(ContradictionTest, NoFdsMeansNoContradiction) {
  // A schema with inclusion dependencies only: transactions can never
  // mutually exclude, so no contradiction exists (Theorem 1's {ind}-only
  // world: everything is compatible).
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "Node", {Attribute{"id", ValueType::kInt, false}}))
                  .ok());
  ASSERT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "Edge", {Attribute{"src", ValueType::kInt, false},
                               Attribute{"dst", ValueType::kInt, false}}))
                  .ok());
  ConstraintSet constraints;
  constraints.AddInd(
      *InclusionDependency::Create(catalog, "Edge", {"src"}, "Node", {"id"}));
  auto db =
      BlockchainDatabase::Create(std::move(catalog), std::move(constraints));
  ASSERT_TRUE(db.ok());
  Transaction txn("t");
  txn.Add("Node", Tuple({Value::Int(1)}));
  txn.Add("Edge", Tuple({Value::Int(1), Value::Int(1)}));
  ASSERT_TRUE(db->AddPending(txn).ok());
  EXPECT_EQ(PlanContradiction(*db, 0).status().code(), StatusCode::kNotFound);
}

TEST(ContradictionTest, SupplyChainHandoffContradicted) {
  // The dealer analogue: contradict a pending custody hand-off so the stone
  // cannot move to the rival recipient.
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "Diamond", {Attribute{"id", ValueType::kInt, false}}))
                  .ok());
  ASSERT_TRUE(
      catalog
          .AddRelation(RelationSchema(
              "Transfer", {Attribute{"diamondId", ValueType::kInt, false},
                           Attribute{"seq", ValueType::kInt, false},
                           Attribute{"toOwner", ValueType::kString, false}}))
          .ok());
  ConstraintSet constraints;
  constraints.AddFd(
      *FunctionalDependency::Key(catalog, "Transfer", {"diamondId", "seq"}));
  constraints.AddInd(*InclusionDependency::Create(
      catalog, "Transfer", {"diamondId"}, "Diamond", {"id"}));
  auto db =
      BlockchainDatabase::Create(std::move(catalog), std::move(constraints));
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->InsertCurrent("Diamond", Tuple({Value::Int(7)})).ok());

  Transaction handoff("sell");
  handoff.Add("Transfer",
              Tuple({Value::Int(7), Value::Int(1), Value::Str("ShadowCorp")}));
  auto target = db->AddPending(handoff);
  ASSERT_TRUE(target.ok());

  auto plan = PlanContradiction(*db, *target);
  ASSERT_TRUE(plan.ok()) << plan.status();
  VerifyPlan(*db, *target, *plan);
}

}  // namespace
}  // namespace bcdb
