#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/monitor.h"
#include "query/parser.h"
#include "util/rng.h"

namespace bcdb {
namespace {

// Differential harness for template batching: a monitor with
// enable_template_batching on must report verdicts identical to one with it
// off (the per-member grounded path) for the same registrations over the
// same database history — across registration styles (RegisterTemplate+Bind
// fleets, plain Adds that canonicalize into shared classes, non-batchable
// templates), churn (apply/discard/add-pending), and member removal. Under
// unlimited budgets the batch evaluator is a pure optimization; any verdict
// divergence is a bug.

using Verdict = ConstraintMonitor::Verdict;

DenialConstraint Q(const std::string& text) {
  auto q = ParseDenialConstraint(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return *q;
}

BlockchainDatabase MakeInstance(std::uint64_t seed, bool keys, bool inds) {
  Xoshiro256 rng(seed);
  Catalog catalog;
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "R", {Attribute{"a", ValueType::kInt, false},
                            Attribute{"b", ValueType::kInt, false}}))
                  .ok());
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "S", {Attribute{"x", ValueType::kInt, false},
                            Attribute{"y", ValueType::kInt, true}}))
                  .ok());
  ConstraintSet constraints;
  if (keys) {
    constraints.AddFd(*FunctionalDependency::Key(catalog, "R", {"a"}));
    constraints.AddFd(
        *FunctionalDependency::Create(catalog, "S", {"x"}, {"y"}));
  }
  if (inds) {
    constraints.AddInd(
        *InclusionDependency::Create(catalog, "S", {"x"}, "R", {"a"}));
  }
  auto db =
      BlockchainDatabase::Create(std::move(catalog), std::move(constraints));
  EXPECT_TRUE(db.ok());

  const std::size_t base_r = rng.NextBelow(3);
  for (std::size_t a = 0; a < base_r; ++a) {
    EXPECT_TRUE(db->InsertCurrent(
                      "R", Tuple({Value::Int(static_cast<std::int64_t>(a)),
                                  Value::Int(rng.NextInRange(0, 3))}))
                    .ok());
  }
  const std::size_t num_pending = 3 + rng.NextBelow(4);
  for (std::size_t t = 0; t < num_pending; ++t) {
    Transaction txn("P" + std::to_string(t));
    const std::size_t num_tuples = 1 + rng.NextBelow(3);
    for (std::size_t i = 0; i < num_tuples; ++i) {
      if (rng.NextBool(0.5)) {
        txn.Add("R", Tuple({Value::Int(rng.NextInRange(0, 4)),
                            Value::Int(rng.NextInRange(0, 3))}));
      } else {
        txn.Add("S", Tuple({Value::Int(rng.NextInRange(0, 4)),
                            Value::Int(rng.NextInRange(0, 3))}));
      }
    }
    EXPECT_TRUE(db->AddPending(txn).ok());
  }
  return std::move(*db);
}

struct Config {
  const char* name;
  bool keys;
  bool inds;
};

constexpr Config kConfigs[] = {
    {"fd-only", true, false},
    {"ind-only", false, true},
    {"mixed", true, true},
};

// One monitor per evaluation mode, registered identically.
struct Pair {
  BlockchainDatabase batched_db;
  BlockchainDatabase grounded_db;
  ConstraintMonitor batched;
  ConstraintMonitor grounded;
  // Parallel handle arrays: member i means the same registration in both.
  std::vector<MonitorHandle> batched_handles;
  std::vector<MonitorHandle> grounded_handles;
  std::vector<std::string> names;

  Pair(std::uint64_t seed, const Config& config)
      : batched_db(MakeInstance(seed, config.keys, config.inds)),
        grounded_db(MakeInstance(seed, config.keys, config.inds)),
        batched(&batched_db),
        grounded(&grounded_db, NoBatching()) {}

  static MonitorOptions NoBatching() {
    MonitorOptions options;
    options.enable_template_batching = false;
    return options;
  }

  void BindBoth(TemplateHandle bt, TemplateHandle gt,
                const std::vector<Value>& binding, const std::string& name) {
    auto b = batched.Bind(bt, binding);
    auto g = grounded.Bind(gt, binding);
    ASSERT_TRUE(b.ok()) << name << ": " << b.status();
    ASSERT_TRUE(g.ok()) << name << ": " << g.status();
    batched_handles.push_back(*b);
    grounded_handles.push_back(*g);
    names.push_back(name);
  }

  void AddBoth(const std::string& label, const std::string& text) {
    auto b = batched.Add(label, Q(text));
    auto g = grounded.Add(label, Q(text));
    ASSERT_TRUE(b.ok()) << label << ": " << b.status();
    ASSERT_TRUE(g.ok()) << label << ": " << g.status();
    batched_handles.push_back(*b);
    grounded_handles.push_back(*g);
    names.push_back(label);
  }

  void PollAndCompare(const char* when) {
    ASSERT_TRUE(batched.Poll().ok()) << when;
    ASSERT_TRUE(grounded.Poll().ok()) << when;
    for (std::size_t i = 0; i < batched_handles.size(); ++i) {
      EXPECT_EQ(batched.verdict(batched_handles[i]),
                grounded.verdict(grounded_handles[i]))
          << when << ": " << names[i];
    }
  }
};

class TemplateDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TemplateDifferentialTest, BatchedMatchesGroundedAcrossChurn) {
  for (const Config& config : kConfigs) {
    SCOPED_TRACE(std::string(config.name) + " seed " +
                 std::to_string(GetParam()));
    const std::uint64_t seed =
        GetParam() * 7 + (config.keys ? 1 : 0) + (config.inds ? 2 : 0);
    Pair pair(seed, config);

    // Fleet 1: single-param template over R's key column.
    auto bt1 = pair.batched.RegisterTemplate("watch-a", "q() :- R($a, y)");
    auto gt1 = pair.grounded.RegisterTemplate("watch-a", "q() :- R($a, y)");
    ASSERT_TRUE(bt1.ok());
    ASSERT_TRUE(gt1.ok());
    for (std::int64_t a = 0; a < 5; ++a) {
      pair.BindBoth(*bt1, *gt1, {Value::Int(a)},
                    "watch-a(" + std::to_string(a) + ")");
    }

    // Fleet 2: two-param join template (CoNP-mixed under IND configs).
    auto bt2 =
        pair.batched.RegisterTemplate("join", "q() :- R(x, $b), S(x, $c)");
    auto gt2 =
        pair.grounded.RegisterTemplate("join", "q() :- R(x, $b), S(x, $c)");
    ASSERT_TRUE(bt2.ok());
    ASSERT_TRUE(gt2.ok());
    for (std::int64_t b = 0; b < 3; ++b) {
      for (std::int64_t c = 0; c < 3; ++c) {
        pair.BindBoth(*bt2, *gt2, {Value::Int(b), Value::Int(c)},
                      "join(" + std::to_string(b) + "," + std::to_string(c) +
                          ")");
      }
    }

    // Fleet 3: a non-batchable template ($t only in a comparison) exercises
    // the grounded fallback inside the batching-enabled monitor.
    auto bt3 = pair.batched.RegisterTemplate(
        "gt", "q() :- S(x, y), R(x, b), b > $t");
    auto gt3 = pair.grounded.RegisterTemplate(
        "gt", "q() :- S(x, y), R(x, b), b > $t");
    ASSERT_TRUE(bt3.ok());
    ASSERT_TRUE(gt3.ok());
    EXPECT_FALSE(pair.batched.template_batchable(*bt3));
    for (std::int64_t t = 0; t < 2; ++t) {
      pair.BindBoth(*bt3, *gt3, {Value::Int(t)},
                    "gt(" + std::to_string(t) + ")");
    }

    // Plain Adds: same-skeleton constants collapse onto one implicit class
    // in the batched monitor; an aggregate stays per-member everywhere.
    pair.AddBoth("r0", "q() :- R(0, y)");
    pair.AddBoth("r1", "q() :- R(1, y)");
    pair.AddBoth("count-s", "[q(count()) :- S(x, y)] > 2");
    if (HasFatalFailure()) return;

    pair.PollAndCompare("initial");

    // Churn: the same mutation sequence on both databases. The instances
    // are identical, so success/failure must agree; verdicts are compared
    // after every step either way.
    Status applied_b = pair.batched_db.ApplyPending(0);
    Status applied_g = pair.grounded_db.ApplyPending(0);
    EXPECT_EQ(applied_b.ok(), applied_g.ok());
    pair.PollAndCompare("after apply P0");

    // Remove one member of the watch-a fleet from both monitors; its
    // siblings (same class) must keep evaluating identically.
    ASSERT_TRUE(pair.batched.Remove(pair.batched_handles[2]).ok());
    ASSERT_TRUE(pair.grounded.Remove(pair.grounded_handles[2]).ok());
    pair.batched_handles.erase(pair.batched_handles.begin() + 2);
    pair.grounded_handles.erase(pair.grounded_handles.begin() + 2);
    pair.names.erase(pair.names.begin() + 2);

    Transaction extra("extra");
    extra.Add("R", Tuple({Value::Int(2), Value::Int(2)}));
    extra.Add("S", Tuple({Value::Int(2), Value::Int(1)}));
    ASSERT_TRUE(pair.batched_db.AddPending(extra).ok());
    ASSERT_TRUE(pair.grounded_db.AddPending(extra).ok());
    pair.PollAndCompare("after remove + add pending");

    Status discarded_b = pair.batched_db.DiscardPending(1);
    Status discarded_g = pair.grounded_db.DiscardPending(1);
    EXPECT_EQ(discarded_b.ok(), discarded_g.ok());
    pair.PollAndCompare("after discard P1");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TemplateDifferentialTest,
                         ::testing::Range<std::uint64_t>(0, 30));

// --- Budgets ------------------------------------------------------------

/// R(a, b) with key a plus S[x] ⊆ R[a] (the IND forces the CoNP-mixed
/// class, so the monitor's default budget applies); pending double-spend
/// pairs (i,0) vs (i,1) for i < k give |Poss(D)| = 3^k.
BlockchainDatabase MakeMixedConflictLadder(std::size_t k) {
  Catalog catalog;
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "R", {Attribute{"a", ValueType::kInt, false},
                            Attribute{"b", ValueType::kInt, false}}))
                  .ok());
  EXPECT_TRUE(catalog
                  .AddRelation(RelationSchema(
                      "S", {Attribute{"x", ValueType::kInt, false},
                            Attribute{"y", ValueType::kInt, false}}))
                  .ok());
  ConstraintSet constraints;
  auto key = FunctionalDependency::Key(catalog, "R", {"a"});
  EXPECT_TRUE(key.ok());
  constraints.AddFd(std::move(*key));
  constraints.AddInd(
      *InclusionDependency::Create(catalog, "S", {"x"}, "R", {"a"}));
  auto db =
      BlockchainDatabase::Create(std::move(catalog), std::move(constraints));
  EXPECT_TRUE(db.ok());
  for (std::size_t i = 0; i < k; ++i) {
    for (std::int64_t b : {0, 1}) {
      Transaction txn;
      txn.Add("R",
              Tuple({Value::Int(static_cast<std::int64_t>(i)), Value::Int(b)}));
      EXPECT_TRUE(db->AddPending(txn).ok());
    }
  }
  return std::move(*db);
}

// A budget-starved batch check may answer kUndecided, but a *decided*
// verdict it reports must match the unlimited reference, and escalation
// must eventually decide every member.
TEST(TemplateBudgetDifferentialTest, BatchNeverLiesUnderBudgetAndEscalates) {
  BlockchainDatabase reference_db = MakeMixedConflictLadder(3);  // 27 worlds.
  ConstraintMonitor reference(&reference_db);

  BlockchainDatabase budgeted_db = MakeMixedConflictLadder(3);
  MonitorOptions options;
  // One world per check: any single maximal world contains at most one of
  // R(0,0) / R(0,1), so the three surviving bindings cannot all settle —
  // work-based, deterministic expiry.
  options.budget.max_worlds = 1;
  options.budget_growth = 4.0;
  ConstraintMonitor budgeted(&budgeted_db, options);

  auto ref_tmpl = reference.RegisterTemplate("cell", "q() :- R($a, $b)");
  auto bud_tmpl = budgeted.RegisterTemplate("cell", "q() :- R($a, $b)");
  ASSERT_TRUE(ref_tmpl.ok());
  ASSERT_TRUE(bud_tmpl.ok());
  ASSERT_TRUE(budgeted.template_batchable(*bud_tmpl));

  const std::vector<std::vector<Value>> bindings = {
      {Value::Int(0), Value::Int(0)},
      {Value::Int(0), Value::Int(1)},
      {Value::Int(1), Value::Int(0)},
      {Value::Int(9), Value::Int(9)},
  };
  std::vector<MonitorHandle> ref_handles;
  std::vector<MonitorHandle> bud_handles;
  for (const auto& binding : bindings) {
    auto r = reference.Bind(*ref_tmpl, binding);
    auto b = budgeted.Bind(*bud_tmpl, binding);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(b.ok());
    ref_handles.push_back(*r);
    bud_handles.push_back(*b);
  }
  ASSERT_TRUE(reference.Poll().ok());
  for (MonitorHandle handle : ref_handles) {
    ASSERT_NE(reference.verdict(handle), Verdict::kUndecided);
  }

  bool all_decided = false;
  for (int poll = 0; poll < 10 && !all_decided; ++poll) {
    ASSERT_TRUE(budgeted.Poll().ok());
    all_decided = true;
    for (std::size_t i = 0; i < bindings.size(); ++i) {
      const Verdict got = budgeted.verdict(bud_handles[i]);
      if (got == Verdict::kUndecided) {
        all_decided = false;
        continue;
      }
      // Decided under budget pressure: must agree with the reference.
      EXPECT_EQ(got, reference.verdict(ref_handles[i])) << "binding " << i;
    }
  }
  EXPECT_TRUE(all_decided);
  EXPECT_GT(budgeted.poll_stats().undecided_verdicts, 0u);
  EXPECT_GT(budgeted.poll_stats().budget_escalations, 0u);
  for (std::size_t i = 0; i < bindings.size(); ++i) {
    EXPECT_EQ(budgeted.verdict(bud_handles[i]),
              reference.verdict(ref_handles[i]))
        << "binding " << i;
  }
}

}  // namespace
}  // namespace bcdb
