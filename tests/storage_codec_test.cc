#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "storage/crc32c.h"
#include "storage/record_codec.h"
#include "storage_test_util.h"

namespace bcdb {
namespace {

using storage::Crc32c;
using storage::DecodeMutation;
using storage::DecodeTupleValues;
using storage::DecodeValue;
using storage::EncodeMutation;
using storage::EncodeSnapshot;
using storage::EncodeTupleValues;
using storage::EncodeValue;
using storage::MaskCrc;
using storage::PersistedMutation;
using storage::RestoreSnapshot;
using storage::SchemaFingerprint;
using storage::UnmaskCrc;
using storage_test::ExpectEquivalent;
using storage_test::MakeTestCatalog;

TEST(Crc32cTest, MatchesKnownAnswerVector) {
  // The canonical CRC-32C check value (RFC 3720 appendix / every
  // implementation's self-test).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= data.size(); split += 7) {
    const std::uint32_t first = Crc32c(data.substr(0, split));
    EXPECT_EQ(Crc32c(data.substr(split), first), Crc32c(data)) << split;
  }
}

TEST(Crc32cTest, MaskRoundTripsAndDisplacesValue) {
  for (std::uint32_t crc : {0u, 1u, 0xE3069283u, 0xFFFFFFFFu, 0xDEADBEEFu}) {
    EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
    EXPECT_NE(MaskCrc(crc), crc);
  }
}

TEST(ValueCodecTest, RoundTripsEveryType) {
  const std::vector<Value> values = {
      Value::Null(),
      Value::Int(0),
      Value::Int(-1),
      Value::Int(std::int64_t{1} << 62),
      Value::Real(3.25),
      Value::Real(-0.0),
      Value::Str(""),
      Value::Str("pubkey-with-\0-byte" + std::string(1, '\0')),
      Value::Str(std::string(100, 'x')),
  };
  for (const Value& v : values) {
    std::string buf;
    EncodeValue(&buf, v);
    ByteReader in(buf);
    Value decoded;
    ASSERT_TRUE(DecodeValue(&in, &decoded)) << v.ToString();
    EXPECT_EQ(decoded, v);
    EXPECT_TRUE(in.exhausted());
  }
}

TEST(ValueCodecTest, TruncatedInputFailsCleanly) {
  std::string buf;
  EncodeValue(&buf, Value::Str("hello"));
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    ByteReader in(buf.data(), cut);
    Value v;
    EXPECT_FALSE(DecodeValue(&in, &v)) << cut;
  }
}

TEST(ValueCodecTest, TupleRoundTripInternsIntoPool) {
  const Tuple original({Value::Int(7), Value::Str("pk"), Value::Real(1.5)});
  std::string buf;
  EncodeTupleValues(&buf, original);
  ByteReader in(buf);
  Tuple decoded;
  ASSERT_TRUE(DecodeTupleValues(&in, &decoded));
  // Interning canonicalizes, so the decoded tuple is id-for-id equal — not
  // merely value-equal — to the original.
  ASSERT_EQ(decoded.arity(), original.arity());
  for (std::size_t i = 0; i < original.arity(); ++i) {
    EXPECT_EQ(decoded.id_at(i), original.id_at(i)) << i;
  }
}

TEST(SchemaFingerprintTest, SeparatesSchemas) {
  const std::uint64_t base = SchemaFingerprint(MakeTestCatalog());
  EXPECT_EQ(base, SchemaFingerprint(MakeTestCatalog()));  // Deterministic.

  Catalog renamed;
  ASSERT_TRUE(renamed
                  .AddRelation(RelationSchema(
                      "R2", {Attribute{"a", ValueType::kInt, false},
                             Attribute{"b", ValueType::kInt, false}}))
                  .ok());
  ASSERT_TRUE(renamed
                  .AddRelation(RelationSchema(
                      "S", {Attribute{"x", ValueType::kInt, false},
                            Attribute{"y", ValueType::kInt, true}}))
                  .ok());
  EXPECT_NE(SchemaFingerprint(renamed), base);

  Catalog retyped;
  ASSERT_TRUE(retyped
                  .AddRelation(RelationSchema(
                      "R", {Attribute{"a", ValueType::kString, false},
                            Attribute{"b", ValueType::kInt, false}}))
                  .ok());
  ASSERT_TRUE(retyped
                  .AddRelation(RelationSchema(
                      "S", {Attribute{"x", ValueType::kInt, false},
                            Attribute{"y", ValueType::kInt, true}}))
                  .ok());
  EXPECT_NE(SchemaFingerprint(retyped), base);
}

class MutationCodecTest : public ::testing::Test {
 protected:
  Catalog catalog_ = MakeTestCatalog();
};

TEST_F(MutationCodecTest, PendingAddedRoundTrips) {
  Transaction txn("P1");
  txn.Add("R", Tuple({Value::Int(1), Value::Int(2)}));
  txn.Add("S", Tuple({Value::Int(3), Value::Int(4)}));

  MutationEvent event;
  event.kind = MutationKind::kPendingAdded;
  event.seq = 17;
  event.version = 42;
  event.pending_id = 5;
  event.relation_ids = {0, 1};
  MutationPayload payload;
  payload.txn = &txn;

  std::string buf;
  ASSERT_TRUE(EncodeMutation(event, payload, catalog_, &buf).ok());
  StatusOr<PersistedMutation> decoded = DecodeMutation(buf, catalog_);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->event.kind, MutationKind::kPendingAdded);
  EXPECT_EQ(decoded->event.seq, 17u);
  EXPECT_EQ(decoded->event.version, 42u);
  EXPECT_EQ(decoded->event.pending_id, 5u);
  EXPECT_EQ(decoded->event.relation_ids, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(decoded->txn.label(), "P1");
  ASSERT_EQ(decoded->txn.size(), 2u);
  EXPECT_EQ(decoded->txn.items()[0].relation, "R");
  EXPECT_EQ(decoded->txn.items()[0].tuple,
            Tuple({Value::Int(1), Value::Int(2)}));
  EXPECT_EQ(decoded->txn.items()[1].relation, "S");
}

TEST_F(MutationCodecTest, CurrentInsertedRoundTrips) {
  const Tuple tuple({Value::Int(9), Value::Int(8)});
  MutationEvent event;
  event.kind = MutationKind::kCurrentInserted;
  event.seq = 3;
  event.version = 4;
  event.relation_ids = {0};
  MutationPayload payload;
  payload.tuple = &tuple;
  payload.relation_id = 0;

  std::string buf;
  ASSERT_TRUE(EncodeMutation(event, payload, catalog_, &buf).ok());
  StatusOr<PersistedMutation> decoded = DecodeMutation(buf, catalog_);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->relation_id, 0u);
  EXPECT_EQ(decoded->tuple, tuple);
}

TEST_F(MutationCodecTest, CurrentRemovedRoundTrips) {
  // Shares the tuple-payload branch with kCurrentInserted: a reorg's base
  // retraction must survive the WAL with its tuple intact.
  const Tuple tuple({Value::Int(7), Value::Int(6)});
  MutationEvent event;
  event.kind = MutationKind::kCurrentRemoved;
  event.seq = 11;
  event.version = 12;
  event.pending_id = kNoPendingId;
  event.relation_ids = {1};
  MutationPayload payload;
  payload.tuple = &tuple;
  payload.relation_id = 1;

  std::string buf;
  ASSERT_TRUE(EncodeMutation(event, payload, catalog_, &buf).ok());
  StatusOr<PersistedMutation> decoded = DecodeMutation(buf, catalog_);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->event.kind, MutationKind::kCurrentRemoved);
  EXPECT_EQ(decoded->event.seq, 11u);
  EXPECT_EQ(decoded->relation_id, 1u);
  EXPECT_EQ(decoded->tuple, tuple);

  // The tuple payload is mandatory, exactly as for inserts.
  buf.clear();
  EXPECT_FALSE(EncodeMutation(event, MutationPayload{}, catalog_, &buf).ok());
}

TEST_F(MutationCodecTest, PendingRestoredRoundTrips) {
  // Event-only record: the restored transaction's tuples are recovered
  // from its original kPendingAdded record, not re-encoded here.
  MutationEvent event;
  event.kind = MutationKind::kPendingRestored;
  event.seq = 21;
  event.version = 22;
  event.pending_id = 3;
  event.relation_ids = {0, 1};
  std::string buf;
  ASSERT_TRUE(EncodeMutation(event, MutationPayload{}, catalog_, &buf).ok());
  StatusOr<PersistedMutation> decoded = DecodeMutation(buf, catalog_);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->event.kind, MutationKind::kPendingRestored);
  EXPECT_EQ(decoded->event.pending_id, 3u);
  EXPECT_EQ(decoded->event.relation_ids, (std::vector<std::size_t>{0, 1}));
}

TEST_F(MutationCodecTest, LifecycleEventsCarryNoPayload) {
  for (MutationKind kind :
       {MutationKind::kPendingApplied, MutationKind::kPendingDiscarded}) {
    MutationEvent event;
    event.kind = kind;
    event.seq = 1;
    event.version = 2;
    event.pending_id = 0;
    event.relation_ids = {1};
    std::string buf;
    ASSERT_TRUE(EncodeMutation(event, MutationPayload{}, catalog_, &buf).ok());
    StatusOr<PersistedMutation> decoded = DecodeMutation(buf, catalog_);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->event.kind, kind);
    EXPECT_EQ(decoded->event.pending_id, 0u);
  }
}

TEST_F(MutationCodecTest, MissingPayloadAndBadRelationAreRejected) {
  MutationEvent event;
  event.kind = MutationKind::kPendingAdded;
  std::string buf;
  EXPECT_FALSE(EncodeMutation(event, MutationPayload{}, catalog_, &buf).ok());

  Transaction txn("bad");
  txn.Add("NoSuchRelation", Tuple({Value::Int(1)}));
  MutationPayload payload;
  payload.txn = &txn;
  buf.clear();
  EXPECT_FALSE(EncodeMutation(event, payload, catalog_, &buf).ok());
}

TEST_F(MutationCodecTest, CorruptRecordsFailToDecode) {
  Transaction txn("P1");
  txn.Add("R", Tuple({Value::Int(1), Value::Int(2)}));
  MutationEvent event;
  event.kind = MutationKind::kPendingAdded;
  MutationPayload payload;
  payload.txn = &txn;
  std::string buf;
  ASSERT_TRUE(EncodeMutation(event, payload, catalog_, &buf).ok());

  // Every strict prefix fails (no partial decodes)...
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    EXPECT_FALSE(DecodeMutation(std::string_view(buf.data(), cut), catalog_)
                     .ok())
        << cut;
  }
  // ...and so do trailing bytes.
  EXPECT_FALSE(DecodeMutation(buf + "x", catalog_).ok());
}

/// Builds a database with every flavor of persisted state: base tuples,
/// live pending slots, applied and discarded slots, shared tuples.
BlockchainDatabase MakePopulatedDb() {
  auto db = BlockchainDatabase::Create(MakeTestCatalog(), ConstraintSet{});
  EXPECT_TRUE(db.ok());
  EXPECT_TRUE(db->InsertCurrent("R", Tuple({Value::Int(1), Value::Int(10)})).ok());
  EXPECT_TRUE(db->InsertCurrent("S", Tuple({Value::Int(2), Value::Int(20)})).ok());

  Transaction applied("applied");
  applied.Add("R", Tuple({Value::Int(3), Value::Int(30)}));
  applied.Add("S", Tuple({Value::Int(2), Value::Int(20)}));  // Shared tuple.
  auto applied_id = db->AddPending(applied);
  EXPECT_TRUE(applied_id.ok());

  Transaction discarded("discarded");
  discarded.Add("S", Tuple({Value::Int(4), Value::Int(40)}));
  auto discarded_id = db->AddPending(discarded);
  EXPECT_TRUE(discarded_id.ok());

  Transaction live("live");
  live.Add("R", Tuple({Value::Int(5), Value::Int(50)}));
  EXPECT_TRUE(db->AddPending(live).ok());

  EXPECT_TRUE(db->ApplyPending(*applied_id).ok());
  EXPECT_TRUE(db->DiscardPending(*discarded_id).ok());
  return std::move(*db);
}

TEST(SnapshotCodecTest, RoundTripsFullDatabaseImage) {
  BlockchainDatabase original = MakePopulatedDb();
  const std::string payload = EncodeSnapshot(original);

  auto restored = BlockchainDatabase::Create(MakeTestCatalog(), ConstraintSet{});
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE(RestoreSnapshot(payload, original.version(),
                              original.mutations().end_seq(), &*restored)
                  .ok());
  ExpectEquivalent(original, *restored);

  // The restored database is live: the next mutation continues the
  // version/seq history exactly where the snapshot left off.
  const std::uint64_t version_before = restored->version();
  ASSERT_TRUE(
      restored->InsertCurrent("R", Tuple({Value::Int(99), Value::Int(9)})).ok());
  EXPECT_EQ(restored->version(), version_before + 1);
}

TEST(SnapshotCodecTest, DiscardedTuplesKeepTheirIdSlots) {
  // A tuple owned only by a discarded transaction stays stored (invisible)
  // so TupleIds after it keep their positions; the snapshot must preserve
  // that, including the empty owner list.
  BlockchainDatabase original = MakePopulatedDb();
  const Relation& s = original.database().relation(1);
  bool found_ownerless = false;
  for (TupleId id = 0; id < s.num_tuples(); ++id) {
    if (s.owners(id).empty()) found_ownerless = true;
  }
  ASSERT_TRUE(found_ownerless) << "test setup should leave an ownerless tuple";

  const std::string payload = EncodeSnapshot(original);
  auto restored = BlockchainDatabase::Create(MakeTestCatalog(), ConstraintSet{});
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE(RestoreSnapshot(payload, original.version(),
                              original.mutations().end_seq(), &*restored)
                  .ok());
  ExpectEquivalent(original, *restored);
}

TEST(SnapshotCodecTest, CorruptPayloadsAreRejected) {
  BlockchainDatabase original = MakePopulatedDb();
  const std::string payload = EncodeSnapshot(original);

  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, payload.size() / 2,
                          payload.size() - 1}) {
    auto db = BlockchainDatabase::Create(MakeTestCatalog(), ConstraintSet{});
    ASSERT_TRUE(db.ok());
    EXPECT_FALSE(RestoreSnapshot(std::string_view(payload.data(), cut), 1, 1,
                                 &*db)
                     .ok())
        << cut;
  }

  auto db = BlockchainDatabase::Create(MakeTestCatalog(), ConstraintSet{});
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE(RestoreSnapshot(payload + "junk", 1, 1, &*db).ok());
}

}  // namespace
}  // namespace bcdb
