#include <gtest/gtest.h>

#include "query/parser.h"

namespace bcdb {
namespace {

TEST(ParserTest, SimplePositiveQuery) {
  auto q = ParseDenialConstraint("q() :- TxOut(ntx, s, 'U8Pk', a)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->name, "q");
  ASSERT_EQ(q->positive_atoms.size(), 1u);
  const Atom& atom = q->positive_atoms[0];
  EXPECT_EQ(atom.relation, "TxOut");
  ASSERT_EQ(atom.args.size(), 4u);
  EXPECT_TRUE(atom.args[0].is_variable());
  EXPECT_EQ(atom.args[0].name(), "ntx");
  EXPECT_FALSE(atom.args[2].is_variable());
  EXPECT_EQ(atom.args[2].value(), Value::Str("U8Pk"));
}

TEST(ParserTest, AcceptsArrowVariantAndPeriod) {
  EXPECT_TRUE(ParseDenialConstraint("q() <- R(x).").ok());
  EXPECT_TRUE(ParseDenialConstraint("q() :- R(x).").ok());
}

TEST(ParserTest, NumericConstants) {
  auto q = ParseDenialConstraint("q() :- R(1, -2, 0.5, x)");
  ASSERT_TRUE(q.ok());
  const Atom& atom = q->positive_atoms[0];
  EXPECT_EQ(atom.args[0].value(), Value::Int(1));
  EXPECT_EQ(atom.args[1].value(), Value::Int(-2));
  EXPECT_EQ(atom.args[2].value(), Value::Real(0.5));
  EXPECT_TRUE(atom.args[3].is_variable());
}

TEST(ParserTest, MultipleAtomsAndComparisons) {
  auto q = ParseDenialConstraint(
      "q() :- R(x, y), S(y, z), x != z, y > 3, z <= 'abc'");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->positive_atoms.size(), 2u);
  ASSERT_EQ(q->comparisons.size(), 3u);
  EXPECT_EQ(q->comparisons[0].op, ComparisonOp::kNe);
  EXPECT_EQ(q->comparisons[1].op, ComparisonOp::kGt);
  EXPECT_EQ(q->comparisons[2].op, ComparisonOp::kLe);
}

TEST(ParserTest, DiamondNeSyntax) {
  auto q = ParseDenialConstraint("q() :- R(x, y), x <> y");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->comparisons.size(), 1u);
  EXPECT_EQ(q->comparisons[0].op, ComparisonOp::kNe);
}

TEST(ParserTest, NegatedAtom) {
  auto q = ParseDenialConstraint(
      "q2() :- TxIn(pt, ps, 'AlcPK', a, ntx, 'AlcSig'), TxOut(ntx, s, pk, b), "
      "not Trusted(pk)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->positive_atoms.size(), 2u);
  ASSERT_EQ(q->negated_atoms.size(), 1u);
  EXPECT_TRUE(q->negated_atoms[0].negated);
  EXPECT_EQ(q->negated_atoms[0].relation, "Trusted");
}

TEST(ParserTest, AggregateQuery) {
  auto q = ParseDenialConstraint(
      "[q3(sum(a)) :- TxIn(t, s, 'AlcPK', a, nt, 'AlcSig')] > 5");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->aggregate.has_value());
  EXPECT_EQ(q->aggregate->fn, AggregateFunction::kSum);
  EXPECT_EQ(q->aggregate->op, ComparisonOp::kGt);
  EXPECT_EQ(q->aggregate->threshold, Value::Int(5));
  ASSERT_EQ(q->aggregate->args.size(), 1u);
  EXPECT_EQ(q->aggregate->args[0].name(), "a");
}

TEST(ParserTest, CountDistinctAggregate) {
  auto q = ParseDenialConstraint("[q4(cntd(ntx)) :- R(ntx, x)] >= 10");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->aggregate->fn, AggregateFunction::kCountDistinct);
  EXPECT_EQ(q->aggregate->op, ComparisonOp::kGe);
}

TEST(ParserTest, CountWithNoArgs) {
  auto q = ParseDenialConstraint("[q(count()) :- R(x)] > 3");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->aggregate->args.empty());
}

TEST(ParserTest, RoundTripsThroughToString) {
  const char* queries[] = {
      "q() :- TxOut(ntx, s, 'U8Pk', a)",
      "q() :- R(x, y), S(y, z), x != z",
      "[qa(sum(a)) :- TxOut(n, s, 'X', a)] >= 100",
  };
  for (const char* text : queries) {
    auto q1 = ParseDenialConstraint(text);
    ASSERT_TRUE(q1.ok()) << text;
    auto q2 = ParseDenialConstraint(q1->ToString());
    ASSERT_TRUE(q2.ok()) << q1->ToString();
    EXPECT_EQ(q1->ToString(), q2->ToString());
  }
}

TEST(ParserTest, TemplateParams) {
  auto q = ParseDenialConstraint("q() :- TxOut(t, s, $pk, a), a > $floor");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->positive_atoms.size(), 1u);
  EXPECT_TRUE(q->positive_atoms[0].args[2].is_param());
  EXPECT_EQ(q->positive_atoms[0].args[2].name(), "pk");
  ASSERT_EQ(q->comparisons.size(), 1u);
  EXPECT_TRUE(q->comparisons[0].rhs.is_param());
  EXPECT_EQ(q->comparisons[0].rhs.name(), "floor");

  auto agg = ParseDenialConstraint("[q(count()) :- R(x, y)] > $limit");
  ASSERT_TRUE(agg.ok());
  ASSERT_TRUE(agg->aggregate.has_value());
  ASSERT_TRUE(agg->aggregate->threshold_param.has_value());
  EXPECT_EQ(*agg->aggregate->threshold_param, "limit");
}

TEST(ParserTest, TemplateParamsRoundTrip) {
  const char* templates[] = {
      "q() :- TxOut(t, s, $pk, a)",
      "q() :- R(x, $b), S(x, $c), x != $b",
      "[q(sum(a)) :- TxOut(n, s, $pk, a)] >= $cap",
  };
  for (const char* text : templates) {
    auto q1 = ParseDenialConstraint(text);
    ASSERT_TRUE(q1.ok()) << text;
    auto q2 = ParseDenialConstraint(q1->ToString());
    ASSERT_TRUE(q2.ok()) << q1->ToString();
    EXPECT_EQ(q1->ToString(), q2->ToString());
  }
}

TEST(ParserTest, TemplateParamErrors) {
  // '$' must be followed by a name.
  EXPECT_FALSE(ParseDenialConstraint("q() :- R($, y)").ok());
  EXPECT_FALSE(ParseDenialConstraint("q() :- R($ x, y)").ok());
  // Params are constant placeholders, not head variables.
  EXPECT_FALSE(ParseDenialConstraint("q($a) :- R($a, y)").ok());
}

TEST(ParserTest, HeadVariables) {
  auto q = ParseDenialConstraint("q(pk, a) :- TxOut(t, s, pk, a)");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->head_vars.size(), 2u);
  EXPECT_EQ(q->head_vars[0].name(), "pk");
  EXPECT_EQ(q->head_vars[1].name(), "a");
  EXPECT_FALSE(q->is_boolean());

  auto boolean = ParseDenialConstraint("q() :- R(x)");
  ASSERT_TRUE(boolean.ok());
  EXPECT_TRUE(boolean->is_boolean());
}

TEST(ParserTest, HeadConstantsRejected) {
  EXPECT_FALSE(ParseDenialConstraint("q(1) :- R(x)").ok());
  EXPECT_FALSE(ParseDenialConstraint("q('c') :- R(x)").ok());
}

TEST(ParserTest, HeadRoundTrips) {
  auto q1 = ParseDenialConstraint("q(x, y) :- R(x, y), x < y");
  ASSERT_TRUE(q1.ok());
  auto q2 = ParseDenialConstraint(q1->ToString());
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q1->ToString(), q2->ToString());
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseDenialConstraint("").ok());
  EXPECT_FALSE(ParseDenialConstraint("q( :- R(x)").ok());
  EXPECT_FALSE(ParseDenialConstraint("q() :- R(x").ok());
  EXPECT_FALSE(ParseDenialConstraint("q() :- R('unterminated)").ok());
  EXPECT_FALSE(ParseDenialConstraint("q() :- not x > 3").ok());
  EXPECT_FALSE(ParseDenialConstraint("[q(frobnicate(a)) :- R(a)] > 1").ok());
  EXPECT_FALSE(ParseDenialConstraint("[q(sum(a)) :- R(a)] > x").ok());
  EXPECT_FALSE(ParseDenialConstraint("q() :- R(x) trailing").ok());
}

}  // namespace
}  // namespace bcdb
