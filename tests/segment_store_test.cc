// Checkpoint segment files and the DurableStore checkpoint/recover cycle.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "storage/durable_store.h"
#include "storage/record_codec.h"
#include "storage/segment.h"
#include "storage_test_util.h"

namespace bcdb {
namespace {

using storage::DurableStore;
using storage::DurableStoreOptions;
using storage::MappedFile;
using storage::ReadSegment;
using storage::ReadSegmentHeader;
using storage::SegmentContents;
using storage::SegmentHeader;
using storage::WriteSegment;
using storage_test::ExpectEquivalent;
using storage_test::FileSize;
using storage_test::FlipByte;
using storage_test::ListFilesWithSuffix;
using storage_test::MakeTestCatalog;
using storage_test::ScratchDir;
using storage_test::TruncateFileBy;

std::string MakePayload(std::size_t size) {
  std::string payload(size, '\0');
  for (std::size_t i = 0; i < size; ++i) {
    payload[i] = static_cast<char>((i * 131 + 17) & 0xFF);
  }
  return payload;
}

SegmentHeader SmallBlockHeader(std::size_t payload_size) {
  SegmentHeader header;
  header.block_size = 64;  // Force many blocks even for small payloads.
  header.checkpoint_seq = 42;
  header.db_version = 7;
  header.schema_fingerprint = 0x1234abcd5678ef00ULL;
  header.payload_size = payload_size;
  return header;
}

TEST(SegmentTest, RoundTripsMultiBlockPayload) {
  ScratchDir dir;
  const std::string path = dir.Sub("multi.seg");
  const std::string payload = MakePayload(1000);  // 15 full blocks + remainder.
  std::uint64_t physical = 0;
  ASSERT_TRUE(
      WriteSegment(path, SmallBlockHeader(payload.size()), payload, &physical)
          .ok());
  EXPECT_GT(physical, payload.size());  // Framing overhead exists...
  EXPECT_EQ(physical, FileSize(path));  // ...and is what actually hit disk.

  StatusOr<SegmentContents> contents = ReadSegment(path);
  ASSERT_TRUE(contents.ok()) << contents.status();
  EXPECT_EQ(contents->payload, payload);
  EXPECT_EQ(contents->header.checkpoint_seq, 42u);
  EXPECT_EQ(contents->header.db_version, 7u);
  EXPECT_EQ(contents->header.schema_fingerprint, 0x1234abcd5678ef00ULL);
  EXPECT_EQ(contents->header.block_size, 64u);
}

TEST(SegmentTest, RoundTripsEmptyPayload) {
  ScratchDir dir;
  const std::string path = dir.Sub("empty.seg");
  ASSERT_TRUE(WriteSegment(path, SmallBlockHeader(0), "").ok());
  StatusOr<SegmentContents> contents = ReadSegment(path);
  ASSERT_TRUE(contents.ok()) << contents.status();
  EXPECT_TRUE(contents->payload.empty());
}

TEST(SegmentTest, HeaderProbeReadsWithoutValidatingBlocks) {
  ScratchDir dir;
  const std::string path = dir.Sub("probe.seg");
  const std::string payload = MakePayload(300);
  ASSERT_TRUE(
      WriteSegment(path, SmallBlockHeader(payload.size()), payload).ok());

  StatusOr<SegmentHeader> header = ReadSegmentHeader(path);
  ASSERT_TRUE(header.ok()) << header.status();
  EXPECT_EQ(header->checkpoint_seq, 42u);
  EXPECT_EQ(header->payload_size, payload.size());

  // A flipped payload bit doesn't bother the probe, but fails a full read.
  FlipByte(path, FileSize(path) - 1);
  EXPECT_TRUE(ReadSegmentHeader(path).ok());
  EXPECT_FALSE(ReadSegment(path).ok());
}

TEST(SegmentTest, DetectsBitFlipAnywhere) {
  ScratchDir dir;
  const std::string pristine = dir.Sub("pristine.seg");
  const std::string payload = MakePayload(200);
  ASSERT_TRUE(
      WriteSegment(pristine, SmallBlockHeader(payload.size()), payload).ok());
  const std::uint64_t size = FileSize(pristine);

  // Flip one byte at a spread of offsets covering the header, block
  // framing, and payloads; every single one must be caught.
  for (std::uint64_t offset = 0; offset < size; offset += 13) {
    const std::string corrupt = dir.Sub("corrupt.seg");
    std::filesystem::copy_file(pristine, corrupt,
                               std::filesystem::copy_options::overwrite_existing);
    FlipByte(corrupt, offset);
    EXPECT_FALSE(ReadSegment(corrupt).ok()) << "offset " << offset;
  }
}

TEST(SegmentTest, DetectsTruncationAndTrailingGarbage) {
  ScratchDir dir;
  const std::string path = dir.Sub("trunc.seg");
  const std::string payload = MakePayload(500);
  ASSERT_TRUE(
      WriteSegment(path, SmallBlockHeader(payload.size()), payload).ok());

  const std::string garbled = dir.Sub("garbled.seg");
  std::filesystem::copy_file(path, garbled);
  storage_test::AppendBytesToFile(garbled, "extra");
  EXPECT_FALSE(ReadSegment(garbled).ok());

  for (std::uint64_t chop : {std::uint64_t{1}, std::uint64_t{7},
                             FileSize(path) / 2, FileSize(path) - 1}) {
    const std::string cut = dir.Sub("cut.seg");
    std::filesystem::copy_file(path, cut,
                               std::filesystem::copy_options::overwrite_existing);
    TruncateFileBy(cut, chop);
    EXPECT_FALSE(ReadSegment(cut).ok()) << "chopped " << chop;
  }
}

TEST(SegmentTest, MappedFileReportsMissingFileAsNotFound) {
  ScratchDir dir;
  StatusOr<MappedFile> mapped = MappedFile::Open(dir.Sub("nope"));
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(ReadSegment(dir.Sub("nope")).ok());
}

// ---- DurableStore checkpoint / recover ------------------------------------

/// Runs a small scripted workload: base tuples, an applied txn, a
/// discarded txn, and a still-live txn.
void RunWorkload(BlockchainDatabase* db) {
  ASSERT_TRUE(db->InsertCurrent("R", Tuple({Value::Int(1), Value::Int(10)})).ok());
  ASSERT_TRUE(db->InsertCurrent("S", Tuple({Value::Int(2), Value::Int(20)})).ok());
  Transaction applied("applied");
  applied.Add("R", Tuple({Value::Int(3), Value::Int(30)}));
  auto applied_id = db->AddPending(applied);
  ASSERT_TRUE(applied_id.ok());
  Transaction discarded("discarded");
  discarded.Add("S", Tuple({Value::Int(4), Value::Int(40)}));
  auto discarded_id = db->AddPending(discarded);
  ASSERT_TRUE(discarded_id.ok());
  Transaction live("live");
  live.Add("R", Tuple({Value::Int(5), Value::Int(50)}));
  ASSERT_TRUE(db->AddPending(live).ok());
  ASSERT_TRUE(db->ApplyPending(*applied_id).ok());
  ASSERT_TRUE(db->DiscardPending(*discarded_id).ok());
}

TEST(DurableStoreTest, FreshDirectoryRecoversEmpty) {
  ScratchDir dir;
  auto store = DurableStore::Open(dir.Sub("db"), MakeTestCatalog());
  ASSERT_TRUE(store.ok()) << store.status();
  auto db = (*store)->Recover(ConstraintSet{});
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->version(), 0u);
  EXPECT_EQ(db->num_pending(), 0u);
  EXPECT_EQ(db->mutations().end_seq(), 0u);
  EXPECT_FALSE((*store)->stats().degraded_recovery);
}

TEST(DurableStoreTest, CheckpointThenRecoverIsIdForIdEquivalent) {
  ScratchDir dir;
  const std::string path = dir.Sub("db");
  auto store = DurableStore::Open(path, MakeTestCatalog());
  ASSERT_TRUE(store.ok()) << store.status();
  auto db = (*store)->Recover(ConstraintSet{});
  ASSERT_TRUE(db.ok()) << db.status();
  db->AttachDurabilitySink(store->get());
  ASSERT_NO_FATAL_FAILURE(RunWorkload(&*db));
  ASSERT_TRUE((*store)->Checkpoint(*db).ok());
  ASSERT_TRUE((*store)->status().ok());
  EXPECT_EQ((*store)->stats().checkpoints, 1u);
  store->reset();  // Close cleanly.

  auto reopened = DurableStore::Open(path, MakeTestCatalog());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  auto recovered = (*reopened)->Recover(ConstraintSet{});
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ExpectEquivalent(*db, *recovered);
  EXPECT_FALSE((*reopened)->stats().degraded_recovery);
  EXPECT_GT((*reopened)->stats().recovered_snapshot_tuples, 0u);
  EXPECT_EQ((*reopened)->stats().recovered_wal_records, 0u);
}

TEST(DurableStoreTest, RecoveredDatabaseKeepsAppendingDurably) {
  // Recover → mutate → recover again: the second recovery sees the
  // post-recovery mutations (the store is positioned to append, not
  // overwrite).
  ScratchDir dir;
  const std::string path = dir.Sub("db");
  {
    auto store = DurableStore::Open(path, MakeTestCatalog());
    ASSERT_TRUE(store.ok());
    auto db = (*store)->Recover(ConstraintSet{});
    ASSERT_TRUE(db.ok());
    db->AttachDurabilitySink(store->get());
    ASSERT_NO_FATAL_FAILURE(RunWorkload(&*db));
    ASSERT_TRUE((*store)->Checkpoint(*db).ok());
  }
  BlockchainDatabase after_first = [&] {
    auto store = DurableStore::Open(path, MakeTestCatalog());
    EXPECT_TRUE(store.ok());
    auto db = (*store)->Recover(ConstraintSet{});
    EXPECT_TRUE(db.ok());
    db->AttachDurabilitySink(store->get());
    EXPECT_TRUE(
        db->InsertCurrent("R", Tuple({Value::Int(77), Value::Int(7)})).ok());
    EXPECT_TRUE((*store)->Sync().ok());
    return std::move(*db);
  }();

  auto store = DurableStore::Open(path, MakeTestCatalog());
  ASSERT_TRUE(store.ok());
  auto db = (*store)->Recover(ConstraintSet{});
  ASSERT_TRUE(db.ok()) << db.status();
  ExpectEquivalent(after_first, *db);
  EXPECT_EQ((*store)->stats().recovered_wal_records, 1u);
}

TEST(DurableStoreTest, SchemaMismatchRefusesToRecover) {
  ScratchDir dir;
  const std::string path = dir.Sub("db");
  {
    auto store = DurableStore::Open(path, MakeTestCatalog());
    ASSERT_TRUE(store.ok());
    auto db = (*store)->Recover(ConstraintSet{});
    ASSERT_TRUE(db.ok());
    db->AttachDurabilitySink(store->get());
    ASSERT_NO_FATAL_FAILURE(RunWorkload(&*db));
    ASSERT_TRUE((*store)->Checkpoint(*db).ok());
  }
  Catalog other;
  ASSERT_TRUE(other
                  .AddRelation(RelationSchema(
                      "R", {Attribute{"a", ValueType::kString, false},
                            Attribute{"b", ValueType::kInt, false}}))
                  .ok());
  ASSERT_TRUE(other
                  .AddRelation(RelationSchema(
                      "S", {Attribute{"x", ValueType::kInt, false},
                            Attribute{"y", ValueType::kInt, true}}))
                  .ok());
  auto store = DurableStore::Open(path, other);
  ASSERT_TRUE(store.ok());
  auto db = (*store)->Recover(ConstraintSet{});
  EXPECT_FALSE(db.ok());
}

TEST(DurableStoreTest, RetentionPrunesOldCheckpoints) {
  ScratchDir dir;
  const std::string path = dir.Sub("db");
  DurableStoreOptions options;
  options.retained_checkpoints = 2;
  auto store = DurableStore::Open(path, MakeTestCatalog(), options);
  ASSERT_TRUE(store.ok());
  auto db = (*store)->Recover(ConstraintSet{});
  ASSERT_TRUE(db.ok());
  db->AttachDurabilitySink(store->get());

  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(db->InsertCurrent("R", Tuple({Value::Int(round),
                                              Value::Int(round * 10)}))
                    .ok());
    ASSERT_TRUE((*store)->Checkpoint(*db).ok()) << round;
  }
  EXPECT_EQ((*store)->stats().checkpoints, 4u);
  EXPECT_EQ((*store)->ListCheckpoints().size(), 2u);
  EXPECT_EQ(ListFilesWithSuffix(path, ".seg").size(), 2u);
  // Exactly one WAL file per retained span survives pruning — the one
  // rotated in at the newest checkpoint, plus the fallback span.
  EXPECT_LE(ListFilesWithSuffix(path, ".log").size(), 2u);

  store->reset();
  auto reopened = DurableStore::Open(path, MakeTestCatalog(), options);
  ASSERT_TRUE(reopened.ok());
  auto recovered = (*reopened)->Recover(ConstraintSet{});
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ExpectEquivalent(*db, *recovered);
}

TEST(DurableStoreTest, RecoverTwiceIsACallerBug) {
  ScratchDir dir;
  auto store = DurableStore::Open(dir.Sub("db"), MakeTestCatalog());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Recover(ConstraintSet{}).ok());
  EXPECT_FALSE((*store)->Recover(ConstraintSet{}).ok());
}

TEST(DurableStoreTest, StatsTrackWriteAmplification) {
  ScratchDir dir;
  DurableStoreOptions options;
  options.sync = storage::SyncPolicy::kNone;
  auto store = DurableStore::Open(dir.Sub("db"), MakeTestCatalog(), options);
  ASSERT_TRUE(store.ok());
  auto db = (*store)->Recover(ConstraintSet{});
  ASSERT_TRUE(db.ok());
  db->AttachDurabilitySink(store->get());
  ASSERT_NO_FATAL_FAILURE(RunWorkload(&*db));
  ASSERT_TRUE((*store)->Sync().ok());

  const storage::DurableStoreStats& stats = (*store)->stats();
  EXPECT_EQ(stats.wal_records, db->mutations().end_seq());
  EXPECT_GT(stats.logical_bytes, 0u);
  EXPECT_GT(stats.wal_bytes, stats.logical_bytes);  // Framing overhead.
  EXPECT_GT(stats.WriteAmplification(), 1.0);

  ASSERT_TRUE((*store)->Checkpoint(*db).ok());
  EXPECT_GT((*store)->stats().segment_bytes, 0u);
}

}  // namespace
}  // namespace bcdb
