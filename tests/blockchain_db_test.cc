#include <gtest/gtest.h>

#include "core/blockchain_db.h"
#include "running_example.h"

namespace bcdb {
namespace {

using testing_fixtures::MakeRunningExample;

TEST(BlockchainDatabaseTest, CreateValidatesConstraintIds) {
  Catalog catalog = bitcoin::MakeBitcoinCatalog();
  Catalog other = bitcoin::MakeBitcoinCatalog();
  ASSERT_TRUE(other
                  .AddRelation(RelationSchema(
                      "Extra", {Attribute{"x", ValueType::kInt, false}}))
                  .ok());
  // An FD resolved against the larger catalog references a relation id the
  // smaller catalog does not have.
  ConstraintSet constraints;
  constraints.AddFd(*FunctionalDependency::Key(other, "Extra", {"x"}));
  EXPECT_FALSE(
      BlockchainDatabase::Create(std::move(catalog), std::move(constraints))
          .ok());
}

TEST(BlockchainDatabaseTest, VersionBumpsOnEveryMutation) {
  BlockchainDatabase db = MakeRunningExample();
  const std::uint64_t v0 = db.version();

  ASSERT_TRUE(db.InsertCurrent("TxOut", Tuple({Value::Int(99), Value::Int(1),
                                               Value::Str("NewPk"),
                                               Value::Int(1)}))
                  .ok());
  const std::uint64_t v1 = db.version();
  EXPECT_GT(v1, v0);

  Transaction txn("t");
  txn.Add("TxOut",
          Tuple({Value::Int(98), Value::Int(1), Value::Str("PendPk"),
                 Value::Int(1)}));
  auto id = db.AddPending(txn);
  ASSERT_TRUE(id.ok());
  const std::uint64_t v2 = db.version();
  EXPECT_GT(v2, v1);

  ASSERT_TRUE(db.ApplyPending(*id).ok());
  EXPECT_GT(db.version(), v2);

  const std::uint64_t v3 = db.version();
  ASSERT_TRUE(db.DiscardPending(2).ok());
  EXPECT_GT(db.version(), v3);
}

TEST(BlockchainDatabaseTest, AddPendingRejectsEmptyAndBadTuples) {
  BlockchainDatabase db = MakeRunningExample();
  EXPECT_EQ(db.AddPending(Transaction("empty")).status().code(),
            StatusCode::kInvalidArgument);

  // Schema violation rolls the whole transaction back.
  Transaction bad("bad");
  bad.Add("TxOut", Tuple({Value::Int(50), Value::Int(1), Value::Str("Pk"),
                          Value::Int(1)}));
  bad.Add("TxOut", Tuple({Value::Int(50)}));  // Wrong arity.
  const std::size_t pending_before = db.PendingIds().size();
  EXPECT_FALSE(db.AddPending(bad).ok());
  EXPECT_EQ(db.PendingIds().size(), pending_before);
  // The partially-inserted tuple must not be visible in any world.
  const auto txout_id = db.catalog().RelationId("TxOut");
  ASSERT_TRUE(txout_id.ok());
  EXPECT_FALSE(db.database()
                   .relation(*txout_id)
                   .ContainsVisible(Tuple({Value::Int(50), Value::Int(1),
                                           Value::Str("Pk"), Value::Int(1)}),
                                    db.PendingUnionView()));
}

TEST(BlockchainDatabaseTest, ApplyAndDiscardStateMachine) {
  BlockchainDatabase db = MakeRunningExample();
  EXPECT_TRUE(db.IsPending(0));
  ASSERT_TRUE(db.ApplyPending(0).ok());
  EXPECT_FALSE(db.IsPending(0));
  // No double apply / discard of a non-pending id.
  EXPECT_FALSE(db.ApplyPending(0).ok());
  EXPECT_FALSE(db.DiscardPending(0).ok());
  EXPECT_FALSE(db.ApplyPending(12345).ok());

  ASSERT_TRUE(db.DiscardPending(4).ok());
  EXPECT_FALSE(db.ApplyPending(4).ok());

  // PendingIds reflects the survivors.
  EXPECT_EQ(db.PendingIds(), (std::vector<PendingId>{1, 2, 3}));
}

TEST(BlockchainDatabaseTest, PendingUnionViewTracksSurvivors) {
  BlockchainDatabase db = MakeRunningExample();
  ASSERT_TRUE(db.DiscardPending(3).ok());  // Drop T4 (pays U8Pk).
  const auto txout_id = db.catalog().RelationId("TxOut");
  ASSERT_TRUE(txout_id.ok());
  const Relation& txout = db.database().relation(*txout_id);
  EXPECT_FALSE(txout.ContainsVisible(
      Tuple({Value::Int(7), Value::Int(2), Value::Str("U8Pk"),
             Value::Real(1)}),
      db.PendingUnionView()));
}

TEST(BlockchainDatabaseTest, LabelsAreAccessible) {
  BlockchainDatabase db = MakeRunningExample();
  EXPECT_EQ(db.pending(0).label(), "T1");
  EXPECT_EQ(db.pending(4).label(), "T5");
  EXPECT_EQ(db.pending(3).size(), 4u);  // T4: 2 inputs + 2 outputs.
}

}  // namespace
}  // namespace bcdb
