#include <gtest/gtest.h>

#include "core/blockchain_db.h"
#include "running_example.h"

namespace bcdb {
namespace {

using testing_fixtures::MakeRunningExample;

TEST(BlockchainDatabaseTest, CreateValidatesConstraintIds) {
  Catalog catalog = bitcoin::MakeBitcoinCatalog();
  Catalog other = bitcoin::MakeBitcoinCatalog();
  ASSERT_TRUE(other
                  .AddRelation(RelationSchema(
                      "Extra", {Attribute{"x", ValueType::kInt, false}}))
                  .ok());
  // An FD resolved against the larger catalog references a relation id the
  // smaller catalog does not have.
  ConstraintSet constraints;
  constraints.AddFd(*FunctionalDependency::Key(other, "Extra", {"x"}));
  EXPECT_FALSE(
      BlockchainDatabase::Create(std::move(catalog), std::move(constraints))
          .ok());
}

TEST(BlockchainDatabaseTest, VersionBumpsOnEveryMutation) {
  BlockchainDatabase db = MakeRunningExample();
  const std::uint64_t v0 = db.version();

  ASSERT_TRUE(db.InsertCurrent("TxOut", Tuple({Value::Int(99), Value::Int(1),
                                               Value::Str("NewPk"),
                                               Value::Int(1)}))
                  .ok());
  const std::uint64_t v1 = db.version();
  EXPECT_GT(v1, v0);

  Transaction txn("t");
  txn.Add("TxOut",
          Tuple({Value::Int(98), Value::Int(1), Value::Str("PendPk"),
                 Value::Int(1)}));
  auto id = db.AddPending(txn);
  ASSERT_TRUE(id.ok());
  const std::uint64_t v2 = db.version();
  EXPECT_GT(v2, v1);

  ASSERT_TRUE(db.ApplyPending(*id).ok());
  EXPECT_GT(db.version(), v2);

  const std::uint64_t v3 = db.version();
  ASSERT_TRUE(db.DiscardPending(2).ok());
  EXPECT_GT(db.version(), v3);
}

TEST(BlockchainDatabaseTest, AddPendingRejectsEmptyAndBadTuples) {
  BlockchainDatabase db = MakeRunningExample();
  EXPECT_EQ(db.AddPending(Transaction("empty")).status().code(),
            StatusCode::kInvalidArgument);

  // Schema violation rolls the whole transaction back.
  Transaction bad("bad");
  bad.Add("TxOut", Tuple({Value::Int(50), Value::Int(1), Value::Str("Pk"),
                          Value::Int(1)}));
  bad.Add("TxOut", Tuple({Value::Int(50)}));  // Wrong arity.
  const std::size_t pending_before = db.PendingIds().size();
  EXPECT_FALSE(db.AddPending(bad).ok());
  EXPECT_EQ(db.PendingIds().size(), pending_before);
  // The partially-inserted tuple must not be visible in any world.
  const auto txout_id = db.catalog().RelationId("TxOut");
  ASSERT_TRUE(txout_id.ok());
  EXPECT_FALSE(db.database()
                   .relation(*txout_id)
                   .ContainsVisible(Tuple({Value::Int(50), Value::Int(1),
                                           Value::Str("Pk"), Value::Int(1)}),
                                    db.PendingUnionView()));
}

TEST(BlockchainDatabaseTest, FailedAddPendingDoesNotPoisonLaterAdds) {
  BlockchainDatabase db = MakeRunningExample();
  const std::uint64_t version_before = db.version();
  const std::uint64_t log_end_before = db.mutations().end_seq();
  const std::size_t owners_before = db.database().num_owners();
  const std::size_t pending_before = db.num_pending();

  // A rejected add must leave NO trace: a leaked owner slot would make
  // every later transaction's owner tag run one ahead of its pending id,
  // tripping the id/owner invariant (and mutating state before erroring).
  Transaction bad("bad");
  bad.Add("TxOut", Tuple({Value::Int(60)}));  // Wrong arity.
  EXPECT_FALSE(db.AddPending(bad).ok());
  EXPECT_EQ(db.version(), version_before);
  EXPECT_EQ(db.mutations().end_seq(), log_end_before);
  EXPECT_EQ(db.database().num_owners(), owners_before);
  EXPECT_EQ(db.num_pending(), pending_before);

  // The database keeps accepting (and correctly publishing) transactions.
  Transaction good("good");
  good.Add("TxOut", Tuple({Value::Int(61), Value::Int(1), Value::Str("GPk"),
                           Value::Int(1)}));
  auto id = db.AddPending(good);
  ASSERT_TRUE(id.ok()) << id.status();
  EXPECT_EQ(*id, pending_before);
  EXPECT_TRUE(db.IsPending(*id));
  EXPECT_GT(db.version(), version_before);
  EXPECT_EQ(db.mutations().end_seq(), log_end_before + 1);
}

TEST(BlockchainDatabaseTest, ApplyAndDiscardStateMachine) {
  BlockchainDatabase db = MakeRunningExample();
  EXPECT_TRUE(db.IsPending(0));
  ASSERT_TRUE(db.ApplyPending(0).ok());
  EXPECT_FALSE(db.IsPending(0));
  // No double apply / discard of a non-pending id.
  EXPECT_FALSE(db.ApplyPending(0).ok());
  EXPECT_FALSE(db.DiscardPending(0).ok());
  EXPECT_FALSE(db.ApplyPending(12345).ok());

  ASSERT_TRUE(db.DiscardPending(4).ok());
  EXPECT_FALSE(db.ApplyPending(4).ok());

  // PendingIds reflects the survivors.
  EXPECT_EQ(db.PendingIds(), (std::vector<PendingId>{1, 2, 3}));
}

TEST(BlockchainDatabaseTest, RemoveCurrentRetractsOnlyBaseOwnership) {
  BlockchainDatabase db = MakeRunningExample();
  const Tuple row({Value::Int(97), Value::Int(1), Value::Str("ReorgPk"),
                   Value::Int(5)});
  ASSERT_TRUE(db.InsertCurrent("TxOut", row).ok());
  const auto txout_id = db.catalog().RelationId("TxOut");
  ASSERT_TRUE(txout_id.ok());
  EXPECT_TRUE(db.database().relation(*txout_id).ContainsVisible(row, db.BaseView()));

  std::vector<MutationEvent> seen;
  db.AddMutationListener(
      [&](const MutationEvent& event) { seen.push_back(event); });
  const std::uint64_t version_before = db.version();
  ASSERT_TRUE(db.RemoveCurrent("TxOut", row).ok());
  EXPECT_GT(db.version(), version_before);
  EXPECT_FALSE(db.database().relation(*txout_id).ContainsVisible(row, db.BaseView()));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].kind, MutationKind::kCurrentRemoved);
  EXPECT_EQ(seen[0].pending_id, kNoPendingId);
  EXPECT_EQ(seen[0].relation_ids, std::vector<std::size_t>{*txout_id});
  EXPECT_EQ(seen[0].tuple, row);  // Payload travels with the event.

  // Second removal: the base no longer owns the tuple.
  EXPECT_EQ(db.RemoveCurrent("TxOut", row).code(), StatusCode::kNotFound);
  // Never-inserted tuple and unknown relation are typed errors, no event.
  EXPECT_EQ(db.RemoveCurrent("TxOut", Tuple({Value::Int(96), Value::Int(9),
                                             Value::Str("NoPk"),
                                             Value::Int(1)}))
                .code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(db.RemoveCurrent("Nope", row).ok());
  EXPECT_EQ(seen.size(), 1u);
}

TEST(BlockchainDatabaseTest, RemoveCurrentLeavesPendingOwnersIntact) {
  BlockchainDatabase db = MakeRunningExample();
  // A tuple owned by both the base and a pending transaction: retracting
  // the base ownership must keep the pending copy visible in its worlds.
  const Tuple row({Value::Int(95), Value::Int(1), Value::Str("SharedPk"),
                   Value::Int(2)});
  Transaction txn("shared");
  txn.Add("TxOut", row);
  auto id = db.AddPending(txn);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(db.InsertCurrent("TxOut", row).ok());

  ASSERT_TRUE(db.RemoveCurrent("TxOut", row).ok());
  const auto txout_id = db.catalog().RelationId("TxOut");
  ASSERT_TRUE(txout_id.ok());
  const Relation& txout = db.database().relation(*txout_id);
  EXPECT_FALSE(txout.ContainsVisible(row, db.BaseView()));
  EXPECT_TRUE(txout.ContainsVisible(row, db.PendingUnionView()));
}

TEST(BlockchainDatabaseTest, UnapplyPendingRoundTripsThroughApplied) {
  BlockchainDatabase db = MakeRunningExample();
  // Never-applied ids (still pending, out of range) are typed errors.
  EXPECT_EQ(db.UnapplyPending(0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(db.UnapplyPending(12345).code(), StatusCode::kInvalidArgument);

  const std::vector<std::size_t> footprint = db.PendingRelations(0);
  ASSERT_TRUE(db.ApplyPending(0).ok());
  EXPECT_FALSE(db.IsPending(0));

  std::vector<MutationEvent> seen;
  db.AddMutationListener(
      [&](const MutationEvent& event) { seen.push_back(event); });
  ASSERT_TRUE(db.UnapplyPending(0).ok());
  EXPECT_TRUE(db.IsPending(0));
  EXPECT_EQ(db.pending_state(0), BlockchainDatabase::PendingState::kPending);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].kind, MutationKind::kPendingRestored);
  EXPECT_EQ(seen[0].pending_id, 0u);
  EXPECT_EQ(seen[0].relation_ids, footprint);

  // kApplied is no longer terminal: the slot cycles freely.
  EXPECT_EQ(db.UnapplyPending(0).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(db.ApplyPending(0).ok());
  ASSERT_TRUE(db.UnapplyPending(0).ok());
  ASSERT_TRUE(db.DiscardPending(0).ok());
  EXPECT_EQ(db.UnapplyPending(0).code(), StatusCode::kInvalidArgument);
}

TEST(BlockchainDatabaseTest, UnapplyRestoresPendingVisibility) {
  BlockchainDatabase db = MakeRunningExample();
  // T1's outputs leave the base and return to pending-only visibility.
  const auto txout_id = db.catalog().RelationId("TxOut");
  ASSERT_TRUE(txout_id.ok());
  const Relation& txout = db.database().relation(*txout_id);
  const Tuple t1_out({Value::Int(4), Value::Int(1), Value::Str("U5Pk"),
                      Value::Real(1)});
  ASSERT_TRUE(db.ApplyPending(0).ok());
  EXPECT_TRUE(txout.ContainsVisible(t1_out, db.BaseView()));
  ASSERT_TRUE(db.UnapplyPending(0).ok());
  EXPECT_FALSE(txout.ContainsVisible(t1_out, db.BaseView()));
  EXPECT_TRUE(txout.ContainsVisible(t1_out, db.PendingUnionView()));
}

TEST(BlockchainDatabaseTest, PendingUnionViewTracksSurvivors) {
  BlockchainDatabase db = MakeRunningExample();
  ASSERT_TRUE(db.DiscardPending(3).ok());  // Drop T4 (pays U8Pk).
  const auto txout_id = db.catalog().RelationId("TxOut");
  ASSERT_TRUE(txout_id.ok());
  const Relation& txout = db.database().relation(*txout_id);
  EXPECT_FALSE(txout.ContainsVisible(
      Tuple({Value::Int(7), Value::Int(2), Value::Str("U8Pk"),
             Value::Real(1)}),
      db.PendingUnionView()));
}

TEST(BlockchainDatabaseTest, LabelsAreAccessible) {
  BlockchainDatabase db = MakeRunningExample();
  EXPECT_EQ(db.pending(0).label(), "T1");
  EXPECT_EQ(db.pending(4).label(), "T5");
  EXPECT_EQ(db.pending(3).size(), 4u);  // T4: 2 inputs + 2 outputs.
}

TEST(BlockchainDatabaseTest, ListenersSeeRegistrationTimeFootprints) {
  // Regression: Apply/DiscardPending built their event's relation_ids
  // *after* tearing down the slot's tuples, so listeners of a discarded
  // slot could observe an empty (or partial) footprint and skip
  // invalidating affected relations. The footprint in the event must be
  // the registration-time one, and the database state visible inside the
  // callback must already reflect the completed mutation.
  BlockchainDatabase db = MakeRunningExample();
  const std::vector<std::size_t> apply_footprint = db.PendingRelations(0);
  const std::vector<std::size_t> discard_footprint = db.PendingRelations(3);
  ASSERT_FALSE(apply_footprint.empty());
  ASSERT_FALSE(discard_footprint.empty());

  std::vector<MutationEvent> seen;
  std::vector<BlockchainDatabase::PendingState> state_at_callback;
  db.AddMutationListener([&](const MutationEvent& event) {
    seen.push_back(event);
    state_at_callback.push_back(db.pending_state(event.pending_id));
  });

  ASSERT_TRUE(db.ApplyPending(0).ok());
  ASSERT_TRUE(db.DiscardPending(3).ok());

  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].kind, MutationKind::kPendingApplied);
  EXPECT_EQ(seen[0].pending_id, 0u);
  EXPECT_EQ(seen[0].relation_ids, apply_footprint);
  EXPECT_EQ(state_at_callback[0], BlockchainDatabase::PendingState::kApplied);
  EXPECT_EQ(seen[1].kind, MutationKind::kPendingDiscarded);
  EXPECT_EQ(seen[1].pending_id, 3u);
  EXPECT_EQ(seen[1].relation_ids, discard_footprint);
  EXPECT_EQ(state_at_callback[1],
            BlockchainDatabase::PendingState::kDiscarded);
}

}  // namespace
}  // namespace bcdb
